#!/usr/bin/env python3
"""Quickstart: train Xatu on a synthetic ISP trace and boost NetScout.

Runs the full paper pipeline at laptop scale:

1. synthesize an ISP trace (customers, botnets, 6 attack types, prep phases),
2. label it with the NetScout-style CDet simulator,
3. train the multi-timescale LSTM with the SAFE survival loss,
4. calibrate the alert threshold under a scrubbing-overhead bound,
5. detect over the held-out test period and compare with CDet.

Takes ~15 s on a laptop.  See examples/isp_deployment.py for a richer run.
"""

import numpy as np

from repro.core import PipelineConfig, TrainConfig, XatuPipeline
from repro.eval import bench_model_config, tiny_scenario
from repro.scrub import DiversionWindow, ScrubbingCenter


def main() -> None:
    config = PipelineConfig(
        scenario=tiny_scenario(seed=3),
        model=bench_model_config(),
        train=TrainConfig(epochs=6, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.1,  # bound the 75th-pct customer overhead at 10%
    )
    pipeline = XatuPipeline(config)
    trace = pipeline.trace
    print(f"trace: {trace.horizon} minutes, {len(trace.events)} attacks, "
          f"{trace.sampled_flows} sampled flows")

    result = pipeline.run()

    print(f"\ntraining loss: {result.train_losses[0]:.3f} -> {result.train_losses[-1]:.3f}")
    print(f"calibrated survival threshold: {result.calibration.threshold:.3g} "
          f"(overhead bound {config.overhead_bound:.1%})")

    # Compare with the incumbent CDet on the same evaluation range.
    lo, hi = result.eval_range
    cdet_windows = [
        DiversionWindow(a.customer_id, a.detect_minute, a.end_minute)
        for a in result.cdet_alerts
    ]
    cdet_report = ScrubbingCenter(trace).account(cdet_windows)
    events = [e for e in trace.events if lo <= e.onset < hi]
    cdet_eff = np.median([cdet_report.effectiveness(e.event_id) for e in events])

    print(f"\n                      {'CDet':>10}  {'Xatu':>10}")
    print(f"median effectiveness  {cdet_eff:>10.1%}  {result.effectiveness.median:>10.1%}")
    print(f"median delay (min)    {'':>10}  {result.delay.median:>10.1f}")
    print(f"overhead p75          {'':>10}  {result.overhead.high:>10.2%}")
    print(f"\nXatu raised {len(result.detection.alerts)} alerts over the test period "
          f"({sum(1 for a in result.detection.alerts if a.event_id >= 0)} matched attacks).")


if __name__ == "__main__":
    main()
