#!/usr/bin/env python3
"""Explore the auxiliary signals of §3 on a synthetic trace.

Reproduces the observational analyses that motivate Xatu's design:

* Figure 4(a): how many of each attack's sources were blocklisted, had
  attacked the same customer before, or were spoofed,
* Figure 4(b): the attack-type transition matrix (serial same-type attacks),
* Figure 15:  how attacker activity rises in the days before an attack,
* Figure 16:  clustering coefficients of correlated attacks.
"""

import numpy as np

from repro.eval import (
    attacker_activity_by_day,
    bench_scenario,
    clustering_timeline,
    prep_signal_census,
    render_series,
    render_table,
    transition_matrix,
)
from repro.synth import TraceGenerator


def main() -> None:
    trace = TraceGenerator(bench_scenario(seed=3)).materialize()
    print(f"{len(trace.events)} attacks across {trace.config.n_customers} customers\n")

    # --- Figure 4(a): prep-signal fractions per attack ------------------
    census = prep_signal_census(trace)
    rows = []
    for name, getter in (
        ("blocklisted", lambda r: r.blocklisted_fraction),
        ("previous attackers", lambda r: r.previous_attacker_fraction),
        ("spoofed", lambda r: r.spoofed_fraction),
    ):
        values = np.array([getter(r) for r in census])
        rows.append([name, float(np.median(values)), float((values > 0).mean())])
    print(render_table(
        ["signal", "median fraction of attackers", "share of attacks with signal"],
        rows, title="Fig 4(a): attack preparation signals",
    ))

    # --- Figure 4(b): type transitions -----------------------------------
    matrix, types, pairs = transition_matrix(trace)
    print(f"\nFig 4(b): {pairs} consecutive attack pairs; same-type transition share:")
    for i, t in enumerate(types):
        if matrix[i].sum() > 0:
            print(f"  {t.value:<18} -> same type {matrix[i, i]:.0%}")

    # --- Figure 15: activity approaching the attack ----------------------
    activity = attacker_activity_by_day(trace, days_back=2)
    days = [f"-{d + 1}" for d in range(2)]
    print("\n" + render_series(
        "day", days,
        {k: list(np.round(v, 3)) for k, v in activity.items()},
        title="Fig 15: median fraction of eventual attackers already active",
    ))

    # --- Figure 16: clustering coefficient rise --------------------------
    timeline = clustering_timeline(trace, minutes_before=[15, 10, 5, 0])
    print("\nFig 16: median bipartite clustering coefficient before detection")
    for offset in sorted(timeline, reverse=True):
        dot, mn, mx = timeline[offset]
        print(f"  t-{offset:<3} cc_dot={dot:.4f}  cc_min={mn:.4f}  cc_max={mx:.4f}")


if __name__ == "__main__":
    main()
