#!/usr/bin/env python3
"""Smart attackers (§6.4): does Xatu stay robust when floods change shape?

Attackers who shrink their ramp-up volume, or ramp slower/faster (dR), can
dodge purely volumetric detection.  This example sweeps both knobs and
shows that Xatu's auxiliary signals keep effectiveness and delay stable
while the volumetric-only variant degrades — the Figure 13 result.
"""

from repro.core import PipelineConfig, TrainConfig, XatuPipeline
from repro.eval import bench_model_config, render_table, run_rate_sweep, run_volume_sweep, tiny_scenario


def main() -> None:
    config = PipelineConfig(
        scenario=tiny_scenario(seed=3),
        model=bench_model_config(),
        train=TrainConfig(epochs=5, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.1,
    )

    print("Fig 13(a)/(b): volume-changing attackers (ramp-up volume scaled down)")
    points = run_volume_sweep(config, scales=[1.0, 0.5])
    print(render_table(
        ["rampup volume", "variant", "eff median", "delay median"],
        [[p.value, p.variant, p.effectiveness_median, p.delay_median] for p in points],
    ))

    print("\nFig 13(c)/(d): rate-changing attackers (pinned dR)")
    points = run_rate_sweep(config, rates=[0.5, 2.5])
    print(render_table(
        ["dR", "variant", "eff median", "delay median"],
        [[p.value, p.variant, p.effectiveness_median, p.delay_median] for p in points],
    ))


if __name__ == "__main__":
    main()
