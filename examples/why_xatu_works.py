#!/usr/bin/env python3
"""Why does Xatu work? (§6.2) — gradient attribution over the input window.

Trains Xatu, picks an attack from the test period, and backpropagates the
detection output into the input features, printing an ASCII heat-strip of
per-feature-group |gradient| over time — the reproduction of Figure 11's
observation that auxiliary-signal gradients light up long before the
volumetric signal moves.
"""

import numpy as np

from repro.core import PipelineConfig, TrainConfig
from repro.eval import HeadlineExperiment, bench_model_config, input_gradients, tiny_scenario

BLOCKS = " .:-=+*#%@"


def heat_strip(series: np.ndarray, width: int = 60) -> str:
    """Render a series as an ASCII heat strip (log-scaled)."""
    chunks = np.array_split(series, width)
    levels = np.array([float(np.mean(c)) for c in chunks])
    scaled = np.log1p(levels / (levels.max() + 1e-30) * 1000.0)
    scaled /= scaled.max() + 1e-30
    return "".join(BLOCKS[int(v * (len(BLOCKS) - 1))] for v in scaled)


def main() -> None:
    config = PipelineConfig(
        scenario=tiny_scenario(seed=3),
        model=bench_model_config(),
        train=TrainConfig(epochs=6, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.1,
    )
    experiment = HeadlineExperiment(config)
    experiment.prepare()
    trace, model = experiment.trace, experiment.model
    lookback = model.config.lookback_minutes

    event = next(
        e for e in sorted(trace.events, key=lambda e: -e.onset)
        if e.onset >= lookback
    )
    raw = experiment.extractor.window(
        event.customer_id, event.onset - lookback, event.onset
    )
    scaled = experiment.train_set.scaler.transform(raw)
    attribution = input_gradients(model, scaled)

    print(f"attack: {event.attack_type.value} on customer {event.customer_id}, "
          f"window = {lookback} minutes before onset\n")
    print(f"{'group':<6} |gradient| over time (left = {lookback} min before onset)")
    for group in attribution.groups:
        print(f"{group:<6} {heat_strip(attribution.group_series(group))}")
    print("\nlegend: ' ' low ... '@' high (log scale per row)")

    third = lookback // 3
    for group in ("V", "A2"):
        series = attribution.group_series(group)
        print(f"{group}: early-window mean {series[:third].mean():.2e}, "
              f"late-window mean {series[-third:].mean():.2e}")


if __name__ == "__main__":
    main()
