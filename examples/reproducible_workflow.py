#!/usr/bin/env python3
"""Reproducibility workflow: pin, persist, reload, and replay a dataset.

The pattern a research group would actually use:

1. pin the synthetic world in a versionable JSON scenario file,
2. generate the trace once and persist it (npz/json, no pickle),
3. reload it in later sessions — bit-identical aggregates guaranteed by a
   world checksum,
4. replay any slice as a live flow stream (e.g. into OnlineXatu).
"""

import tempfile
import time
from pathlib import Path

from repro.detect import NetScoutDetector
from repro.eval import tiny_scenario
from repro.synth import (
    TraceGenerator,
    TraceReplayer,
    load_scenario_file,
    load_trace,
    save_scenario_file,
    save_trace,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="xatu_repro_"))

    # 1. Pin the scenario.
    scenario_path = save_scenario_file(tiny_scenario(seed=3), workdir / "scenario.json")
    print(f"scenario pinned at {scenario_path}")

    # 2. Generate once, persist.
    scenario = load_scenario_file(scenario_path)
    t0 = time.time()
    trace = TraceGenerator(scenario).materialize()
    print(f"generated {len(trace.events)} attacks / {trace.sampled_flows} flows "
          f"in {time.time() - t0:.1f}s")
    save_trace(trace, workdir / "trace")
    size_mb = sum(f.stat().st_size for f in (workdir / "trace").iterdir()) / 1e6
    print(f"persisted to {workdir / 'trace'} ({size_mb:.1f} MB)")

    # 3. Reload (later session) — identical analysis results.
    t0 = time.time()
    restored = load_trace(workdir / "trace")
    print(f"reloaded in {time.time() - t0:.1f}s")
    a = NetScoutDetector().detect(trace)
    b = NetScoutDetector().detect(restored)
    assert [(x.customer_id, x.detect_minute) for x in a] == [
        (x.customer_id, x.detect_minute) for x in b
    ]
    print(f"detector runs identical on both copies ({len(a)} alerts)")

    # 4. Replay a slice as live flows.
    replayer = TraceReplayer(restored)
    lo = restored.horizon // 2
    n_flows = sum(len(flows) for _m, flows in replayer.replay(lo, lo + 10))
    print(f"replayed minutes [{lo}, {lo + 10}) as {n_flows} live flows")


if __name__ == "__main__":
    main()
