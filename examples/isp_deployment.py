#!/usr/bin/env python3
"""ISP deployment scenario: boost two different CDets and compare four systems.

Mirrors the §6.1 headline evaluation: NetScout, FastNetMon, the random-
forest baseline, and Xatu are all run against the same synthetic ISP trace,
with Xatu and RF calibrated under the same scrubbing-overhead bound.  Also
demonstrates the Figure 18(a) point — Xatu trained from FastNetMon labels
performs comparably to Xatu trained from NetScout labels.
"""

from repro.core import PipelineConfig, TrainConfig, XatuPipeline
from repro.detect import FastNetMonDetector, NetScoutDetector
from repro.eval import HeadlineExperiment, bench_model_config, render_table, tiny_scenario
from repro.synth import TraceGenerator


def main() -> None:
    config = PipelineConfig(
        scenario=tiny_scenario(seed=3),
        model=bench_model_config(),
        train=TrainConfig(epochs=6, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.1,
    )

    # --- Four-system comparison at one overhead bound --------------------
    experiment = HeadlineExperiment(config)
    rows = experiment.sweep([config.overhead_bound])
    print(render_table(
        ["system", "eff p10", "eff median", "eff p90", "delay median", "overhead p75"],
        [
            [m.system, m.effectiveness_p10, m.effectiveness_median,
             m.effectiveness_p90, m.delay_median, m.overhead_p75]
            for m in rows
        ],
        title=f"Fig 8-style comparison at overhead bound {config.overhead_bound:.1%}",
    ))

    # --- ROC: Xatu vs RF (Fig 9) -----------------------------------------
    print("\nFig 9: ROC AUC on held-out windows")
    for point in experiment.roc():
        print(f"  {point.system:<6} AUC = {point.auc:.3f}")

    # --- CDet independence (Fig 18a) --------------------------------------
    print("\nFig 18(a): Xatu trained from different CDet label sources")
    trace = TraceGenerator(config.scenario).materialize()
    for name, cdet in (("netscout", NetScoutDetector()), ("fastnetmon", FastNetMonDetector())):
        result = XatuPipeline(config, trace=trace, cdet=cdet).run()
        print(f"  labels={name:<11} median effectiveness {result.effectiveness.median:.1%} "
              f"median delay {result.delay.median:+.1f} min")


if __name__ == "__main__":
    main()
