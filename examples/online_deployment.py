#!/usr/bin/env python3
"""Streaming deployment (§2.6): run Xatu on a live flow feed.

Trains a model offline (as usual), then replays the test portion of the
scenario *flow by flow* through the :class:`~repro.core.OnlineXatu`
streaming detector — the shape of a real deployment, where sampled NetFlow
and CDet alert notices arrive continuously and Xatu emits early alerts.
"""

import numpy as np

from repro.core import OnlineXatu, PipelineConfig, TrainConfig, XatuPipeline
from repro.eval import bench_model_config, tiny_scenario
from repro.synth import BenignConfig, BenignTrafficModel, TraceGenerator, generate_attack_flows


def main() -> None:
    # --- Offline training (same as quickstart) ---------------------------
    config = PipelineConfig(
        scenario=tiny_scenario(seed=3),
        model=bench_model_config(),
        train=TrainConfig(epochs=5, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.1,
    )
    pipeline = XatuPipeline(config)
    result = pipeline.run()
    trace = pipeline.trace
    print(f"trained; calibrated threshold = {result.calibration.threshold:.3g}")

    # The pipeline holds the trained artefacts via its detection run;
    # rebuild an online detector around the same model + scaler.
    # (In a real deployment these come from XatuModelRegistry.load().)
    model_entry_scaler = None
    # Reconstruct from pipeline internals: retrain quickly for the demo.
    from repro.core import DatasetBuilder, XatuModel, XatuTrainer, alerts_to_records
    from repro.detect import NetScoutDetector
    from repro.signals import FeatureExtractor

    labeled = [a for a in result.cdet_alerts if a.event_id >= 0]
    extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, labeled))
    builder = DatasetBuilder(trace, extractor, config.model, rng=np.random.default_rng(0))
    train_set = builder.build(labeled, (0, int(trace.horizon * 0.7)))
    model = XatuModel(config.model)
    XatuTrainer(model, config.train).fit(train_set)

    blocklist = set()
    for botnet in trace.world.botnets:
        blocklist.update(int(a) for a in botnet.blocklisted_members)
    online = OnlineXatu(
        model=model,
        scaler=train_set.scaler,
        threshold=result.calibration.threshold,
        customer_of={c.address: c.customer_id for c in trace.world.customers},
        blocklist=blocklist,
        route_table=trace.world.route_table,
        base_rate_of={c.customer_id: c.base_rate_bytes for c in trace.world.customers},
    )
    for alert_record in alerts_to_records(trace, labeled):
        online.ingest_cdet_alert(alert_record)

    # --- Live replay: one synthetic attack over benign background --------
    rng = np.random.default_rng(9)
    benign = BenignTrafficModel(
        trace.world.benign_clients, trace.world.country_of,
        BenignConfig(minutes_per_day=trace.config.minutes_per_day),
        rng=rng,
    )
    victim = trace.world.customers[0]
    botnet = trace.world.botnets[0]
    attack_start, attack_minutes = 30, 10
    event = trace.events[0]

    n_alerts = 0
    for minute in range(45):
        flows = []
        for customer in trace.world.customers[:4]:
            flows.extend(benign.flows_at(customer, minute))
        if attack_start <= minute < attack_start + attack_minutes:
            sources = botnet.members[:80]
            flows.extend(generate_attack_flows(
                event.attack_type, minute, victim.address,
                sources, total_bytes=victim.base_rate_bytes * 20.0,
                rng=rng, country_of=botnet.country_of,
            ))
        alerts = online.step(minute, flows)
        for alert in alerts:
            n_alerts += 1
            marker = "<< ATTACK WINDOW" if attack_start <= minute else ""
            print(f"  minute {minute:>3}: alert on customer {alert.customer_id} "
                  f"(S_t = {alert.survival:.3f}) {marker}")
    print(f"\nreplayed 45 live minutes; {n_alerts} alerts emitted")


if __name__ == "__main__":
    main()
