"""Evaluation metrics: effectiveness, overhead, delay, ROC, bootstrap CIs."""

from .bootstrap import BootstrapCI, bootstrap_ci, bootstrap_median_ci
from .core import (
    PercentileSummary,
    auc,
    percentile_summary,
    roc_curve,
)

__all__ = [
    "PercentileSummary", "percentile_summary", "roc_curve", "auc",
    "BootstrapCI", "bootstrap_ci", "bootstrap_median_ci",
]
