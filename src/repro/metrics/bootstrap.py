"""Bootstrap confidence intervals for metric summaries.

The compressed-replica benches measure medians over small event samples
(5-50 events vs the paper's thousands); a percentile bootstrap makes the
sampling noise visible, so EXPERIMENTS.md comparisons can distinguish
"shape holds" from "within noise".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_ci", "bootstrap_median_ci"]


@dataclass(frozen=True, slots=True)
class BootstrapCI:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    values: np.ndarray | list[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for an arbitrary statistic.

    Resamples ``values`` with replacement ``n_resamples`` times and takes
    the empirical (1±confidence)/2 quantiles of the statistic.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = np.random.default_rng(seed)
    estimate = float(statistic(values))
    replicates = np.empty(n_resamples)
    n = values.size
    for i in range(n_resamples):
        replicates[i] = statistic(values[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=estimate,
        low=float(np.quantile(replicates, alpha)),
        high=float(np.quantile(replicates, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_median_ci(
    values: np.ndarray | list[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI of the median — the paper's headline statistic."""
    return bootstrap_ci(
        values, lambda v: float(np.median(v)), confidence, n_resamples, seed
    )
