"""Metric primitives shared by the evaluation harness.

Effectiveness / overhead / delay are *accounted* by
:class:`repro.scrub.ScrubbingCenter`; this module provides the summary
statistics (the paper reports medians with 10th/90th or 25th/75th
percentile error bars) and classification metrics (ROC / AUC for Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PercentileSummary", "percentile_summary", "roc_curve", "auc"]


@dataclass(frozen=True, slots=True)
class PercentileSummary:
    """Median plus low/high percentile of a sample (one error-bar box)."""

    low: float
    median: float
    high: float
    n: int
    low_pct: float
    high_pct: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.low, self.median, self.high)


def percentile_summary(
    values: np.ndarray | list[float],
    low_pct: float = 10.0,
    high_pct: float = 90.0,
) -> PercentileSummary:
    """Summarize a sample as (low-pct, median, high-pct).

    Defaults to the 10/50/90 convention the paper uses for effectiveness
    and delay; pass 25/75 for overhead.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return PercentileSummary(0.0, 0.0, 0.0, 0, low_pct, high_pct)
    return PercentileSummary(
        low=float(np.percentile(values, low_pct)),
        median=float(np.percentile(values, 50.0)),
        high=float(np.percentile(values, high_pct)),
        n=int(values.size),
        low_pct=low_pct,
        high_pct=high_pct,
    )


def roc_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) sweeping a decision threshold over ``scores``.

    Higher score = more attack-like.  Points are sorted by increasing FPR.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")
    n_pos = int(labels.sum())
    n_neg = int((~labels).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both positive and negative samples")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(~sorted_labels)
    # Collapse ties: keep the last point of each distinct score.
    sorted_scores = scores[order]
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    idx = np.concatenate([distinct, [len(sorted_scores) - 1]])
    tpr = np.concatenate([[0.0], tps[idx] / n_pos])
    fpr = np.concatenate([[0.0], fps[idx] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[idx]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Trapezoidal area under an ROC curve."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    order = np.argsort(fpr, kind="stable")
    return float(np.trapezoid(tpr[order], fpr[order]))
