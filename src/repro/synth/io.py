"""Trace persistence: save/load a generated :class:`Trace` to disk.

Generating an ISP-scale trace takes minutes; persisting it lets the test
and benchmark suites (and downstream users) reuse one across runs.  The
format is explicit npz + JSON — no pickle, so saved traces are safe to
share and diff:

* ``trace.json`` — the scenario config, counters, prep windows, and the
  scalar fields of every ground-truth event,
* ``matrix.npz``  — the sparse (customer, class, minute) cells of the
  traffic matrix: keys, 63-wide vectors, counters, and flattened
  per-cell source sets,
* ``events.npz``  — per-event anomalous byte series and attacker sets
  (flattened with offsets).

The world itself is *not* stored: it is reconstructed deterministically
from the scenario config's seed, and a checksum guards against drift.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..netflow.matrix import TrafficMatrix, VolumetricAccumulator
from .attacks import AttackSignature, AttackType
from .campaign import PlannedPrep
from .scenario import AttackEvent, ScenarioConfig, Trace
from .world import IspWorld

__all__ = ["save_trace", "load_trace", "world_checksum"]

_FORMAT_VERSION = 1


def world_checksum(world: IspWorld) -> int:
    """A cheap determinism guard over the world's allocation."""
    total = len(world.customers) * 1_000_003
    for customer in world.customers:
        total = (total * 31 + customer.address) & 0xFFFFFFFF
    for botnet in world.botnets:
        total = (total * 31 + int(botnet.members.sum()) ) & 0xFFFFFFFF
    return total


def _flatten_sets(sets: list[set[int]]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(sets) + 1, dtype=np.int64)
    chunks = []
    for i, members in enumerate(sets):
        arr = np.fromiter(sorted(members), dtype=np.int64, count=len(members))
        chunks.append(arr)
        offsets[i + 1] = offsets[i] + len(arr)
    flat = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    return flat, offsets


def _unflatten_sets(flat: np.ndarray, offsets: np.ndarray) -> list[set[int]]:
    return [
        set(int(x) for x in flat[offsets[i] : offsets[i + 1]])
        for i in range(len(offsets) - 1)
    ]


def save_trace(trace: Trace, directory: str | Path) -> Path:
    """Persist ``trace`` under ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # --- matrix ---------------------------------------------------------
    cells = trace.matrix._cells
    class_names = sorted({cls for _cid, cls, _m in cells})
    class_index = {name: i for i, name in enumerate(class_names)}
    keys = np.zeros((len(cells), 3), dtype=np.int64)
    vectors = np.zeros((len(cells), 63))
    counters = np.zeros((len(cells), 5), dtype=np.int64)
    source_sets: list[set[int]] = []
    for row, ((customer, cls, minute), cell) in enumerate(sorted(cells.items())):
        keys[row] = (customer, class_index[cls], minute)
        vectors[row] = cell.vector
        counters[row] = (
            cell.flow_count, cell.total_bytes, cell.total_packets,
            cell.max_bytes, cell.max_packets,
        )
        source_sets.append(cell._sources)
    sources_flat, sources_offsets = _flatten_sets(source_sets)
    np.savez_compressed(
        directory / "matrix.npz",
        keys=keys, vectors=vectors, counters=counters,
        sources_flat=sources_flat, sources_offsets=sources_offsets,
    )

    # --- events ----------------------------------------------------------
    anomalous_flat = (
        np.concatenate([e.anomalous_bytes for e in trace.events])
        if trace.events else np.zeros(0)
    )
    anomalous_offsets = np.zeros(len(trace.events) + 1, dtype=np.int64)
    for i, event in enumerate(trace.events):
        anomalous_offsets[i + 1] = anomalous_offsets[i] + len(event.anomalous_bytes)
    attackers_flat, attackers_offsets = _flatten_sets(
        [e.attackers for e in trace.events]
    )
    np.savez_compressed(
        directory / "events.npz",
        anomalous_flat=anomalous_flat, anomalous_offsets=anomalous_offsets,
        attackers_flat=attackers_flat, attackers_offsets=attackers_offsets,
    )

    # --- JSON manifest ----------------------------------------------------
    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(trace.config),
        "world_checksum": world_checksum(trace.world),
        "horizon": trace.horizon,
        "total_flows": trace.total_flows,
        "sampled_flows": trace.sampled_flows,
        "class_names": class_names,
        "events": [
            {
                "event_id": e.event_id,
                "customer_id": e.customer_id,
                "customer_address": e.customer_address,
                "attack_type": e.attack_type.value,
                "onset": e.onset,
                "end": e.end,
                "peak_bytes": e.peak_bytes,
                "ramp_rate": e.ramp_rate,
                "campaign_id": e.campaign_id,
                "botnet_id": e.botnet_id,
                "signature": dataclasses.asdict(e.signature),
                "extra_signatures": [
                    dataclasses.asdict(s) for s in e.extra_signatures
                ],
            }
            for e in trace.events
        ],
        "preps": [
            {
                "campaign_id": p.campaign_id,
                "botnet_id": p.botnet_id,
                "customer_id": p.customer_id,
                "start": p.start,
                "end": p.end,
                "aborted": p.aborted,
                "spoofed_fraction": p.spoofed_fraction,
            }
            for p in trace.preps
        ],
    }
    (directory / "trace.json").write_text(json.dumps(manifest))
    return directory


def load_trace(directory: str | Path) -> Trace:
    """Restore a trace saved with :func:`save_trace`."""
    directory = Path(directory)
    manifest = json.loads((directory / "trace.json").read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {manifest.get('format_version')!r}"
        )
    config_fields = dict(manifest["config"])
    if config_fields.get("sampling_rates") is not None:
        config_fields["sampling_rates"] = tuple(config_fields["sampling_rates"])
    config = ScenarioConfig(**config_fields)
    world = IspWorld(config.world_config())
    if world_checksum(world) != manifest["world_checksum"]:
        raise ValueError(
            "world reconstruction mismatch: the generator changed since this "
            "trace was saved — regenerate it"
        )

    # --- matrix -----------------------------------------------------------
    matrix = TrafficMatrix()
    class_names = manifest["class_names"]
    with np.load(directory / "matrix.npz") as archive:
        keys = archive["keys"]
        vectors = archive["vectors"]
        counters = archive["counters"]
        source_sets = _unflatten_sets(
            archive["sources_flat"], archive["sources_offsets"]
        )
    for row in range(len(keys)):
        customer, class_id, minute = (int(x) for x in keys[row])
        cell = VolumetricAccumulator()
        cell.vector = vectors[row].copy()
        (cell.flow_count, cell.total_bytes, cell.total_packets,
         cell.max_bytes, cell.max_packets) = (int(x) for x in counters[row])
        cell._sources = source_sets[row]
        cls = class_names[class_id]
        matrix._cells[(customer, cls, minute)] = cell
        matrix._minutes_index.setdefault((customer, cls), set()).add(minute)
        matrix._customers.add(customer)
        matrix.max_minute = max(matrix.max_minute, minute)

    # --- events -------------------------------------------------------------
    with np.load(directory / "events.npz") as archive:
        anomalous_flat = archive["anomalous_flat"]
        anomalous_offsets = archive["anomalous_offsets"]
        attacker_sets = _unflatten_sets(
            archive["attackers_flat"], archive["attackers_offsets"]
        )
    events = []
    for i, meta in enumerate(manifest["events"]):
        sig = meta["signature"]
        events.append(
            AttackEvent(
                event_id=meta["event_id"],
                customer_id=meta["customer_id"],
                customer_address=meta["customer_address"],
                attack_type=AttackType(meta["attack_type"]),
                onset=meta["onset"],
                end=meta["end"],
                signature=AttackSignature(**sig),
                extra_signatures=tuple(
                    AttackSignature(**s) for s in meta.get("extra_signatures", [])
                ),
                peak_bytes=meta["peak_bytes"],
                ramp_rate=meta["ramp_rate"],
                campaign_id=meta["campaign_id"],
                botnet_id=meta["botnet_id"],
                anomalous_bytes=anomalous_flat[
                    anomalous_offsets[i] : anomalous_offsets[i + 1]
                ].copy(),
                attackers=attacker_sets[i],
            )
        )
    preps = [PlannedPrep(**p) for p in manifest["preps"]]
    return Trace(
        config=config,
        world=world,
        matrix=matrix,
        events=events,
        preps=preps,
        horizon=manifest["horizon"],
        total_flows=manifest["total_flows"],
        sampled_flows=manifest["sampled_flows"],
    )
