"""End-to-end trace generation: world → flows → sampled NetFlow → matrix.

:class:`TraceGenerator` advances the synthetic world minute by minute,
emitting benign traffic, preparation probes, and attack floods; runs them
through packet sampling; tags every sampled flow with its auxiliary source
classes; and folds everything into a :class:`~repro.netflow.TrafficMatrix`.

The output :class:`Trace` bundles the matrix with the ground-truth
:class:`AttackEvent` records (onset/end/sources/anomalous byte series) that
the detectors, the trainer, and every evaluation figure consume.

Scale compression: the paper's trace is 100 days at 1440 min/day.  The
``minutes_per_day`` knob lets tests and benchmarks run a *compressed day*
(e.g. 120 "minutes") while every window (prep days, history length,
timescales) scales through the same :class:`ScenarioConfig`, so the shape of
the learning problem is preserved at laptop scale.
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..netflow.matrix import (
    SOURCE_CLASS_BLOCKLIST,
    SOURCE_CLASS_PREV_ATTACKER,
    SOURCE_CLASS_SPOOFED,
    TrafficMatrix,
)
from ..netflow.records import FlowRecord
from ..netflow.sampler import PacketSampler
from .attacks import AttackSignature, AttackType, generate_attack_flows, signature_for
from .benign import BenignConfig, BenignTrafficModel, BudgetedBenignTraffic
from .campaign import (
    Campaign,
    CampaignConfig,
    PlannedAttack,
    PlannedPrep,
    plan_carpet_bombing,
    plan_multi_vector,
    plan_pulse_wave,
    schedule_campaigns,
)
from .stream import MinuteSlice
from .world import IspWorld, WorldConfig

ATTACK_FAMILIES = ("campaign", "carpet_bombing", "pulse_wave", "multi_vector")
BENIGN_DRIFTS = ("flash_crowd", "diurnal_shift")

__all__ = [
    "ATTACK_FAMILIES",
    "BENIGN_DRIFTS",
    "ScenarioConfig",
    "AttackEvent",
    "Trace",
    "TraceGenerator",
]


@dataclass
class ScenarioConfig:
    """Everything needed to synthesize one dataset.

    ``total_days`` / ``minutes_per_day`` fix the horizon; ``prep_days``
    is the auxiliary-signal lookback of §3 (10 days in the paper).
    """

    total_days: float = 100.0
    minutes_per_day: int = 1440
    prep_days: float = 10.0
    n_customers: int = 20
    n_botnets: int = 6
    botnet_size: int = 400
    campaigns_per_botnet: int = 1
    sampling_rate: int = 1
    # Per-POP heterogeneous sampling (§5.1: "1:1 to 1:10,000 at various
    # routers").  When set, each customer's ingress POP is assigned one of
    # these rates round-robin and ``sampling_rate`` is ignored.
    sampling_rates: tuple[int, ...] | None = None
    benign_flows_per_minute: int = 6
    seed: int = 7
    # Smart-attacker knobs (§6.4): pin every attack's ramp-up dR, and/or
    # scale attack volume during the ramp-up (pre-plateau) phase so a
    # volume-changing attacker stays under CDet's radar longer.
    ramp_rate: float | None = None
    rampup_volume_scale: float = 1.0
    # §8 limitation scenario: a determined attacker using brand-new sources
    # for every attack (defeating A2) and skipping preparation probes
    # (muting A1/A3 prep signals).
    fresh_sources: bool = False
    skip_preparation: bool = False
    # Campaign shape knobs (None = CampaignConfig defaults).
    attacks_per_campaign: float | None = None
    target_group_size: int | None = None
    echo_probability: float | None = None
    # ---- scenario-matrix knobs (repro.scenarios) ---------------------
    # Attack family: the paper-style Markov campaigns, or one of the new
    # adversarial families (each backed by a scripted planner).
    attack_family: str = "campaign"
    # Pin every attack to one AttackType value (per-type paper scenarios).
    fixed_attack_type: str | None = None
    # No campaigns at all — pure-benign traces for drift stressors.
    attack_free: bool = False
    # Adaptive attacker: damp A1/A2/A3 preparation signals to this level
    # (0 = full prep as in the paper, 1 = fully silent preparation).
    prep_damping: float = 0.0
    # Pulse-wave shape (attack_family="pulse_wave").
    pulse_period: int = 6
    pulse_duty: float = 0.5
    # Carpet bombing (attack_family="carpet_bombing"): number of
    # simultaneous low-rate victims (None = every customer) and the
    # per-victim peak as a multiple of its benign base rate.
    carpet_targets: int | None = None
    carpet_intensity: float = 1.5
    # Benign concept drift: None | "flash_crowd" | "diurnal_shift",
    # starting at drift_start_day (None = mid-trace).
    benign_drift: str | None = None
    drift_start_day: float | None = None
    # ---- scale knobs (million-customer universes) --------------------
    # Lazy customer allocation: customers materialize on demand, so world
    # construction is O(1) in n_customers (see WorldConfig.lazy).
    lazy_world: bool = False
    # When set, benign traffic spends a fixed per-minute flow budget
    # (BudgetedBenignTraffic) instead of one generator pass per customer —
    # per-minute work becomes independent of n_customers.
    benign_flow_budget: int | None = None
    benign_hot_customers: int = 256
    benign_tail_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.total_days <= 0 or self.minutes_per_day < 1:
            raise ValueError("scenario horizon must be positive")
        if self.prep_days < 0:
            raise ValueError("prep_days must be non-negative")
        if self.prep_days >= self.total_days:
            raise ValueError(
                "prep_days must be shorter than the horizon "
                f"({self.prep_days} vs {self.total_days} days)"
            )
        if self.n_customers < 1 or self.n_botnets < 1 or self.botnet_size < 1:
            raise ValueError("population sizes must be >= 1")
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate is 1:N with N >= 1")
        if self.sampling_rates is not None and (
            not self.sampling_rates or any(r < 1 for r in self.sampling_rates)
        ):
            raise ValueError("sampling_rates must be a non-empty tuple of N >= 1")
        if self.rampup_volume_scale <= 0:
            raise ValueError("rampup_volume_scale must be positive")
        if self.ramp_rate is not None and self.ramp_rate <= 0:
            raise ValueError("ramp_rate (dR) must be positive")
        if self.attacks_per_campaign is not None and self.attacks_per_campaign <= 0:
            raise ValueError("attacks_per_campaign must be positive")
        if self.target_group_size is not None and self.target_group_size < 1:
            raise ValueError("target_group_size must be >= 1")
        if self.echo_probability is not None and not 0.0 <= self.echo_probability <= 1.0:
            raise ValueError("echo_probability must be in [0, 1]")
        if self.attack_family not in ATTACK_FAMILIES:
            raise ValueError(
                f"attack_family must be one of {ATTACK_FAMILIES}, "
                f"got {self.attack_family!r}"
            )
        if self.fixed_attack_type is not None:
            AttackType(self.fixed_attack_type)  # raises on unknown values
        if not 0.0 <= self.prep_damping <= 1.0:
            raise ValueError("prep_damping must be in [0, 1]")
        if self.pulse_period < 1:
            raise ValueError("pulse_period must be >= 1 minute")
        if not 0.0 < self.pulse_duty <= 1.0:
            raise ValueError("pulse_duty must be in (0, 1]")
        if self.carpet_targets is not None and self.carpet_targets < 1:
            raise ValueError("carpet_targets must be >= 1")
        if self.carpet_intensity <= 0:
            raise ValueError("carpet_intensity must be positive")
        if self.benign_drift is not None and self.benign_drift not in BENIGN_DRIFTS:
            raise ValueError(
                f"benign_drift must be one of {BENIGN_DRIFTS}, "
                f"got {self.benign_drift!r}"
            )
        if self.drift_start_day is not None and not (
            0 <= self.drift_start_day < self.total_days
        ):
            raise ValueError("drift_start_day must fall inside the horizon")
        if self.benign_flow_budget is not None and self.benign_flow_budget < 1:
            raise ValueError("benign_flow_budget must be >= 1")
        if self.benign_hot_customers < 1:
            raise ValueError("benign_hot_customers must be >= 1")
        if not 0.0 <= self.benign_tail_fraction <= 1.0:
            raise ValueError("benign_tail_fraction must be in [0, 1]")

    @property
    def horizon_minutes(self) -> int:
        return int(self.total_days * self.minutes_per_day)

    @property
    def prep_minutes(self) -> int:
        return int(self.prep_days * self.minutes_per_day)

    def world_config(self) -> WorldConfig:
        return WorldConfig(
            n_customers=self.n_customers,
            n_botnets=self.n_botnets,
            botnet_size=self.botnet_size,
            seed=self.seed,
            lazy=self.lazy_world,
        )

    def campaign_config(self) -> CampaignConfig:
        ramp_range = (
            (self.ramp_rate, self.ramp_rate)
            if self.ramp_rate is not None
            else (0.5, 2.5)
        )
        config = CampaignConfig(
            prep_days=self.prep_days,
            minutes_per_day=self.minutes_per_day,
            ramp_rate_range=ramp_range,
        )
        if self.attacks_per_campaign is not None:
            config.attacks_per_campaign_mean = self.attacks_per_campaign
        if self.target_group_size is not None:
            config.target_group_size = self.target_group_size
        if self.echo_probability is not None:
            config.echo_probability = self.echo_probability
        if self.fixed_attack_type is not None:
            config.fixed_type = AttackType(self.fixed_attack_type)
        return config

    @property
    def drift_minute(self) -> int | None:
        """First minute of benign concept drift (None = no drift)."""
        if self.benign_drift is None:
            return None
        start_day = (
            self.drift_start_day
            if self.drift_start_day is not None
            else self.total_days / 2
        )
        return int(start_day * self.minutes_per_day)

    def benign_config(self) -> BenignConfig:
        return BenignConfig(
            minutes_per_day=self.minutes_per_day,
            flows_per_minute=self.benign_flows_per_minute,
            drift_kind=self.benign_drift,
            drift_minute=self.drift_minute,
        )


@dataclass
class AttackEvent:
    """Ground truth for one attack, as recovered for evaluation (§2.3).

    ``anomalous_bytes`` is the per-minute anomalous byte series over
    ``[onset, end)`` — Area A of Figure 2 — used by the effectiveness and
    overhead metrics.  ``attackers`` is the set of source addresses whose
    flows matched the signature during the attack (it may include benign
    sources, exactly the imperfection §5.1 notes).
    """

    event_id: int
    customer_id: int
    customer_address: int
    attack_type: AttackType
    onset: int
    end: int
    signature: AttackSignature
    peak_bytes: float
    ramp_rate: float
    campaign_id: int
    botnet_id: int
    anomalous_bytes: np.ndarray = field(default_factory=lambda: np.zeros(0))
    attackers: set[int] = field(default_factory=set)
    # Multi-vector attacks carry one signature per additional vector; any
    # of them matching counts the flow as anomalous for this event.
    extra_signatures: tuple[AttackSignature, ...] = ()

    def matches_flow(self, flow: FlowRecord) -> bool:
        """Whether a flow matches any of the event's vector signatures."""
        if self.signature.matches(flow):
            return True
        return any(sig.matches(flow) for sig in self.extra_signatures)

    @property
    def duration(self) -> int:
        return self.end - self.onset

    def duration_class(self) -> str:
        """short (<5 min) / medium (<20 min) / long buckets, as in Figure 3.

        Attack durations are in real minutes regardless of the day
        compression knob, so the paper's absolute cuts apply directly.
        """
        if self.duration < 5:
            return "short"
        if self.duration < 20:
            return "medium"
        return "long"


@dataclass
class Trace:
    """A complete synthetic dataset: traffic matrix + ground truth."""

    config: ScenarioConfig
    world: IspWorld
    matrix: TrafficMatrix
    events: list[AttackEvent]
    preps: list[PlannedPrep]
    horizon: int
    total_flows: int
    sampled_flows: int

    def events_for_customer(self, customer_id: int) -> list[AttackEvent]:
        return [e for e in self.events if e.customer_id == customer_id]

    def events_by_type(self, attack_type: AttackType) -> list[AttackEvent]:
        return [e for e in self.events if e.attack_type == attack_type]


class TraceGenerator:
    """Drives the synthetic world and materializes a :class:`Trace`."""

    def __init__(
        self,
        config: ScenarioConfig | None = None,
        blocklist_membership=None,
    ) -> None:
        """``blocklist_membership`` is any object supporting ``addr in x``
        (e.g. a :class:`repro.signals.BlocklistDirectory`); when omitted the
        ground-truth listed-bot set is used for A1 tagging."""
        self.config = config or ScenarioConfig()
        # One root seed fans out into named, independent child streams
        # (SeedSequence spawning), one consumer each: campaign planning,
        # per-minute traffic draws, the benign model, packet sampling, and
        # spoofed-address pools.  No stream is shared between generators,
        # so the whole trace is reproducible from ``config.seed`` alone and
        # adding draws to one consumer can never perturb another.
        root = np.random.SeedSequence(self.config.seed)
        plan_ss, traffic_ss, benign_ss, sampler_ss, spoof_ss = root.spawn(5)
        self._plan_rng = np.random.default_rng(plan_ss)
        self._rng = np.random.default_rng(traffic_ss)
        self._spoof_rng = np.random.default_rng(spoof_ss)
        self.world = IspWorld(self.config.world_config())
        if self.config.benign_flow_budget is not None:
            self._benign: BenignTrafficModel | BudgetedBenignTraffic = (
                BudgetedBenignTraffic(
                    self.world.customers,
                    self.world.benign_clients,
                    self.world.country_of,
                    self.config.benign_config(),
                    rng=np.random.default_rng(benign_ss),
                    flow_budget=self.config.benign_flow_budget,
                    hot_customers=self.config.benign_hot_customers,
                    tail_fraction=self.config.benign_tail_fraction,
                )
            )
        else:
            self._benign = BenignTrafficModel(
                self.world.benign_clients,
                self.world.country_of,
                self.config.benign_config(),
                rng=np.random.default_rng(benign_ss),
            )
        rates = self.config.sampling_rates or (self.config.sampling_rate,)
        sampler_rng = np.random.default_rng(sampler_ss)
        self._samplers = [PacketSampler(r, rng=sampler_rng) for r in rates]
        # Blocklisted /24 ground truth is the union over botnets; the
        # signals.BlocklistDirectory adds category structure and noise on top.
        self.blocklisted_addrs: set[int] = set()
        for botnet in self.world.botnets:
            self.blocklisted_addrs.update(int(a) for a in botnet.blocklisted_members)
        self._blocklist = (
            blocklist_membership if blocklist_membership is not None
            else self.blocklisted_addrs
        )
        # Streaming state: one generator = one pass over the RNG streams.
        self._consumed = False
        self._events: list[AttackEvent] = []
        self._events_seen: list[AttackEvent] = []
        self._preps: list[PlannedPrep] = []
        self._total_flows = 0
        self._sampled_flows = 0

    def _sampler_for(self, customer_id: int) -> PacketSampler:
        """Each customer's ingress POP uses one sampler (round-robin).

        Customer ids are allocation indices, so the modulo mapping matches
        the historical per-customer round-robin table without materializing
        an entry per customer.
        """
        return self._samplers[customer_id % len(self._samplers)]

    # ------------------------------------------------------------------
    def _attack_sources(
        self, attack: PlannedAttack, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict[int, str]]:
        """Pick the source pool for one attack (bots + spoofed/resolvers)."""
        if self.config.fresh_sources:
            # §8 limitation: a determined attacker recruits brand-new hosts
            # per attack — never blocklisted, never previous attackers.
            base = int(0x2F000000 + attack.campaign_id * 2**20 + attack.onset * 256)
            fresh = base + rng.choice(200000, size=attack.n_sources, replace=False)
            fresh = fresh.astype(np.int64)
            self.world.route_table.announce(
                (int(fresh.min()), int(fresh.max())), 64900 + attack.campaign_id
            )
            return fresh, {int(a): "US" for a in fresh}
        botnet = self.world.botnets[attack.botnet_id]
        n_real = min(attack.n_sources, botnet.size)
        real = rng.choice(botnet.members, size=n_real, replace=False)
        country_of = dict(botnet.country_of)

        if attack.attack_type is AttackType.DNS_AMPLIFICATION:
            # Reflection: traffic arrives from open resolvers, not bots.
            n_refl = min(len(self.world.resolvers), max(20, n_real // 2))
            reflectors = rng.choice(self.world.resolvers, size=n_refl, replace=False)
            for a in reflectors:
                country_of[int(a)] = "US"
            return reflectors.astype(np.int64), country_of

        n_spoofed = int(attack.spoofed_fraction * n_real)
        if n_spoofed:
            half = n_spoofed // 2
            spoofed = np.concatenate(
                [
                    self.world.bogon_pool(half or 1, rng=self._spoof_rng),
                    self.world.unrouted_pool(n_spoofed - half or 1, rng=self._spoof_rng),
                ]
            )[:n_spoofed]
            for a in spoofed:
                country_of[int(a)] = "US"
            sources = np.concatenate([real[: n_real - n_spoofed], spoofed])
        else:
            sources = real
        return sources.astype(np.int64), country_of

    def _prep_flows(
        self,
        prep: PlannedPrep,
        minute: int,
        rng: np.random.Generator,
    ) -> list[FlowRecord]:
        """Low-rate probe traffic during a preparation window.

        The active fraction of eventual sources rises toward the attack
        (Figure 15: median blocklisted-source reappearance grows from ~66%
        five days out to ~93% one day out).
        """
        span = max(1, prep.end - prep.start)
        progress = (minute - prep.start) / span  # 0 → 1 approaching onset
        botnet = self.world.botnets[prep.botnet_id]
        damping = self.config.prep_damping
        active_fraction = 0.05 + 0.30 * progress
        n_active = max(1, int(active_fraction * botnet.size * 0.05))
        if damping > 0:
            # Adaptive attacker: probe with proportionally fewer sources;
            # a fully-damped minute stays silent.
            n_active = int(round((1.0 - damping) * n_active))
            if n_active == 0:
                return []
        # Probing favours blocklisted members (they are the reused, noisy
        # bots); an adaptive attacker avoids its listed bots proportionally.
        use_listed = rng.random() < 0.7 * (1.0 - damping)
        pool = botnet.blocklisted_members if use_listed else botnet.members
        sources = rng.choice(pool, size=min(n_active, len(pool)), replace=False)

        customer = self.world.customers[prep.customer_id]
        flows: list[FlowRecord] = []
        for src in sources:
            flows.append(
                FlowRecord(
                    timestamp=minute,
                    src_addr=int(src),
                    dst_addr=customer.address,
                    src_port=int(rng.integers(1024, 65535)),
                    dst_port=int(rng.choice([80, 443, 53, 0])),
                    protocol=int(rng.choice([6, 17])),
                    packets=int(rng.integers(1, 8)),
                    bytes_=int(rng.integers(60, 1500)),
                    tcp_flags=2 if rng.random() < 0.5 else 0,
                    src_country=botnet.country_of.get(int(src), "US"),
                )
            )
        # Occasional spoofed probes (the adaptive attacker damps these too).
        spoof_probability = prep.spoofed_fraction * progress * (1.0 - damping)
        if prep.spoofed_fraction > 0 and rng.random() < spoof_probability:
            for src in self.world.bogon_pool(max(1, n_active // 4), rng=self._spoof_rng):
                flows.append(
                    FlowRecord(
                        timestamp=minute,
                        src_addr=int(src),
                        dst_addr=customer.address,
                        src_port=int(rng.integers(1024, 65535)),
                        dst_port=443,
                        protocol=6,
                        packets=1,
                        bytes_=60,
                        tcp_flags=2,
                        src_country="US",
                    )
                )
        return flows

    # ------------------------------------------------------------------
    def _plan_campaigns(self, horizon: int) -> list[Campaign]:
        """Schedule attacks for the configured family (planning stream)."""
        cfg = self.config
        if cfg.attack_free:
            return []
        campaign_cfg = cfg.campaign_config()
        rng = self._plan_rng
        if cfg.attack_family == "campaign":
            return schedule_campaigns(
                self.world.botnets,
                self.world.customers,
                horizon,
                campaign_cfg,
                rng,
                campaigns_per_botnet=cfg.campaigns_per_botnet,
            )
        if cfg.attack_family == "carpet_bombing":
            n_targets = cfg.carpet_targets or len(self.world.customers)
            targets = self.world.customers[: min(n_targets, len(self.world.customers))]
            return [
                plan_carpet_bombing(
                    self.world.botnets[0],
                    targets,
                    campaign_cfg,
                    rng,
                    horizon,
                    intensity=cfg.carpet_intensity,
                    attack_type=campaign_cfg.fixed_type or AttackType.UDP_FLOOD,
                )
            ]
        # Pulse-wave / multi-vector: one campaign per botnet over
        # round-robin target groups, mirroring schedule_campaigns.
        campaigns: list[Campaign] = []
        customers = self.world.customers
        size = min(campaign_cfg.target_group_size, len(customers))
        cursor = 0
        for b, botnet in enumerate(self.world.botnets):
            targets = [customers[(cursor + i) % len(customers)] for i in range(size)]
            cursor += size
            if cfg.attack_family == "pulse_wave":
                campaigns.append(
                    plan_pulse_wave(
                        botnet,
                        targets,
                        campaign_cfg,
                        rng,
                        horizon,
                        campaign_id=b,
                        pulse_period=cfg.pulse_period,
                        pulse_duty=cfg.pulse_duty,
                        attack_type=campaign_cfg.fixed_type or AttackType.UDP_FLOOD,
                    )
                )
            else:  # multi_vector
                campaigns.append(
                    plan_multi_vector(
                        botnet, targets, campaign_cfg, rng, horizon, campaign_id=b
                    )
                )
        return campaigns

    # ------------------------------------------------------------------
    # TraceSource protocol
    @property
    def horizon(self) -> int:
        return self.config.horizon_minutes

    def events_so_far(self) -> list[AttackEvent]:
        """Ground-truth events whose onset the stream has reached."""
        return list(self._events_seen)

    def iter_minutes(
        self, start_minute: int = 0, end_minute: int | None = None
    ) -> Iterator[MinuteSlice]:
        """Stream the simulation as per-minute :class:`MinuteSlice` objects.

        The world always advances causally from minute 0 (every RNG stream
        is consumed in the same order as the materialized lane, which is
        what makes streaming and materialization byte-identical); slices
        outside ``[start_minute, end_minute)`` are simulated but not
        yielded.  One generator supports exactly one pass — the underlying
        streams advance as minutes are produced — so build a fresh
        :class:`TraceGenerator` to iterate again.
        """
        horizon = self.config.horizon_minutes
        end = horizon if end_minute is None else end_minute
        if not 0 <= start_minute <= end <= horizon:
            raise ValueError("requested range outside the scenario horizon")
        if self._consumed:
            raise RuntimeError(
                "TraceGenerator streams are single-shot; build a fresh "
                "generator to iterate again"
            )
        self._consumed = True
        return self._stream(start_minute, end)

    def _stream(self, start: int, end: int) -> Iterator[MinuteSlice]:
        """Run the simulation minute by minute (the one true minute loop)."""
        cfg = self.config
        rng = self._rng
        horizon = cfg.horizon_minutes

        campaigns = self._plan_campaigns(horizon)
        planned: list[PlannedAttack] = sorted(
            (a for c in campaigns for a in c.attacks), key=lambda a: a.onset
        )
        preps: list[PlannedPrep] = [p for c in campaigns for p in c.preps]
        self._preps = preps

        events: list[AttackEvent] = []
        for i, attack in enumerate(planned):
            customer = self.world.customers[attack.customer_id]
            extra = tuple(
                signature_for(t, customer.address)
                for t in attack.vector_types()
                if t is not attack.attack_type
            )
            events.append(
                AttackEvent(
                    event_id=i,
                    customer_id=attack.customer_id,
                    customer_address=customer.address,
                    attack_type=attack.attack_type,
                    onset=attack.onset,
                    end=attack.end,
                    signature=signature_for(attack.attack_type, customer.address),
                    peak_bytes=attack.peak_bytes,
                    ramp_rate=attack.ramp_rate,
                    campaign_id=attack.campaign_id,
                    botnet_id=attack.botnet_id,
                    anomalous_bytes=np.zeros(attack.end - attack.onset),
                    extra_signatures=extra,
                )
            )

        self._events = events

        # Per-attack fixed source pools (reused every minute of the attack —
        # bots persist within an attack).
        source_pools = {
            e.event_id: self._attack_sources(planned[e.event_id], rng) for e in events
        }

        # Per-customer state is allocated on first touch only, so idle
        # customers in a huge universe cost nothing.
        prev_attackers: defaultdict[int, set[int]] = defaultdict(set)
        # Index events/preps by active minute ranges for the sweep.
        events_by_onset = sorted(events, key=lambda e: e.onset)
        active_events: list[AttackEvent] = []
        event_cursor = 0
        spoof_cache: dict[int, bool] = {}

        for minute in range(end):
            # Activate/retire events.
            started_events: list[AttackEvent] = []
            while event_cursor < len(events_by_onset) and events_by_onset[event_cursor].onset <= minute:
                started_events.append(events_by_onset[event_cursor])
                active_events.append(events_by_onset[event_cursor])
                event_cursor += 1
            finished = [e for e in active_events if e.end <= minute]
            for e in finished:
                prev_attackers[e.customer_id].update(e.attackers)
            active_events = [e for e in active_events if e.end > minute]
            self._events_seen.extend(started_events)

            minute_flows: list[tuple[int, FlowRecord]] = []  # (customer_id, flow)

            # Benign traffic.
            minute_flows.extend(self._benign_flows(minute))

            # Preparation probes (suppressed in the §8 evasion scenario).
            if not cfg.skip_preparation:
                for prep in preps:
                    if prep.start <= minute < prep.end:
                        for flow in self._prep_flows(prep, minute, rng):
                            minute_flows.append((prep.customer_id, flow))

            # Attack floods.
            for event in active_events:
                attack = planned[event.event_id]
                rate = attack.rate_at(minute)
                if rate <= 0:
                    continue
                if rate < attack.peak_bytes and cfg.rampup_volume_scale != 1.0:
                    rate *= cfg.rampup_volume_scale
                sources, country_of = source_pools[event.event_id]
                # A per-minute subset participates (rotating bots).
                k = max(3, int(len(sources) * min(1.0, 0.3 + 0.7 * rate / attack.peak_bytes)))
                subset = rng.choice(sources, size=min(k, len(sources)), replace=False)
                flows = generate_attack_flows(
                    attack.type_at(minute),
                    minute,
                    event.customer_address,
                    subset,
                    rate,
                    rng,
                    country_of=country_of,
                )
                for flow in flows:
                    minute_flows.append((event.customer_id, flow))

            # Sample and tag — and fold signature-matching bytes into the
            # per-event anomalous series / attacker sets.  Aggregation into
            # a matrix is the *consumer's* choice (see ``materialize``).
            customer_ids: list[int] = []
            records: list[FlowRecord] = []
            mask_rows: dict[str, list[int]] = {}
            minute_total = 0
            for customer_id, flow in minute_flows:
                minute_total += 1
                sampled = self._sampler_for(customer_id).sample(flow)
                if sampled is None:
                    continue
                classes: list[str] = []
                if sampled.src_addr in self._blocklist:
                    classes.append(SOURCE_CLASS_BLOCKLIST)
                if sampled.src_addr in prev_attackers[customer_id]:
                    classes.append(SOURCE_CLASS_PREV_ATTACKER)
                spoofed = spoof_cache.get(sampled.src_addr)
                if spoofed is None:
                    spoofed = self.world.route_table.is_spoofed(sampled.src_addr)
                    spoof_cache[sampled.src_addr] = spoofed
                if spoofed:
                    classes.append(SOURCE_CLASS_SPOOFED)
                # Provenance class for autoregressive A2 recomputation.
                for event in active_events:
                    if event.customer_id == customer_id and event.matches_flow(sampled):
                        classes.append(f"botnet:{event.botnet_id}")
                        event.attackers.add(sampled.src_addr)
                        event.anomalous_bytes[minute - event.onset] += sampled.estimated_bytes
                        break
                row = len(records)
                customer_ids.append(customer_id)
                records.append(sampled)
                for cls in classes:
                    mask_rows.setdefault(cls, []).append(row)

            self._total_flows += minute_total
            self._sampled_flows += len(records)
            if minute >= start:
                n = len(records)
                masks: dict[str, np.ndarray] = {}
                for cls, rows in mask_rows.items():
                    m = np.zeros(n, dtype=bool)
                    m[rows] = True
                    masks[cls] = m
                yield MinuteSlice(
                    minute,
                    np.array(customer_ids, dtype=np.int64),
                    records=records,
                    class_masks=masks,
                    events_started=tuple(started_events),
                    events_ended=tuple(finished),
                    total_flows=minute_total,
                )

    def _benign_flows(self, minute: int) -> list[tuple[int, FlowRecord]]:
        """One minute of benign traffic (dense per-customer or budgeted)."""
        if isinstance(self._benign, BudgetedBenignTraffic):
            return self._benign.flows_for_minute(minute)
        out: list[tuple[int, FlowRecord]] = []
        for customer in self.world.customers:
            for flow in self._benign.flows_at(customer, minute):
                out.append((customer.customer_id, flow))
        return out

    def materialize(self) -> Trace:
        """Collect the full stream into an in-memory :class:`Trace`.

        The matrix fold uses the vectorized ``add_batch`` lane, which is
        bit-identical to scalar ``add_flow`` in arrival order, so the
        result matches the historical one-shot generation byte for byte.
        """
        cfg = self.config
        matrix = TrafficMatrix()
        for sl in self.iter_minutes():
            if sl.sampled_flows:
                matrix.add_batch(sl.customer_ids, sl.batch, sl.class_masks)
        return Trace(
            config=cfg,
            world=self.world,
            matrix=matrix,
            events=self._events,
            preps=self._preps,
            horizon=cfg.horizon_minutes,
            total_flows=self._total_flows,
            sampled_flows=self._sampled_flows,
        )

    def generate(self) -> Trace:
        """Deprecated alias of :meth:`materialize`.

        Full-trace materialization is the legacy lane; new call sites
        should stream :meth:`iter_minutes` (or call :meth:`materialize`
        explicitly when an in-memory :class:`Trace` is genuinely needed).
        """
        warnings.warn(
            "TraceGenerator.generate() is deprecated; stream iter_minutes() "
            "or call materialize() for an explicit in-memory trace",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.materialize()
