"""The ``TraceSource`` streaming protocol: traces as minute-slice streams.

Every producer of per-minute flow data — the live :class:`TraceGenerator`,
the :class:`TraceReplayer` reconstruction of a saved trace, and the
:class:`MaterializedTraceSource` adapter over an in-memory :class:`Trace` —
speaks one protocol::

    source.horizon                  # minutes in the stream
    source.iter_minutes(a, b)       # Iterator[MinuteSlice] over [a, b)
    source.events_so_far()          # ground-truth events revealed so far

Consumers (``eval.stream_trace``, the scenario matrix, ``cli serve``, the
scale bench) iterate :class:`MinuteSlice` objects and never need the whole
trace in memory.  A slice carries the minute's sampled flows in *both*
representations — a scalar record list and a columnar
:class:`~repro.netflow.FlowBatch` — each materialized lazily from whichever
one the producer built, so scalar-protocol consumers and the columnar
ingest fast path share one stream without conversion overhead on the side
they don't use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

import numpy as np

from ..netflow.records import FlowBatch, FlowRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenario imports us)
    from .scenario import AttackEvent, Trace

__all__ = [
    "MinuteSlice",
    "TraceSource",
    "MaterializedTraceSource",
    "as_trace_source",
]


class MinuteSlice:
    """One minute of sampled, source-class-tagged traffic.

    ``records`` and ``batch`` are two views of the same flows (arrival
    order preserved); ``class_masks`` maps each auxiliary source class
    (A1/A2/A3 plus per-botnet provenance) to a boolean membership mask
    over the records.  ``events_started`` / ``events_ended`` reveal
    ground truth incrementally: an event appears in ``events_ended`` once
    its ``attackers`` / ``anomalous_bytes`` fields are final.
    """

    __slots__ = (
        "minute",
        "customer_ids",
        "class_masks",
        "events_started",
        "events_ended",
        "total_flows",
        "_records",
        "_batch",
    )

    def __init__(
        self,
        minute: int,
        customer_ids: np.ndarray,
        *,
        records: list[FlowRecord] | None = None,
        batch: FlowBatch | None = None,
        class_masks: dict[str, np.ndarray] | None = None,
        events_started: tuple["AttackEvent", ...] = (),
        events_ended: tuple["AttackEvent", ...] = (),
        total_flows: int | None = None,
    ) -> None:
        if records is None and batch is None:
            raise ValueError("a MinuteSlice needs records or a batch")
        self.minute = minute
        self.customer_ids = np.asarray(customer_ids, dtype=np.int64)
        self._records = records
        self._batch = batch
        self.class_masks = class_masks or {}
        self.events_started = events_started
        self.events_ended = events_ended
        n = len(records) if records is not None else len(batch.array)
        if self.customer_ids.shape != (n,):
            raise ValueError("customer_ids must align with the minute's flows")
        self.total_flows = n if total_flows is None else total_flows

    @property
    def sampled_flows(self) -> int:
        return len(self.customer_ids)

    @property
    def records(self) -> list[FlowRecord]:
        """Scalar view (materialized from the batch on first access)."""
        if self._records is None:
            self._records = self._batch.to_records()
        return self._records

    @property
    def batch(self) -> FlowBatch:
        """Columnar view (materialized from the records on first access)."""
        if self._batch is None:
            self._batch = FlowBatch.from_records(self._records)
        return self._batch


@runtime_checkable
class TraceSource(Protocol):
    """Anything that can stream a trace minute by minute."""

    @property
    def horizon(self) -> int: ...

    def iter_minutes(
        self, start_minute: int = 0, end_minute: int | None = None
    ) -> Iterator[MinuteSlice]: ...

    def events_so_far(self) -> list["AttackEvent"]: ...


class MaterializedTraceSource:
    """Adapter presenting an in-memory :class:`Trace` as a TraceSource.

    Flow reconstruction delegates to :class:`TraceReplayer`, so the
    records it yields are identical to ``TraceReplayer.replay`` — the
    pre-streaming consumers' behaviour (alert streams, scenario
    baselines) is preserved byte for byte.
    """

    def __init__(self, trace: "Trace", seed: int = 0) -> None:
        from .replay import TraceReplayer

        self.trace = trace
        self._replayer = TraceReplayer(trace, seed=seed)
        self._cursor = 0

    @property
    def horizon(self) -> int:
        return self.trace.horizon

    def iter_minutes(
        self, start_minute: int = 0, end_minute: int | None = None
    ) -> Iterator[MinuteSlice]:
        for sl in self._replayer.iter_minutes(start_minute, end_minute):
            self._cursor = max(self._cursor, sl.minute + 1)
            yield sl

    def events_so_far(self) -> list["AttackEvent"]:
        return [e for e in self.trace.events if e.onset < self._cursor]


def as_trace_source(obj, seed: int = 0) -> TraceSource:
    """Coerce a :class:`Trace` (or any TraceSource) to a TraceSource."""
    if isinstance(obj, TraceSource):
        return obj
    from .scenario import Trace

    if isinstance(obj, Trace):
        return MaterializedTraceSource(obj, seed=seed)
    raise TypeError(f"cannot stream {type(obj).__name__} as a TraceSource")
