"""Replay a materialized trace as a live flow stream.

A :class:`Trace` stores per-minute aggregates, not raw flows; the replayer
reconstructs *equivalent* flows from each (customer, minute) cell — same
total bytes/packets, same source set, same per-protocol/port/flag/country
structure — so an :class:`~repro.core.OnlineXatu` (or any flow consumer)
can be driven from a saved trace.  Reconstruction is approximate at the
per-flow level but exact in every aggregate the 63 volumetric features
measure, which is all the downstream models see.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..netflow.matrix import (
    POPULAR_COUNTRIES,
    POPULAR_PORTS,
    SOURCE_CLASS_ALL,
    VOLUMETRIC_FEATURE_NAMES,
)
from ..netflow.records import FlowRecord, Protocol, TcpFlags
from .scenario import AttackEvent, Trace
from .stream import MinuteSlice

__all__ = ["TraceReplayer"]

_NAME_INDEX = {name: i for i, name in enumerate(VOLUMETRIC_FEATURE_NAMES)}
_PROTO_OF = {
    "udp": int(Protocol.UDP),
    "tcp": int(Protocol.TCP),
    "icmp": int(Protocol.ICMP),
}
_FLAG_OF = {
    "fin": TcpFlags.FIN, "syn": TcpFlags.SYN, "rst": TcpFlags.RST,
    "psh": TcpFlags.PSH, "ack": TcpFlags.ACK, "urg": TcpFlags.URG,
}


class TraceReplayer:
    """Reconstructs per-minute flow lists from a trace's matrix cells."""

    def __init__(self, trace: Trace, seed: int = 0) -> None:
        self.trace = trace
        self._rng = np.random.default_rng(seed)
        self._cursor = 0
        self._events_by_onset: dict[int, list[AttackEvent]] = {}
        for event in trace.events:
            self._events_by_onset.setdefault(event.onset, []).append(event)
        self._events_by_end: dict[int, list[AttackEvent]] = {}
        for event in trace.events:
            self._events_by_end.setdefault(event.end, []).append(event)

    # ------------------------------------------------------------------
    def _cell_flows(self, customer_address: int, minute: int, cell) -> list[FlowRecord]:
        """Rebuild flows for one cell, matching its aggregate structure."""
        vector = cell.finalize()
        total_bytes = cell.total_bytes
        total_packets = max(1, cell.total_packets)
        sources = sorted(cell._sources)
        if not sources or total_bytes <= 0:
            return []

        # Split the cell by protocol; within each protocol pick the most
        # common src port / flags / country from the cell's counters.
        flows: list[FlowRecord] = []
        remaining_bytes = total_bytes
        remaining_packets = total_packets
        protocols = []
        for proto_name, proto_num in _PROTO_OF.items():
            b = vector[_NAME_INDEX[f"{proto_name}_bytes"]]
            p = vector[_NAME_INDEX[f"{proto_name}_packets"]]
            if b > 0:
                protocols.append((proto_num, b, max(1, int(p))))
        if not protocols:
            protocols = [(int(Protocol.TCP), total_bytes, total_packets)]

        def dominant(prefix: str, candidates, default):
            best, best_v = default, 0.0
            for c in candidates:
                v = vector[_NAME_INDEX[f"{prefix}{c}_bytes"]]
                if v > best_v:
                    best, best_v = c, v
            return best

        src_port = dominant("sport", POPULAR_PORTS, 0)
        dst_port = dominant("dport", POPULAR_PORTS, 0)
        country = dominant("cc_", POPULAR_COUNTRIES, "US")
        flags = 0
        for name, bit in _FLAG_OF.items():
            if vector[_NAME_INDEX[f"flag_{name}_bytes"]] > 0:
                flags |= int(bit)

        # One flow per source per protocol, bytes split proportionally.
        src_cursor = 0
        for proto_num, proto_bytes, proto_packets in protocols:
            n = max(1, int(round(len(sources) * proto_bytes / total_bytes)))
            picks = [sources[(src_cursor + i) % len(sources)] for i in range(n)]
            src_cursor += n
            per_flow_bytes = max(1, int(proto_bytes // n))
            per_flow_packets = max(1, int(proto_packets // n))
            for addr in picks:
                flows.append(
                    FlowRecord(
                        timestamp=minute,
                        src_addr=int(addr),
                        dst_addr=customer_address,
                        src_port=src_port if proto_num != int(Protocol.ICMP) else 0,
                        dst_port=dst_port if proto_num != int(Protocol.ICMP) else 0,
                        protocol=proto_num,
                        packets=min(per_flow_packets, remaining_packets) or 1,
                        bytes_=min(per_flow_bytes, remaining_bytes) or 1,
                        tcp_flags=flags if proto_num == int(Protocol.TCP) else 0,
                        src_country=country,
                    )
                )
                remaining_bytes = max(0, remaining_bytes - per_flow_bytes)
                remaining_packets = max(0, remaining_packets - per_flow_packets)
        return flows

    def minute_flows(self, minute: int) -> list[FlowRecord]:
        """All customers' reconstructed flows for one minute."""
        flows: list[FlowRecord] = []
        for customer in self.trace.world.customers:
            cell = self.trace.matrix.cell(customer.customer_id, minute, SOURCE_CLASS_ALL)
            if cell is not None:
                flows.extend(self._cell_flows(customer.address, minute, cell))
        return flows

    def replay(
        self, start_minute: int = 0, end_minute: int | None = None
    ) -> Iterator[tuple[int, list[FlowRecord]]]:
        """Yield ``(minute, flows)`` pairs over a range."""
        end = end_minute if end_minute is not None else self.trace.horizon
        if not 0 <= start_minute <= end <= self.trace.horizon:
            raise ValueError("replay range outside the trace horizon")
        for minute in range(start_minute, end):
            yield minute, self.minute_flows(minute)

    # ------------------------------------------------------------------
    # TraceSource protocol
    @property
    def horizon(self) -> int:
        return self.trace.horizon

    def events_so_far(self) -> list[AttackEvent]:
        """Events whose onset the replay cursor has reached."""
        return [e for e in self.trace.events if e.onset < self._cursor]

    def iter_minutes(
        self, start_minute: int = 0, end_minute: int | None = None
    ) -> Iterator[MinuteSlice]:
        """Stream reconstructed minutes as :class:`MinuteSlice` objects.

        The records per minute are exactly :meth:`minute_flows` (same
        customer iteration order), so record-protocol consumers see the
        identical flow stream whether they use ``replay`` or the
        TraceSource lane.
        """
        end = end_minute if end_minute is not None else self.trace.horizon
        if not 0 <= start_minute <= end <= self.trace.horizon:
            raise ValueError("replay range outside the trace horizon")
        for minute in range(start_minute, end):
            records: list[FlowRecord] = []
            customer_ids: list[int] = []
            for customer in self.trace.world.customers:
                cell = self.trace.matrix.cell(
                    customer.customer_id, minute, SOURCE_CLASS_ALL
                )
                if cell is not None:
                    flows = self._cell_flows(customer.address, minute, cell)
                    records.extend(flows)
                    customer_ids.extend([customer.customer_id] * len(flows))
            self._cursor = max(self._cursor, minute + 1)
            yield MinuteSlice(
                minute,
                np.array(customer_ids, dtype=np.int64),
                records=records,
                events_started=tuple(self._events_by_onset.get(minute, ())),
                events_ended=tuple(self._events_by_end.get(minute, ())),
            )
