"""Scenario config files: JSON (de)serialization for ScenarioConfig.

Lets CLI users and experiment scripts pin a scenario in a versionable file
instead of command-line flags:

    python -m repro.cli pipeline --config my_scenario.json
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .scenario import ScenarioConfig

__all__ = ["scenario_to_json", "scenario_from_json", "load_scenario_file", "save_scenario_file"]

_TUPLE_FIELDS = ("sampling_rates",)


def scenario_to_json(config: ScenarioConfig) -> str:
    """Render a scenario config as pretty JSON."""
    return json.dumps(dataclasses.asdict(config), indent=2, sort_keys=True)


def scenario_from_json(text: str) -> ScenarioConfig:
    """Parse a scenario config from JSON, validating field names."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("scenario config must be a JSON object")
    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
    for name in _TUPLE_FIELDS:
        if data.get(name) is not None:
            data[name] = tuple(data[name])
    return ScenarioConfig(**data)


def save_scenario_file(config: ScenarioConfig, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(scenario_to_json(config))
    return path


def load_scenario_file(path: str | Path) -> ScenarioConfig:
    return scenario_from_json(Path(path).read_text())
