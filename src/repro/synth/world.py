"""The synthetic ISP: address space, customers, botnets, and routing.

This module replaces the paper's proprietary vantage point — a large ISP
serving >1,000 customer networks (§2.2).  The world allocates:

* customer networks, each with a public address, an AS number, and a benign
  traffic baseline,
* external "benign" client populations spread over the ten popular source
  countries of Appendix D,
* botnets — persistent pools of compromised hosts that campaigns reuse
  across attacks (this reuse is *the* source of the paper's A2 signal),
* open DNS resolvers for amplification attacks (deliberately neither
  blocklisted nor spoofed, matching the Figure 12 observation that DNS
  amplification benefits little from A1/A3),
* a :class:`~repro.netflow.routing.RouteTable` announcing every allocated
  prefix, so spoof classification (A3) has something to validate against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..netflow.addressing import ip_to_int
from ..netflow.matrix import POPULAR_COUNTRIES
from ..netflow.routing import RouteTable

__all__ = ["Customer", "Botnet", "IspWorld", "WorldConfig"]


@dataclass(frozen=True, slots=True)
class Customer:
    """One protected customer network (identified by its service address)."""

    customer_id: int
    address: int
    asn: int
    sector: str
    base_rate_bytes: float  # mean benign bytes per minute
    diurnal_amplitude: float  # 0..1 fraction of base rate


@dataclass
class Botnet:
    """A pool of compromised hosts controlled by one attacker group.

    ``members`` persists across attacks; ``blocklisted_fraction`` of members
    were caught by public blocklists *before* the trace starts (the A1
    ground truth), with per-category assignment done by the blocklist
    directory.
    """

    botnet_id: int
    members: np.ndarray  # int32 addresses
    country_of: dict[int, str]
    blocklisted_members: np.ndarray

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class WorldConfig:
    """Knobs for the synthetic world's population sizes."""

    n_customers: int = 20
    n_botnets: int = 6
    botnet_size: int = 400
    n_benign_clients: int = 4000
    n_resolvers: int = 300
    blocklisted_fraction: float = 0.55
    # Fraction of botnets whose members never made it onto any blocklist
    # (fresh infrastructure) — keeps the A1 signal from covering every
    # attack (Fig 4a: blocklisted sources convert in 65.7% of attacks).
    unlisted_botnet_fraction: float = 0.25
    seed: int = 7
    # Lazy customer allocation: customers materialize on demand from a
    # per-customer seed stream instead of an O(n_customers) allocation
    # loop, so million-customer universes cost nothing at rest.  Lazy and
    # eager universes are *different* worlds (the eager allocation draws
    # per-customer values sequentially from one stream); streaming vs
    # materialized generation stays byte-identical within either mode.
    lazy: bool = False


class _LazyCustomers(Sequence):
    """A virtual customer list: entries materialize on indexing.

    Each customer's parameters derive from an independent
    ``SeedSequence([seed, index])`` stream, so ``customers[i]`` is a pure
    function of ``(seed, i)`` — two lookups of the same index return equal
    (frozen-dataclass) values and no per-customer state is ever retained.
    """

    __slots__ = ("_base", "_n", "_sectors", "_seed")

    def __init__(self, base: int, n: int, sectors: tuple[str, ...], seed: int) -> None:
        self._base = base
        self._n = n
        self._sectors = sectors
        self._seed = seed

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        i = int(index)
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError("customer index out of range")
        rng = np.random.default_rng(np.random.SeedSequence([self._seed, i]))
        return Customer(
            customer_id=i,
            address=self._base + i * 256,
            asn=64500 + i,
            sector=self._sectors[i % len(self._sectors)],
            base_rate_bytes=float(rng.lognormal(mean=13.0, sigma=1.0)),
            diurnal_amplitude=float(rng.uniform(0.2, 0.6)),
        )


class IspWorld:
    """Allocates the synthetic internet and exposes its ground truth."""

    # Address plan (all integers):
    #   customers:       203.0.0.0/16-ish space, one address each
    #   benign clients:  20.0.0.0/8 region, grouped per country
    #   botnet members:  45.0.0.0/8 region
    #   DNS resolvers:   8.0.0.0/8 region
    # Bogon space (10/8, 192.168/16, ...) is reserved for spoofed sources.
    _CUSTOMER_BASE = ip_to_int("203.1.0.0")
    _BENIGN_BASE = ip_to_int("20.0.0.0")
    _BOTNET_BASE = ip_to_int("45.0.0.0")
    _RESOLVER_BASE = ip_to_int("8.8.0.0")
    _UNROUTED_BASE = ip_to_int("41.77.0.0")  # allocated to attackers, never announced

    _SECTORS = (
        "telecom", "healthcare", "financial", "shopping", "government", "education",
    )

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.route_table = RouteTable()
        self.customers: Sequence[Customer] = []
        self.botnets: list[Botnet] = []
        self.benign_clients: np.ndarray = np.empty(0, dtype=np.int64)
        self.resolvers: np.ndarray = np.empty(0, dtype=np.int64)
        self.country_of: dict[int, str] = {}
        self.asn_of_customer: dict[int, int] = {}
        self._allocate()

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        cfg = self.config
        rng = self._rng

        if cfg.lazy:
            # Customers materialize on demand; one covering announcement
            # replaces the per-customer /24s (same spoof-check semantics
            # for every customer address, O(1) state).
            self.customers = _LazyCustomers(
                self._CUSTOMER_BASE, cfg.n_customers, self._SECTORS, cfg.seed
            )
            self.route_table.announce(
                (self._CUSTOMER_BASE, self._CUSTOMER_BASE + cfg.n_customers * 256 - 1),
                64500,
            )
        else:
            # Customers: heavy-tailed benign baselines so effectiveness
            # spreads.
            customers: list[Customer] = []
            for i in range(cfg.n_customers):
                address = self._CUSTOMER_BASE + i * 256  # one /24 apart
                asn = 64500 + i
                base_rate = float(rng.lognormal(mean=13.0, sigma=1.0))  # ~0.5 MB/min
                customer = Customer(
                    customer_id=i,
                    address=address,
                    asn=asn,
                    sector=self._SECTORS[i % len(self._SECTORS)],
                    base_rate_bytes=base_rate,
                    diurnal_amplitude=float(rng.uniform(0.2, 0.6)),
                )
                customers.append(customer)
                self.asn_of_customer[address] = asn
                self.route_table.announce((address & 0xFFFFFF00, address | 0xFF), asn)
            self.customers = customers

        # Benign clients: per-country blocks (weighted toward the popular
        # countries, matching Appendix D's >95% coverage).
        weights = np.array([0.35, 0.12, 0.05, 0.12, 0.07, 0.05, 0.06, 0.07, 0.06, 0.05])
        counts = (weights * cfg.n_benign_clients).astype(int)
        clients: list[int] = []
        offset = 0
        for country, count in zip(POPULAR_COUNTRIES, counts):
            block = self._BENIGN_BASE + offset
            addrs = block + np.arange(count)
            asn = 65000 + offset // 65536
            self.route_table.announce((int(addrs[0]), int(addrs[-1])), asn)
            for a in addrs:
                self.country_of[int(a)] = country
            clients.extend(int(a) for a in addrs)
            offset += count + 256
        self.benign_clients = np.array(clients, dtype=np.int64)

        # Botnets: contiguous-ish blocks per botnet across mixed countries.
        bot_countries = list(POPULAR_COUNTRIES) + ["RU", "VN", "ID"]
        for b in range(cfg.n_botnets):
            base = self._BOTNET_BASE + b * 65536
            members = base + rng.choice(65536, size=cfg.botnet_size, replace=False)
            members = np.sort(members).astype(np.int64)
            country_of = {
                int(a): bot_countries[int(rng.integers(len(bot_countries)))]
                for a in members
            }
            self.country_of.update(country_of)
            if rng.random() < cfg.unlisted_botnet_fraction:
                listed = np.empty(0, dtype=np.int64)
            else:
                n_listed = int(round(cfg.blocklisted_fraction * cfg.botnet_size))
                listed = rng.choice(members, size=n_listed, replace=False)
            self.route_table.announce((base, base + 65535), 65400 + b)
            self.botnets.append(
                Botnet(
                    botnet_id=b,
                    members=members,
                    country_of=country_of,
                    blocklisted_members=np.sort(listed),
                )
            )

        # Open resolvers (for DNS amplification): routed, valid-origin, and
        # never blocklisted.
        self.resolvers = self._RESOLVER_BASE + np.arange(cfg.n_resolvers, dtype=np.int64)
        self.route_table.announce(
            (int(self.resolvers[0]), int(self.resolvers[-1])), 65300
        )
        for a in self.resolvers:
            self.country_of[int(a)] = "US"

    # ------------------------------------------------------------------
    def unrouted_pool(
        self, size: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Addresses from space never announced in the route table.

        Used for the "unrouted" flavour of spoofed attack sources.  Pass an
        explicit ``rng`` to keep generation-time draws off the allocation
        stream (the trace generator uses its own named spoof stream).
        """
        rng = self._rng if rng is None else rng
        return self._UNROUTED_BASE + rng.choice(
            60000, size=size, replace=False
        ).astype(np.int64)

    def bogon_pool(
        self, size: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Addresses from RFC1918 space — the "obviously spoofed" flavour."""
        rng = self._rng if rng is None else rng
        base = ip_to_int("10.0.0.0")
        return base + rng.choice(2**20, size=size, replace=False).astype(np.int64)

    def customer_by_address(self, address: int) -> Customer | None:
        if isinstance(self.customers, _LazyCustomers):
            offset = address - self._CUSTOMER_BASE
            index, rem = divmod(offset, 256)
            if rem == 0 and 0 <= index < self.config.n_customers:
                return self.customers[index]
            return None
        for customer in self.customers:
            if customer.address == address:
                return customer
        return None
