"""Attack campaigns: preparation phases, serial attacks, correlated targets.

A *campaign* is one attacker group (backed by a botnet) running a series of
attacks.  The campaign engine reproduces the empirical regularities that the
paper's auxiliary signals exploit:

* **Preparation** (§3, Fig 15): for days before each attack, a growing
  fraction of the eventual attack sources send low-rate probe traffic at the
  target — blocklisted members (A1), members that attacked the same customer
  before (A2), and spoofed probes (A3).
* **Serial same-type attacks** (Fig 4b): consecutive attacks on a customer
  follow the :data:`~repro.synth.attacks.TYPE_TRANSITIONS` Markov chain.
* **Correlated targets** (Fig 4c): a campaign holds a small *target group*
  of customers and walks attacks across them, so the bipartite
  attacker-customer clustering coefficient (A5) rises near attacks.
* **Weak signals** (§3.2): campaigns also run *aborted* preparations that
  never culminate in an attack, so prep activity alone cannot be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .attacks import ATTACK_TYPE_MIX, TYPE_TRANSITIONS, AttackType, signature_for
from .world import Botnet, Customer

__all__ = [
    "PlannedAttack",
    "PlannedPrep",
    "CampaignConfig",
    "Campaign",
    "schedule_campaigns",
    "plan_carpet_bombing",
    "plan_pulse_wave",
    "plan_multi_vector",
]


@dataclass(frozen=True, slots=True)
class PlannedAttack:
    """One scheduled attack (the ground-truth anomaly of Figure 2).

    ``onset`` is the anomaly-start minute; the volumetric ramp covers
    ``[onset, onset + ramp_minutes)`` and the attack ends at ``end``
    (exclusive).  ``peak_bytes`` is per-minute at the plateau.
    """

    campaign_id: int
    botnet_id: int
    customer_id: int
    attack_type: AttackType
    onset: int
    end: int
    peak_bytes: float
    ramp_rate: float  # dR: max |d log2(rate) / dt| per minute (Appendix G)
    n_sources: int
    spoofed_fraction: float
    # Pulse-wave shaping: when ``pulse_period`` > 0 the flood cycles through
    # on/off phases (``pulse_duty`` fraction of each period is "on"), which
    # defeats sustain/release logic in threshold detectors.
    pulse_period: int = 0
    pulse_duty: float = 1.0
    # Multi-vector composition: ``(offset_minutes, type)`` switch points,
    # sorted by offset; the flood changes generator mid-attack.
    vectors: tuple[tuple[int, AttackType], ...] = ()

    @property
    def duration(self) -> int:
        return self.end - self.onset

    @property
    def ramp_minutes(self) -> int:
        """Minutes until the ramp reaches the plateau at rate ``2**dR``/min."""
        start_fraction = 1.0 / 16.0  # ramp starts at peak/16
        if self.ramp_rate <= 0:
            return 0
        return int(np.ceil(np.log2(1.0 / start_fraction) / self.ramp_rate))

    def rate_at(self, minute: int) -> float:
        """Anomalous bytes/minute at ``minute`` (0 outside the window)."""
        if not self.onset <= minute < self.end:
            return 0.0
        if self.pulse_period > 0:
            phase = (minute - self.onset) % self.pulse_period
            if phase >= self.pulse_duty * self.pulse_period:
                return 0.0
        if self.ramp_rate <= 0:
            return self.peak_bytes
        start = self.peak_bytes / 16.0
        rate = start * 2.0 ** (self.ramp_rate * (minute - self.onset))
        return float(min(rate, self.peak_bytes))

    def type_at(self, minute: int) -> AttackType:
        """The active vector at ``minute`` (multi-vector attacks switch)."""
        current = self.attack_type
        for offset, vector_type in self.vectors:
            if minute - self.onset >= offset:
                current = vector_type
        return current

    def vector_types(self) -> tuple[AttackType, ...]:
        """All distinct vectors this attack runs, in first-use order."""
        seen: list[AttackType] = [self.attack_type]
        for _offset, vector_type in self.vectors:
            if vector_type not in seen:
                seen.append(vector_type)
        return tuple(seen)


@dataclass(frozen=True, slots=True)
class PlannedPrep:
    """A preparation window preceding (or, if aborted, not preceding) an attack."""

    campaign_id: int
    botnet_id: int
    customer_id: int
    start: int
    end: int  # exclusive; equals the attack onset for real preps
    aborted: bool
    spoofed_fraction: float


@dataclass
class CampaignConfig:
    """Statistical shape of campaign behaviour."""

    prep_days: float = 10.0
    minutes_per_day: int = 1440
    attacks_per_campaign_mean: float = 6.0
    target_group_size: int = 3
    inter_attack_gap_days: tuple[float, float] = (0.5, 4.0)
    aborted_prep_rate: float = 0.5  # aborted preps per real attack
    short_attack_fraction: float = 0.5   # < 5 "minutes" equivalent
    spoofed_fraction_by_type: dict[AttackType, float] | None = None
    source_participation: float = 0.6  # fraction of botnet active per attack
    ramp_rate_range: tuple[float, float] = (0.5, 2.5)  # dR (Appendix G)
    # Fig 4c: attacker groups move across group members within minutes —
    # each attack spawns a correlated "echo" attack on another group member
    # with this probability.
    echo_probability: float = 0.4
    echo_delay_range: tuple[int, int] = (2, 12)  # minutes after the primary
    # Pin every attack to one type (scenario matrix: per-type scenarios)
    # instead of sampling the Fig 4b Markov chain.
    fixed_type: AttackType | None = None


_DEFAULT_SPOOF_FRACTION: dict[AttackType, float] = {
    AttackType.UDP_FLOOD: 0.25,
    AttackType.TCP_SYN: 0.5,
    AttackType.TCP_RST: 0.3,
    AttackType.TCP_ACK: 0.15,
    AttackType.DNS_AMPLIFICATION: 0.0,  # resolvers are real hosts
    AttackType.ICMP_FLOOD: 0.2,
}

# Probability that a given attack uses spoofing at all (Fig 4a: only 26.3%
# of attacks have spoofed sources that convert to attackers; most floods
# run entirely from real bots).
_SPOOF_USE_PROBABILITY: dict[AttackType, float] = {
    AttackType.UDP_FLOOD: 0.5,
    AttackType.TCP_SYN: 0.8,
    AttackType.TCP_RST: 0.5,
    AttackType.TCP_ACK: 0.2,
    AttackType.DNS_AMPLIFICATION: 0.0,
    AttackType.ICMP_FLOOD: 0.3,
}


class Campaign:
    """One attacker group's schedule against its target customer group."""

    def __init__(
        self,
        campaign_id: int,
        botnet: Botnet,
        targets: list[Customer],
        config: CampaignConfig,
        rng: np.random.Generator,
    ) -> None:
        self.campaign_id = campaign_id
        self.botnet = botnet
        self.targets = targets
        self.config = config
        self._rng = rng
        self.attacks: list[PlannedAttack] = []
        self.preps: list[PlannedPrep] = []

    # ------------------------------------------------------------------
    def _next_type(self, current: AttackType | None) -> AttackType:
        """Sample the next attack type (Markov chain of Fig 4b)."""
        if self.config.fixed_type is not None:
            return self.config.fixed_type
        if current is None:
            types = list(ATTACK_TYPE_MIX)
            probs = np.array([ATTACK_TYPE_MIX[t] for t in types])
        else:
            row = TYPE_TRANSITIONS[current]
            types = list(row)
            probs = np.array([row[t] for t in types])
        probs = probs / probs.sum()
        return types[int(self._rng.choice(len(types), p=probs))]

    def _sample_duration(self) -> int:
        """Attack duration in minutes, matching §2.3's short-attack skew.

        63% of attacks are shorter than 5 minutes and ~74% shorter than
        20 minutes in the paper's alert corpus.
        """
        u = self._rng.random()
        if u < self.config.short_attack_fraction:
            return int(self._rng.integers(2, 6))  # short
        if u < 0.78:
            return int(self._rng.integers(6, 21))  # medium
        return int(self._rng.integers(21, 90))  # long

    def plan(self, horizon_minutes: int, start_minute: int = 0) -> None:
        """Fill ``attacks`` and ``preps`` over ``[start, horizon)``."""
        cfg = self.config
        rng = self._rng
        prep_minutes = int(cfg.prep_days * cfg.minutes_per_day)
        spoof_of = cfg.spoofed_fraction_by_type or _DEFAULT_SPOOF_FRACTION

        n_attacks = max(1, int(rng.poisson(cfg.attacks_per_campaign_mean)))
        # First onset leaves room for a full preparation window.
        cursor = start_minute + prep_minutes + int(
            rng.uniform(0, 2 * cfg.minutes_per_day)
        )
        current_type: AttackType | None = None
        target_idx = int(rng.integers(len(self.targets)))

        for _ in range(n_attacks):
            if cursor >= horizon_minutes:
                break
            current_type = self._next_type(current_type)
            # Correlated targets: usually stay, sometimes move within group.
            if rng.random() < 0.25:
                target_idx = int(rng.integers(len(self.targets)))
            target = self.targets[target_idx]

            duration = self._sample_duration()
            onset = cursor
            end = min(onset + duration, horizon_minutes)
            peak = target.base_rate_bytes * float(rng.uniform(4.0, 40.0))
            ramp_rate = float(rng.uniform(*cfg.ramp_rate_range))
            n_sources = max(
                5, int(cfg.source_participation * self.botnet.size * rng.uniform(0.5, 1.0))
            )
            use_spoofing = rng.random() < _SPOOF_USE_PROBABILITY.get(current_type, 0.3)
            spoofed = spoof_of.get(current_type, 0.0) if use_spoofing else 0.0

            self.attacks.append(
                PlannedAttack(
                    campaign_id=self.campaign_id,
                    botnet_id=self.botnet.botnet_id,
                    customer_id=target.customer_id,
                    attack_type=current_type,
                    onset=onset,
                    end=end,
                    peak_bytes=peak,
                    ramp_rate=ramp_rate,
                    n_sources=n_sources,
                    spoofed_fraction=spoofed,
                )
            )
            self.preps.append(
                PlannedPrep(
                    campaign_id=self.campaign_id,
                    botnet_id=self.botnet.botnet_id,
                    customer_id=target.customer_id,
                    start=max(start_minute, onset - prep_minutes),
                    end=onset,
                    aborted=False,
                    spoofed_fraction=spoofed,
                )
            )
            # Correlated echo attack on another group member (Fig 4c): same
            # botnet, same type, minutes later.
            if len(self.targets) > 1 and rng.random() < cfg.echo_probability:
                others = [t for t in self.targets if t.customer_id != target.customer_id]
                echo_target = others[int(rng.integers(len(others)))]
                echo_onset = onset + int(rng.integers(*cfg.echo_delay_range))
                echo_duration = max(4, int(duration * 0.75))
                echo_end = min(echo_onset + echo_duration, horizon_minutes)
                if echo_end > echo_onset:
                    self.attacks.append(
                        PlannedAttack(
                            campaign_id=self.campaign_id,
                            botnet_id=self.botnet.botnet_id,
                            customer_id=echo_target.customer_id,
                            attack_type=current_type,
                            onset=echo_onset,
                            end=echo_end,
                            peak_bytes=echo_target.base_rate_bytes * float(rng.uniform(4.0, 20.0)),
                            ramp_rate=ramp_rate,
                            n_sources=n_sources,
                            spoofed_fraction=spoofed,
                        )
                    )
                    self.preps.append(
                        PlannedPrep(
                            campaign_id=self.campaign_id,
                            botnet_id=self.botnet.botnet_id,
                            customer_id=echo_target.customer_id,
                            start=max(start_minute, echo_onset - prep_minutes),
                            end=echo_onset,
                            aborted=False,
                            spoofed_fraction=spoofed,
                        )
                    )
            gap_days = rng.uniform(*cfg.inter_attack_gap_days)
            cursor = end + int(gap_days * cfg.minutes_per_day)

        # Aborted preparations on random group members (weak-signal noise).
        n_aborted = int(rng.poisson(cfg.aborted_prep_rate * max(1, len(self.attacks))))
        for _ in range(n_aborted):
            target = self.targets[int(rng.integers(len(self.targets)))]
            start = int(rng.uniform(start_minute, max(start_minute + 1, horizon_minutes - prep_minutes)))
            self.preps.append(
                PlannedPrep(
                    campaign_id=self.campaign_id,
                    botnet_id=self.botnet.botnet_id,
                    customer_id=target.customer_id,
                    start=start,
                    end=min(start + prep_minutes, horizon_minutes),
                    aborted=True,
                    spoofed_fraction=0.2,
                )
            )


def _prep_for(
    attack: PlannedAttack, config: CampaignConfig, start_minute: int = 0
) -> PlannedPrep:
    """The real (non-aborted) preparation window preceding ``attack``."""
    prep_minutes = int(config.prep_days * config.minutes_per_day)
    return PlannedPrep(
        campaign_id=attack.campaign_id,
        botnet_id=attack.botnet_id,
        customer_id=attack.customer_id,
        start=max(start_minute, attack.onset - prep_minutes),
        end=attack.onset,
        aborted=False,
        spoofed_fraction=attack.spoofed_fraction,
    )


def plan_carpet_bombing(
    botnet: Botnet,
    targets: list[Customer],
    config: CampaignConfig,
    rng: np.random.Generator,
    horizon_minutes: int,
    campaign_id: int = 0,
    intensity: float = 1.5,
    rounds: int = 2,
    duration: int = 45,
    attack_type: AttackType = AttackType.UDP_FLOOD,
) -> Campaign:
    """Carpet bombing: many simultaneous low-rate floods across targets.

    Every target in the group is hit at once, each at only ``intensity`` ×
    its benign base rate — individually under a per-customer volumetric
    threshold (DoLLM, arXiv:2405.07638), while the aggregate across the
    prefix is a full-size flood.  The botnet splits across targets, so each
    victim sees a modest source count at probe-like rates.
    """
    campaign = Campaign(campaign_id, botnet, targets, config, rng)
    prep_minutes = int(config.prep_days * config.minutes_per_day)
    first_onset = prep_minutes + int(rng.uniform(0, 0.5 * config.minutes_per_day))
    spacing = max(
        duration + 1, (horizon_minutes - first_onset) // max(1, rounds)
    )
    n_sources = max(5, int(config.source_participation * botnet.size / max(1, len(targets))))
    for r in range(rounds):
        onset = first_onset + r * spacing
        if onset >= horizon_minutes:
            break
        for i, target in enumerate(targets):
            # Slight stagger (0-2 min) mimics a rolling sweep over the prefix.
            t_onset = min(onset + int(rng.integers(0, 3)), horizon_minutes - 1)
            t_end = min(t_onset + duration, horizon_minutes)
            attack = PlannedAttack(
                campaign_id=campaign_id,
                botnet_id=botnet.botnet_id,
                customer_id=target.customer_id,
                attack_type=attack_type,
                onset=t_onset,
                end=t_end,
                peak_bytes=target.base_rate_bytes * intensity,
                ramp_rate=0.0,  # flat low rate: nothing to hide
                n_sources=n_sources,
                spoofed_fraction=0.1,
            )
            campaign.attacks.append(attack)
            campaign.preps.append(_prep_for(attack, config))
    return campaign


def plan_pulse_wave(
    botnet: Botnet,
    targets: list[Customer],
    config: CampaignConfig,
    rng: np.random.Generator,
    horizon_minutes: int,
    campaign_id: int = 0,
    pulse_period: int = 6,
    pulse_duty: float = 0.5,
    n_attacks: int = 3,
    duration: int = 40,
    attack_type: AttackType = AttackType.UDP_FLOOD,
) -> Campaign:
    """Pulse-wave floods: short full-rate bursts separated by silence.

    Each burst is well above the volumetric threshold but shorter than a
    sustain window, and the off-phase resets release logic — the classic
    way to defeat sustain/release detectors while still saturating the
    victim during every on-phase.
    """
    campaign = Campaign(campaign_id, botnet, targets, config, rng)
    prep_minutes = int(config.prep_days * config.minutes_per_day)
    cursor = prep_minutes + int(rng.uniform(0, config.minutes_per_day))
    target_idx = int(rng.integers(len(targets)))
    for _ in range(n_attacks):
        if cursor >= horizon_minutes:
            break
        if rng.random() < 0.3:
            target_idx = int(rng.integers(len(targets)))
        target = targets[target_idx]
        attack = PlannedAttack(
            campaign_id=campaign_id,
            botnet_id=botnet.botnet_id,
            customer_id=target.customer_id,
            attack_type=attack_type,
            onset=cursor,
            end=min(cursor + duration, horizon_minutes),
            peak_bytes=target.base_rate_bytes * float(rng.uniform(8.0, 24.0)),
            ramp_rate=0.0,  # bursts jump straight to peak
            n_sources=max(5, int(config.source_participation * botnet.size)),
            spoofed_fraction=0.2,
            pulse_period=pulse_period,
            pulse_duty=pulse_duty,
        )
        campaign.attacks.append(attack)
        campaign.preps.append(_prep_for(attack, config))
        gap_days = rng.uniform(*config.inter_attack_gap_days)
        cursor = attack.end + int(gap_days * config.minutes_per_day)
    return campaign


def plan_multi_vector(
    botnet: Botnet,
    targets: list[Customer],
    config: CampaignConfig,
    rng: np.random.Generator,
    horizon_minutes: int,
    campaign_id: int = 0,
    vector_chain: tuple[AttackType, ...] = (
        AttackType.UDP_FLOOD,
        AttackType.TCP_SYN,
        AttackType.TCP_ACK,
    ),
    n_attacks: int = 3,
    duration: int = 36,
) -> Campaign:
    """Multi-vector attacks: the flood switches generators mid-attack.

    One anomaly window sequentially composes several vectors (e.g. UDP →
    SYN → ACK), so any single-signature diversion covers only part of the
    attack and type-conditioned models see a moving target.
    """
    if len(vector_chain) < 2:
        raise ValueError("multi-vector attacks need at least two vectors")
    campaign = Campaign(campaign_id, botnet, targets, config, rng)
    prep_minutes = int(config.prep_days * config.minutes_per_day)
    cursor = prep_minutes + int(rng.uniform(0, config.minutes_per_day))
    target_idx = int(rng.integers(len(targets)))
    stage = max(1, duration // len(vector_chain))
    vectors = tuple(
        (stage * i, vector_chain[i]) for i in range(1, len(vector_chain))
    )
    for _ in range(n_attacks):
        if cursor >= horizon_minutes:
            break
        if rng.random() < 0.3:
            target_idx = int(rng.integers(len(targets)))
        target = targets[target_idx]
        attack = PlannedAttack(
            campaign_id=campaign_id,
            botnet_id=botnet.botnet_id,
            customer_id=target.customer_id,
            attack_type=vector_chain[0],
            onset=cursor,
            end=min(cursor + duration, horizon_minutes),
            peak_bytes=target.base_rate_bytes * float(rng.uniform(6.0, 30.0)),
            ramp_rate=float(rng.uniform(*config.ramp_rate_range)),
            n_sources=max(5, int(config.source_participation * botnet.size)),
            spoofed_fraction=0.2,
            vectors=vectors,
        )
        campaign.attacks.append(attack)
        campaign.preps.append(_prep_for(attack, config))
        gap_days = rng.uniform(*config.inter_attack_gap_days)
        cursor = attack.end + int(gap_days * config.minutes_per_day)
    return campaign


def schedule_campaigns(
    botnets: list[Botnet],
    customers: list[Customer],
    horizon_minutes: int,
    config: CampaignConfig,
    rng: np.random.Generator,
    campaigns_per_botnet: int = 1,
) -> list[Campaign]:
    """Create and plan campaigns: each botnet attacks a small customer group.

    Target groups may overlap between botnets (the Figure 4c pattern where
    several attacker groups hit overlapping customer sets).
    """
    campaigns: list[Campaign] = []
    cid = 0
    n_customers = len(customers)
    cursor = 0
    for botnet in botnets:
        for _ in range(campaigns_per_botnet):
            size = min(config.target_group_size, n_customers)
            # Mostly-disjoint primary targets (round-robin chunks) keep the
            # same-type streaks of Fig 4b per customer; an occasional shared
            # extra target creates the attacker-overlap of Fig 4c.
            targets = [customers[(cursor + i) % n_customers] for i in range(size)]
            cursor += size
            if rng.random() < 0.3 and n_customers > size:
                extra = customers[int(rng.integers(n_customers))]
                if extra not in targets:
                    targets.append(extra)
            campaign = Campaign(cid, botnet, targets, config, rng)
            campaign.plan(horizon_minutes)
            campaigns.append(campaign)
            cid += 1
    return campaigns
