"""Benign background traffic model.

Each customer receives diurnal web/DNS/mail-shaped traffic from the benign
client population.  The model deliberately includes *benign bursts* — flash
crowds lasting a few minutes — because the whole premise of the paper (§1)
is that "benign traffic can be bursty" and volumetric detectors must stay
conservative to avoid paging on those bursts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..netflow.records import FlowRecord, Protocol, TcpFlags
from .world import Customer

__all__ = ["BenignTrafficModel", "BenignConfig", "BudgetedBenignTraffic"]


@dataclass
class BenignConfig:
    """Shape parameters for the benign traffic generator."""

    minutes_per_day: int = 1440
    flows_per_minute: int = 6
    burst_probability: float = 0.002  # per customer-minute
    burst_multiplier: float = 6.0
    burst_duration: int = 4  # minutes
    noise_sigma: float = 0.15
    # Concept drift (scenario matrix): from ``drift_minute`` on, the benign
    # distribution changes shape.  "flash_crowd" multiplies the burst
    # frequency by ``drift_scale`` × 10 (a viral-event regime of frequent
    # legitimate surges); "diurnal_shift" moves the diurnal peak half a day
    # and raises the baseline by ``drift_scale``.  Neither is an attack —
    # detectors must ride the drift out without alerting.
    drift_kind: str | None = None  # None | "flash_crowd" | "diurnal_shift"
    drift_minute: int | None = None
    drift_scale: float = 1.5


# (protocol, src_port, dst_port, tcp_flags, weight) — a web-dominated mix.
_BENIGN_MIX = (
    (int(Protocol.TCP), 443, 0, int(TcpFlags.ACK | TcpFlags.PSH), 0.45),
    (int(Protocol.TCP), 80, 0, int(TcpFlags.ACK), 0.25),
    (int(Protocol.UDP), 53, 0, 0, 0.12),
    (int(Protocol.UDP), 123, 0, 0, 0.05),
    (int(Protocol.TCP), 0, 443, int(TcpFlags.SYN | TcpFlags.ACK), 0.08),
    (int(Protocol.ICMP), 0, 0, 0, 0.05),
)


class BenignTrafficModel:
    """Generates one customer-minute of benign flows at a time."""

    def __init__(
        self,
        clients: np.ndarray,
        country_of: dict[int, str],
        config: BenignConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(clients) == 0:
            raise ValueError("benign client pool is empty")
        self.clients = clients
        self.country_of = country_of
        self.config = config or BenignConfig()
        self._rng = rng or np.random.default_rng(0)
        self._burst_until: dict[int, int] = {}
        weights = np.array([w for *_rest, w in _BENIGN_MIX])
        self._mix_weights = weights / weights.sum()

    def rate_at(self, customer: Customer, minute: int) -> float:
        """Expected benign bytes/minute at ``minute`` (diurnal + noise).

        The diurnal curve peaks mid-"day" (sinusoid over
        ``minutes_per_day``); multiplicative lognormal noise keeps the series
        from being trivially thresholdable.
        """
        cfg = self.config
        drifted = (
            cfg.drift_kind is not None
            and cfg.drift_minute is not None
            and minute >= cfg.drift_minute
        )
        phase = 0.25
        if drifted and cfg.drift_kind == "diurnal_shift":
            phase = 0.75  # the peak moves half a day
        day_frac = (minute % cfg.minutes_per_day) / cfg.minutes_per_day
        diurnal = 1.0 + customer.diurnal_amplitude * math.sin(2 * math.pi * (day_frac - phase))
        noise = float(self._rng.lognormal(mean=0.0, sigma=cfg.noise_sigma))
        rate = customer.base_rate_bytes * diurnal * noise
        if drifted and cfg.drift_kind == "diurnal_shift":
            rate *= cfg.drift_scale

        # Benign flash crowds.
        burst_probability = cfg.burst_probability
        if drifted and cfg.drift_kind == "flash_crowd":
            burst_probability *= 10.0 * cfg.drift_scale
        until = self._burst_until.get(customer.customer_id, -1)
        if minute <= until:
            rate *= cfg.burst_multiplier
        elif self._rng.random() < burst_probability:
            self._burst_until[customer.customer_id] = minute + cfg.burst_duration
            rate *= cfg.burst_multiplier
        return rate

    def flows_at(self, customer: Customer, minute: int) -> list[FlowRecord]:
        """Sample the benign flows arriving at ``customer`` this minute."""
        total_bytes = self.rate_at(customer, minute)
        n_flows = max(1, int(self._rng.poisson(self.config.flows_per_minute)))
        return self._make_flows(customer.address, minute, n_flows, total_bytes)

    def _make_flows(
        self, dst_addr: int, minute: int, n_flows: int, total_bytes: float
    ) -> list[FlowRecord]:
        """Split ``total_bytes`` into ``n_flows`` mix-shaped flows."""
        shares = self._rng.dirichlet(np.ones(n_flows))
        sources = self._rng.choice(self.clients, size=n_flows)
        kinds = self._rng.choice(len(_BENIGN_MIX), size=n_flows, p=self._mix_weights)
        flows = []
        for src, share, kind in zip(sources, shares, kinds):
            protocol, src_port, dst_port, flags, _w = _BENIGN_MIX[kind]
            flow_bytes = max(64, int(total_bytes * share))
            packets = max(1, flow_bytes // 700)
            flows.append(
                FlowRecord(
                    timestamp=minute,
                    src_addr=int(src),
                    dst_addr=dst_addr,
                    src_port=src_port or int(self._rng.integers(1024, 65535)),
                    dst_port=dst_port or int(self._rng.integers(1024, 65535)),
                    protocol=protocol,
                    packets=packets,
                    bytes_=flow_bytes,
                    tcp_flags=flags,
                    src_country=self.country_of.get(int(src), "US"),
                )
            )
        return flows


class BudgetedBenignTraffic:
    """Constant-work benign traffic for huge universes.

    The dense :class:`BenignTrafficModel` pass costs one generator call per
    customer per minute — fatal at a million customers.  This model spends
    a fixed per-minute *flow budget* instead: most of it on a deterministic
    "hot" subset of customers (stride-spread over the id space so every
    sector/sampler bucket is represented) that keeps the full diurnal /
    burst / drift machinery, and the rest on a uniform low-rate tail over
    the whole population so arbitrary customers still see occasional
    background flows.  Work and memory per minute are O(budget), entirely
    independent of ``n_customers``.
    """

    def __init__(
        self,
        customers: Sequence[Customer],
        clients: np.ndarray,
        country_of: dict[int, str],
        config: BenignConfig | None = None,
        rng: np.random.Generator | None = None,
        flow_budget: int = 600,
        hot_customers: int = 256,
        tail_fraction: float = 0.2,
    ) -> None:
        if flow_budget < 1:
            raise ValueError("flow_budget must be >= 1")
        if not 0.0 <= tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in [0, 1]")
        if len(customers) == 0:
            raise ValueError("customer population is empty")
        self._model = BenignTrafficModel(clients, country_of, config, rng=rng)
        self._rng = self._model._rng  # one shared benign stream
        self.customers = customers
        self.flow_budget = flow_budget
        self.tail_fraction = tail_fraction
        n = len(customers)
        hot_n = max(1, min(hot_customers, n))
        stride = max(1, n // hot_n)
        # Hot set is a pure function of (n, hot_n): no RNG draws, no O(n)
        # permutation, and stable across the whole stream.
        self._hot = [customers[(i * stride) % n] for i in range(hot_n)]

    @property
    def config(self) -> BenignConfig:
        return self._model.config

    def flows_for_minute(self, minute: int) -> list[tuple[int, FlowRecord]]:
        """One minute of budgeted benign traffic as (customer_id, flow)."""
        out: list[tuple[int, FlowRecord]] = []
        n_tail = int(self.flow_budget * self.tail_fraction)
        n_hot = max(len(self._hot), self.flow_budget - n_tail)
        per_hot = max(1, n_hot // len(self._hot))
        for customer in self._hot:
            total_bytes = self._model.rate_at(customer, minute)
            for flow in self._model._make_flows(
                customer.address, minute, per_hot, total_bytes
            ):
                out.append((customer.customer_id, flow))
        n = len(self.customers)
        rng = self._rng
        for _ in range(n_tail):
            cid = int(rng.integers(n))
            customer = self.customers[cid]
            kind = int(rng.choice(len(_BENIGN_MIX), p=self._model._mix_weights))
            protocol, src_port, dst_port, flags, _w = _BENIGN_MIX[kind]
            src = int(rng.choice(self._model.clients))
            flow_bytes = max(64, int(rng.lognormal(mean=8.0, sigma=1.0)))
            out.append(
                (
                    cid,
                    FlowRecord(
                        timestamp=minute,
                        src_addr=src,
                        dst_addr=customer.address,
                        src_port=src_port or int(rng.integers(1024, 65535)),
                        dst_port=dst_port or int(rng.integers(1024, 65535)),
                        protocol=protocol,
                        packets=max(1, flow_bytes // 700),
                        bytes_=flow_bytes,
                        tcp_flags=flags,
                        src_country=self._model.country_of.get(src, "US"),
                    ),
                )
            )
        return out
