"""Benign background traffic model.

Each customer receives diurnal web/DNS/mail-shaped traffic from the benign
client population.  The model deliberately includes *benign bursts* — flash
crowds lasting a few minutes — because the whole premise of the paper (§1)
is that "benign traffic can be bursty" and volumetric detectors must stay
conservative to avoid paging on those bursts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..netflow.records import FlowRecord, Protocol, TcpFlags
from .world import Customer

__all__ = ["BenignTrafficModel", "BenignConfig"]


@dataclass
class BenignConfig:
    """Shape parameters for the benign traffic generator."""

    minutes_per_day: int = 1440
    flows_per_minute: int = 6
    burst_probability: float = 0.002  # per customer-minute
    burst_multiplier: float = 6.0
    burst_duration: int = 4  # minutes
    noise_sigma: float = 0.15
    # Concept drift (scenario matrix): from ``drift_minute`` on, the benign
    # distribution changes shape.  "flash_crowd" multiplies the burst
    # frequency by ``drift_scale`` × 10 (a viral-event regime of frequent
    # legitimate surges); "diurnal_shift" moves the diurnal peak half a day
    # and raises the baseline by ``drift_scale``.  Neither is an attack —
    # detectors must ride the drift out without alerting.
    drift_kind: str | None = None  # None | "flash_crowd" | "diurnal_shift"
    drift_minute: int | None = None
    drift_scale: float = 1.5


# (protocol, src_port, dst_port, tcp_flags, weight) — a web-dominated mix.
_BENIGN_MIX = (
    (int(Protocol.TCP), 443, 0, int(TcpFlags.ACK | TcpFlags.PSH), 0.45),
    (int(Protocol.TCP), 80, 0, int(TcpFlags.ACK), 0.25),
    (int(Protocol.UDP), 53, 0, 0, 0.12),
    (int(Protocol.UDP), 123, 0, 0, 0.05),
    (int(Protocol.TCP), 0, 443, int(TcpFlags.SYN | TcpFlags.ACK), 0.08),
    (int(Protocol.ICMP), 0, 0, 0, 0.05),
)


class BenignTrafficModel:
    """Generates one customer-minute of benign flows at a time."""

    def __init__(
        self,
        clients: np.ndarray,
        country_of: dict[int, str],
        config: BenignConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(clients) == 0:
            raise ValueError("benign client pool is empty")
        self.clients = clients
        self.country_of = country_of
        self.config = config or BenignConfig()
        self._rng = rng or np.random.default_rng(0)
        self._burst_until: dict[int, int] = {}
        weights = np.array([w for *_rest, w in _BENIGN_MIX])
        self._mix_weights = weights / weights.sum()

    def rate_at(self, customer: Customer, minute: int) -> float:
        """Expected benign bytes/minute at ``minute`` (diurnal + noise).

        The diurnal curve peaks mid-"day" (sinusoid over
        ``minutes_per_day``); multiplicative lognormal noise keeps the series
        from being trivially thresholdable.
        """
        cfg = self.config
        drifted = (
            cfg.drift_kind is not None
            and cfg.drift_minute is not None
            and minute >= cfg.drift_minute
        )
        phase = 0.25
        if drifted and cfg.drift_kind == "diurnal_shift":
            phase = 0.75  # the peak moves half a day
        day_frac = (minute % cfg.minutes_per_day) / cfg.minutes_per_day
        diurnal = 1.0 + customer.diurnal_amplitude * math.sin(2 * math.pi * (day_frac - phase))
        noise = float(self._rng.lognormal(mean=0.0, sigma=cfg.noise_sigma))
        rate = customer.base_rate_bytes * diurnal * noise
        if drifted and cfg.drift_kind == "diurnal_shift":
            rate *= cfg.drift_scale

        # Benign flash crowds.
        burst_probability = cfg.burst_probability
        if drifted and cfg.drift_kind == "flash_crowd":
            burst_probability *= 10.0 * cfg.drift_scale
        until = self._burst_until.get(customer.customer_id, -1)
        if minute <= until:
            rate *= cfg.burst_multiplier
        elif self._rng.random() < burst_probability:
            self._burst_until[customer.customer_id] = minute + cfg.burst_duration
            rate *= cfg.burst_multiplier
        return rate

    def flows_at(self, customer: Customer, minute: int) -> list[FlowRecord]:
        """Sample the benign flows arriving at ``customer`` this minute."""
        total_bytes = self.rate_at(customer, minute)
        n_flows = max(1, int(self._rng.poisson(self.config.flows_per_minute)))
        shares = self._rng.dirichlet(np.ones(n_flows))
        sources = self._rng.choice(self.clients, size=n_flows)
        kinds = self._rng.choice(len(_BENIGN_MIX), size=n_flows, p=self._mix_weights)
        flows = []
        for src, share, kind in zip(sources, shares, kinds):
            protocol, src_port, dst_port, flags, _w = _BENIGN_MIX[kind]
            flow_bytes = max(64, int(total_bytes * share))
            packets = max(1, flow_bytes // 700)
            flows.append(
                FlowRecord(
                    timestamp=minute,
                    src_addr=int(src),
                    dst_addr=customer.address,
                    src_port=src_port or int(self._rng.integers(1024, 65535)),
                    dst_port=dst_port or int(self._rng.integers(1024, 65535)),
                    protocol=protocol,
                    packets=packets,
                    bytes_=flow_bytes,
                    tcp_flags=flags,
                    src_country=self.country_of.get(int(src), "US"),
                )
            )
        return flows
