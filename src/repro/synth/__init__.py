"""Synthetic ISP world: the stand-in for the paper's proprietary traces."""

from .attacks import (
    ATTACK_TYPE_MIX,
    TYPE_TRANSITIONS,
    AttackSignature,
    AttackType,
    generate_attack_flows,
    signature_for,
)
from .benign import BenignConfig, BenignTrafficModel, BudgetedBenignTraffic
from .campaign import (
    Campaign,
    CampaignConfig,
    PlannedAttack,
    PlannedPrep,
    plan_carpet_bombing,
    plan_multi_vector,
    plan_pulse_wave,
    schedule_campaigns,
)
from .configio import (
    load_scenario_file,
    save_scenario_file,
    scenario_from_json,
    scenario_to_json,
)
from .io import load_trace, save_trace, world_checksum
from .replay import TraceReplayer
from .stream import (
    MaterializedTraceSource,
    MinuteSlice,
    TraceSource,
    as_trace_source,
)
from .scenario import (
    ATTACK_FAMILIES,
    BENIGN_DRIFTS,
    AttackEvent,
    ScenarioConfig,
    Trace,
    TraceGenerator,
)
from .world import Botnet, Customer, IspWorld, WorldConfig

__all__ = [
    "AttackType", "ATTACK_TYPE_MIX", "TYPE_TRANSITIONS", "AttackSignature",
    "signature_for", "generate_attack_flows",
    "BenignConfig", "BenignTrafficModel", "BudgetedBenignTraffic",
    "Campaign", "CampaignConfig", "PlannedAttack", "PlannedPrep", "schedule_campaigns",
    "plan_carpet_bombing", "plan_pulse_wave", "plan_multi_vector",
    "ScenarioConfig", "AttackEvent", "Trace", "TraceGenerator",
    "ATTACK_FAMILIES", "BENIGN_DRIFTS",
    "Customer", "Botnet", "IspWorld", "WorldConfig",
    "save_trace", "load_trace", "world_checksum",
    "scenario_to_json", "scenario_from_json",
    "save_scenario_file", "load_scenario_file",
    "TraceReplayer",
    "TraceSource", "MinuteSlice", "MaterializedTraceSource", "as_trace_source",
]
