"""The six prevalent attack types and their flow-level generators.

Table 2 of the paper covers UDP flood, TCP ACK, TCP SYN, TCP RST, DNS
amplification, and ICMP flood — 97.2% of all NetScout alerts in the ISP
dataset.  Each :class:`AttackType` carries the coarse-grained signature CDet
would emit (§2.1: destination, transport protocol, and source and/or
destination ports) plus the flow-shape parameters its generator uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..netflow.records import FlowRecord, Protocol, TcpFlags

__all__ = [
    "AttackType",
    "ATTACK_TYPE_MIX",
    "TYPE_TRANSITIONS",
    "AttackSignature",
    "signature_for",
    "generate_attack_flows",
]


class AttackType(str, enum.Enum):
    """The six attack types evaluated in the paper."""

    UDP_FLOOD = "udp_flood"
    TCP_ACK = "tcp_ack"
    TCP_SYN = "tcp_syn"
    TCP_RST = "tcp_rst"
    DNS_AMPLIFICATION = "dns_amplification"
    ICMP_FLOOD = "icmp_flood"


# Table 2: share of alerts by type.
ATTACK_TYPE_MIX: dict[AttackType, float] = {
    AttackType.UDP_FLOOD: 0.263,
    AttackType.TCP_ACK: 0.620,
    AttackType.TCP_SYN: 0.014,
    AttackType.TCP_RST: 0.011,
    AttackType.DNS_AMPLIFICATION: 0.072,
    AttackType.ICMP_FLOOD: 0.020,
}

# Figure 4(b): consecutive attacks on the same customer overwhelmingly repeat
# the same type (97.9% overall; 98.3% for UDP, 97.4% for TCP ACK), with the
# cross-type explorations the paper calls out (SYN→RST 3.7%, DNS→UDP 2.3%,
# ICMP→UDP 0.1%).  Rows are renormalized by the campaign engine.
TYPE_TRANSITIONS: dict[AttackType, dict[AttackType, float]] = {
    AttackType.UDP_FLOOD: {
        AttackType.UDP_FLOOD: 0.983,
        AttackType.TCP_ACK: 0.010,
        AttackType.DNS_AMPLIFICATION: 0.007,
    },
    AttackType.TCP_ACK: {
        AttackType.TCP_ACK: 0.974,
        AttackType.TCP_SYN: 0.012,
        AttackType.UDP_FLOOD: 0.014,
    },
    AttackType.TCP_SYN: {
        AttackType.TCP_SYN: 0.943,
        AttackType.TCP_RST: 0.037,
        AttackType.TCP_ACK: 0.020,
    },
    AttackType.TCP_RST: {
        AttackType.TCP_RST: 0.950,
        AttackType.TCP_SYN: 0.030,
        AttackType.TCP_ACK: 0.020,
    },
    AttackType.DNS_AMPLIFICATION: {
        AttackType.DNS_AMPLIFICATION: 0.967,
        AttackType.UDP_FLOOD: 0.023,
        AttackType.TCP_ACK: 0.010,
    },
    AttackType.ICMP_FLOOD: {
        AttackType.ICMP_FLOOD: 0.989,
        AttackType.UDP_FLOOD: 0.001,
        AttackType.TCP_ACK: 0.010,
    },
}


@dataclass(frozen=True, slots=True)
class AttackSignature:
    """The coarse signature CDet attaches to an alert (§2.1).

    Matching is on destination address, transport protocol, and (when set)
    source/destination port.  This is exactly what gets diverted to CScrub.
    """

    dst_addr: int
    protocol: int
    src_port: int | None = None
    dst_port: int | None = None
    tcp_flags: int | None = None

    def matches(self, flow: FlowRecord) -> bool:
        """Whether a flow matches this diversion signature."""
        if flow.dst_addr != self.dst_addr or flow.protocol != self.protocol:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        if self.tcp_flags is not None and not (flow.tcp_flags & self.tcp_flags):
            return False
        return True


# Flow-shape parameters per type: (mean packet size bytes, src_port,
# dst_port, tcp_flags).  None ports mean "random ephemeral".
_TYPE_SHAPE: dict[AttackType, tuple[int, int | None, int | None, int]] = {
    AttackType.UDP_FLOOD: (512, 53, None, 0),
    AttackType.TCP_ACK: (64, None, 80, int(TcpFlags.ACK)),
    AttackType.TCP_SYN: (60, None, 443, int(TcpFlags.SYN)),
    AttackType.TCP_RST: (60, None, 80, int(TcpFlags.RST)),
    AttackType.DNS_AMPLIFICATION: (3000, 53, None, 0),
    AttackType.ICMP_FLOOD: (84, 0, 0, 0),
}

_TYPE_PROTOCOL: dict[AttackType, int] = {
    AttackType.UDP_FLOOD: int(Protocol.UDP),
    AttackType.TCP_ACK: int(Protocol.TCP),
    AttackType.TCP_SYN: int(Protocol.TCP),
    AttackType.TCP_RST: int(Protocol.TCP),
    AttackType.DNS_AMPLIFICATION: int(Protocol.UDP),
    AttackType.ICMP_FLOOD: int(Protocol.ICMP),
}


def signature_for(attack_type: AttackType, dst_addr: int) -> AttackSignature:
    """The CDet-style coarse signature for an attack of ``attack_type``.

    Mirrors the example of Figure 2: a UDP flood's signature names the
    victim's address, protocol UDP, and source port 53.
    """
    _size, src_port, dst_port, flags = _TYPE_SHAPE[attack_type]
    return AttackSignature(
        dst_addr=dst_addr,
        protocol=_TYPE_PROTOCOL[attack_type],
        src_port=src_port,
        dst_port=dst_port,
        tcp_flags=flags or None,
    )


def generate_attack_flows(
    attack_type: AttackType,
    minute: int,
    dst_addr: int,
    sources: np.ndarray,
    total_bytes: float,
    rng: np.random.Generator,
    country_of: dict[int, str] | None = None,
) -> list[FlowRecord]:
    """Emit one minute of attack flows totalling roughly ``total_bytes``.

    ``sources`` is the array of participating source addresses this minute;
    bytes are split across them log-normally (bots differ in capacity).
    """
    if len(sources) == 0 or total_bytes <= 0:
        return []
    mean_size, src_port, dst_port, flags = _TYPE_SHAPE[attack_type]
    protocol = _TYPE_PROTOCOL[attack_type]
    weights = rng.lognormal(mean=0.0, sigma=0.6, size=len(sources))
    weights /= weights.sum()
    flows: list[FlowRecord] = []
    for addr, weight in zip(sources, weights):
        flow_bytes = max(mean_size, int(total_bytes * weight))
        packets = max(1, int(round(flow_bytes / mean_size)))
        country = (country_of or {}).get(int(addr), "US")
        flows.append(
            FlowRecord(
                timestamp=minute,
                src_addr=int(addr),
                dst_addr=dst_addr,
                src_port=src_port if src_port is not None else int(rng.integers(1024, 65535)),
                dst_port=dst_port if dst_port is not None else int(rng.integers(1024, 65535)),
                protocol=protocol,
                packets=packets,
                bytes_=flow_bytes,
                tcp_flags=flags,
                src_country=country,
            )
        )
    return flows
