"""The scenario-matrix runner: every scenario × every detector lane.

One set of Xatu artifacts is trained once (on a mixed paper-style campaign
scenario) and then evaluated — *without retraining* — on every registered
scenario via the PR-4 streaming protocol.  That is deliberately the
deployment question: a model trained on the paper's attack mix meets
carpet bombing, pulse waves, adaptive attackers, and benign drift it never
saw.  The incumbent CDet simulators run beside it for the earliness
reference, and the serving engine runs as its own lane so the sharded
path is regression-gated end to end.

Per (scenario, detector) the runner reports detection rate, median delay
from onset, median earliness versus NetScout on co-detected events, false
alerts (absolute and per 1,000 customer-minutes), and the scrubbing
overhead its diversions would cost (area C/A of §2.4).  The report is a
versioned, deterministic JSON (``SCENARIOS.json``) with a
compare-vs-baseline gate in the style of ``cli bench --check``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..scrub.center import DiversionWindow, ScrubbingCenter
from ..synth import Trace, TraceGenerator
from .catalog import ScenarioSpec, all_specs, get_spec

__all__ = [
    "MatrixConfig",
    "TrainedArtifacts",
    "train_artifacts",
    "run_matrix",
    "write_report",
    "load_report",
    "compare_reports",
    "budget_failures",
    "render_report",
    "DETECTOR_LANES",
    "REPORT_FORMAT_VERSION",
]

REPORT_FORMAT_VERSION = 1

# Lane names, in evaluation order.  "xatu_serve" is the sharded serving
# engine wrapped around the same artifacts as the "xatu" lane.
DETECTOR_LANES = ("netscout", "fastnetmon", "xatu", "xatu_serve")

_FP_DIVERSION_MINUTES = 10  # false-positive diversions last this long


@dataclass
class MatrixConfig:
    """Knobs for one matrix run."""

    detectors: tuple[str, ...] = DETECTOR_LANES
    epochs: int = 3
    train_seed: int = 42
    # Alerts up to this many minutes before onset count as (early) hits on
    # the event — the detect-prior-to-attack behaviour the survival
    # formulation rewards.
    early_margin: int = 30
    # Alerts up to this many minutes after the attack end still attribute
    # to the event (mirrors the offline CDet matcher).
    late_margin: int = 5
    serve_shards: int = 2

    def __post_init__(self) -> None:
        unknown = [d for d in self.detectors if d not in DETECTOR_LANES]
        if unknown:
            raise ValueError(
                f"unknown detector lane(s) {unknown}; choose from {DETECTOR_LANES}"
            )


@dataclass
class TrainedArtifacts:
    """The shared Xatu artifacts every scenario is evaluated with."""

    model_config: object
    model_state: dict
    scaler: object
    threshold: float
    train_seed: int
    epochs: int

    def make_online(self, trace: Trace, customer_of: dict[int, int]):
        """A fresh OnlineXatu over this scenario's world metadata."""
        from ..core import OnlineXatu, XatuModel

        model = XatuModel(self.model_config)
        model.load_state_dict(self.model_state)
        model.eval()
        world = trace.world
        blocklist: set[int] = set()
        for botnet in world.botnets:
            blocklist.update(int(a) for a in botnet.blocklisted_members)
        return OnlineXatu(
            model=model,
            scaler=self.scaler,
            threshold=self.threshold,
            customer_of=customer_of,
            blocklist=blocklist,
            route_table=world.route_table,
            base_rate_of={c.customer_id: c.base_rate_bytes for c in world.customers},
        )


def _train_scenario(seed: int):
    """The mixed paper-style campaign scenario the artifacts train on."""
    from ..synth import ScenarioConfig

    return ScenarioConfig(
        total_days=12,
        minutes_per_day=120,
        prep_days=1.5,
        n_customers=6,
        n_botnets=3,
        botnet_size=80,
        campaigns_per_botnet=2,
        seed=seed,
    )


def train_artifacts(epochs: int = 2, seed: int = 42) -> TrainedArtifacts:
    """Train the shared model/scaler/threshold once for the whole matrix."""
    from ..core import TrainConfig, XatuModelRegistry, alerts_to_records
    from ..detect import NetScoutDetector
    from ..eval.presets import bench_model_config
    from ..signals import FeatureExtractor

    trace = TraceGenerator(_train_scenario(seed)).materialize()
    cdet_alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
    extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, cdet_alerts))
    registry = XatuModelRegistry(
        bench_model_config(),
        TrainConfig(epochs=epochs, batch_size=8, learning_rate=3e-3),
    )
    split = int(trace.horizon * 0.7)
    registry.train(trace, extractor, cdet_alerts, (0, split), (split, trace.horizon))
    entry = registry.entry_for(None)
    return TrainedArtifacts(
        model_config=entry.model.config,
        model_state=entry.model.state_dict(),
        scaler=entry.scaler,
        threshold=entry.threshold,
        train_seed=seed,
        epochs=epochs,
    )


# ----------------------------------------------------------------------
# Lane drivers: every lane reduces to a sorted [(customer_id, minute)].
# ----------------------------------------------------------------------

def _lane_alerts(
    lane: str, trace: Trace, artifacts: TrainedArtifacts, config: MatrixConfig
) -> list[tuple[int, int]]:
    from ..detect import FastNetMonDetector, NetScoutDetector
    from ..eval.streaming import stream_trace

    addr_to_cid = {c.address: c.customer_id for c in trace.world.customers}
    if lane == "netscout":
        detector = NetScoutDetector(
            profile_window=trace.config.minutes_per_day, customer_of=addr_to_cid
        )
    elif lane == "fastnetmon":
        detector = FastNetMonDetector(customer_of=addr_to_cid)
    elif lane == "xatu":
        detector = artifacts.make_online(trace, addr_to_cid)
    elif lane == "xatu_serve":
        return _serve_lane_alerts(trace, artifacts, config)
    else:  # pragma: no cover - guarded by MatrixConfig
        raise ValueError(f"unknown lane {lane!r}")
    alerts = stream_trace(detector, trace)
    return sorted((int(a.customer_id), int(a.minute)) for a in alerts)


def _serve_lane_alerts(
    trace: Trace, artifacts: TrainedArtifacts, config: MatrixConfig
) -> list[tuple[int, int]]:
    """Drive the sharded serving engine over the streamed trace."""
    from ..serve import ServeConfig, ServeEngine
    from ..synth import as_trace_source

    addr_to_cid = {c.address: c.customer_id for c in trace.world.customers}

    def factory(partition: dict[int, int]):
        return artifacts.make_online(trace, partition)

    engine = ServeEngine(
        factory,
        addr_to_cid,
        ServeConfig(shards=config.serve_shards, backend="inline"),
    )
    merged: list[tuple[int, int]] = []
    try:
        for sl in as_trace_source(trace).iter_minutes(0, trace.horizon):
            engine.ingest_flows(sl.records)
            engine.tick(sl.minute)
            merged.extend(
                (int(a.customer_id), int(a.minute)) for a in engine.poll_alerts()
            )
    finally:
        engine.close()
    return sorted(merged)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def _match_event(trace: Trace, customer_id: int, minute: int, config: MatrixConfig):
    """The event an alert attributes to (latest-onset active event)."""
    best = None
    for event in trace.events:
        if event.customer_id != customer_id:
            continue
        if event.onset - config.early_margin <= minute < event.end + config.late_margin:
            if best is None or event.onset > best.onset:
                best = event
    return best


def _prep_intervals(trace: Trace) -> dict[int, list[tuple[int, int]]]:
    """Real (non-aborted) preparation windows per customer."""
    intervals: dict[int, list[tuple[int, int]]] = {}
    for prep in trace.preps:
        if prep.aborted or prep.end <= prep.start:
            continue
        intervals.setdefault(prep.customer_id, []).append((prep.start, prep.end))
    return intervals


def _evaluate_lane(
    trace: Trace,
    alerts: list[tuple[int, int]],
    config: MatrixConfig,
) -> tuple[dict, dict[int, int]]:
    """Metrics for one lane; returns (metrics, first-detection minutes)."""
    first_detection: dict[int, int] = {}
    false_alerts = 0
    prep_alerts = 0
    windows: list[DiversionWindow] = []
    diverted_until: dict[int, int] = {}
    preps_of = _prep_intervals(trace)

    for customer_id, minute in alerts:
        event = _match_event(trace, customer_id, minute, config)
        if event is not None:
            first_detection.setdefault(event.event_id, minute)
        # Diversion accounting: an alert inside an active diversion extends
        # nothing (the customer is already being scrubbed) and is the same
        # incident, so it is not re-counted.
        if minute <= diverted_until.get(customer_id, -1):
            continue
        if event is not None:
            end = max(event.end, minute + 1)
        else:
            # Unmatched alerts split by cause: firing inside a real
            # preparation window means the detector reacted to genuine
            # attacker probing ahead of the margin (an early diversion,
            # charged to scrub overhead); anything else — benign traffic,
            # aborted preps — is a false alarm.
            if any(
                start <= minute < stop
                for start, stop in preps_of.get(customer_id, ())
            ):
                prep_alerts += 1
            else:
                false_alerts += 1
            end = minute + _FP_DIVERSION_MINUTES
        end = min(end, trace.horizon)
        windows.append(DiversionWindow(customer_id, minute, end))
        diverted_until[customer_id] = end - 1

    n_events = len(trace.events)
    delays = [
        first_detection[e.event_id] - e.onset
        for e in trace.events
        if e.event_id in first_detection
    ]
    customer_minutes = max(1, len(trace.world.customers) * trace.horizon)

    scrub_overhead = None
    if windows and n_events:
        report = ScrubbingCenter(trace).account(windows)
        values = report.overhead_values()
        if len(values):
            scrub_overhead = round(float(np.median(values)), 6)

    metrics = {
        "alerts": len(alerts),
        "events": n_events,
        "detected": len(first_detection),
        "detection_rate": (
            round(len(first_detection) / n_events, 4) if n_events else None
        ),
        "median_delay_minutes": (
            round(float(np.median(delays)), 2) if delays else None
        ),
        "false_alerts": false_alerts,
        "false_alerts_per_kcm": round(false_alerts / customer_minutes * 1000, 4),
        "prep_alerts": prep_alerts,
        "scrub_overhead": scrub_overhead,
    }
    return metrics, first_detection


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_matrix(
    scenario_names: list[str] | None = None,
    config: MatrixConfig | None = None,
    artifacts: TrainedArtifacts | None = None,
    progress=None,
) -> dict:
    """Run the matrix and return the report dict (``SCENARIOS.json``)."""
    config = config or MatrixConfig()
    specs = (
        [get_spec(name) for name in scenario_names]
        if scenario_names is not None
        else list(all_specs())
    )
    say = progress or (lambda _msg: None)

    def spec_lanes(spec: ScenarioSpec) -> tuple[str, ...]:
        if spec.detectors is None:
            return tuple(config.detectors)
        return tuple(l for l in config.detectors if l in spec.detectors)

    # Train only if some selected (scenario, lane) pair actually needs the
    # model — a scale-band or CDet-only run never pays for training.
    needs_model = any(
        lane in ("xatu", "xatu_serve") for spec in specs for lane in spec_lanes(spec)
    )
    if artifacts is None and needs_model:
        say(f"training shared artifacts (seed {config.train_seed}, "
            f"{config.epochs} epochs)")
        artifacts = train_artifacts(epochs=config.epochs, seed=config.train_seed)

    scenarios: dict[str, dict] = {}
    for spec in specs:
        say(f"scenario {spec.name}: generating trace")
        trace = TraceGenerator(spec.config).materialize()
        lanes = spec_lanes(spec)
        lane_alerts: dict[str, list[tuple[int, int]]] = {}
        results: dict[str, dict] = {}
        first_by_lane: dict[str, dict[int, int]] = {}
        for lane in lanes:
            say(f"scenario {spec.name}: lane {lane}")
            lane_alerts[lane] = _lane_alerts(lane, trace, artifacts, config)
            results[lane], first_by_lane[lane] = _evaluate_lane(
                trace, lane_alerts[lane], config
            )
        # Earliness vs the NetScout reference, on co-detected events.
        reference = first_by_lane.get("netscout", {})
        for lane in lanes:
            shared = [
                reference[eid] - first_by_lane[lane][eid]
                for eid in first_by_lane[lane]
                if eid in reference
            ]
            results[lane]["earliness_vs_netscout_minutes"] = (
                round(float(np.median(shared)), 2) if shared else None
            )
            results[lane]["codetected_with_netscout"] = len(shared)
        scenarios[spec.name] = {
            "family": spec.family,
            "description": spec.description,
            "expect_alerts": spec.expect_alerts,
            "fp_budget": dict(spec.fp_budget),
            "config": _config_dict(spec.config),
            "results": {lane: results[lane] for lane in sorted(results)},
        }

    train_info = (
        {"seed": artifacts.train_seed, "epochs": artifacts.epochs}
        if artifacts is not None
        else None  # CDet-only run: no model was trained
    )
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "train": train_info,
        "matrix": {
            "detectors": sorted(config.detectors),
            "early_margin": config.early_margin,
            "late_margin": config.late_margin,
            "serve_shards": config.serve_shards,
        },
        "scenarios": dict(sorted(scenarios.items())),
    }


def _config_dict(config) -> dict:
    data = dataclasses.asdict(config)
    # JSON has no tuples; normalize for stable round-trips.
    if data.get("sampling_rates") is not None:
        data["sampling_rates"] = list(data["sampling_rates"])
    return data


# ----------------------------------------------------------------------
# Report I/O + gates
# ----------------------------------------------------------------------

def write_report(report: dict, out_dir: str | Path) -> Path:
    """Write ``SCENARIOS.json`` (deterministic: sorted keys, no host/time)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "SCENARIOS.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    version = report.get("format_version")
    if version != REPORT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported SCENARIOS.json format {version!r} "
            f"(expected {REPORT_FORMAT_VERSION})"
        )
    return report


def budget_failures(report: dict) -> list[str]:
    """Violations of the per-scenario false-alert budgets."""
    failures: list[str] = []
    for name, scenario in report["scenarios"].items():
        budget = scenario.get("fp_budget") or {}
        for lane, limit in budget.items():
            result = scenario["results"].get(lane)
            if result is None:
                continue
            if result["false_alerts"] > limit:
                failures.append(
                    f"{name}/{lane}: {result['false_alerts']} false alerts "
                    f"exceed the budget of {limit}"
                )
    return failures


def compare_reports(
    current: dict,
    baseline: dict,
    detection_rate_tolerance: float = 0.15,
    delay_tolerance: float = 5.0,
    fpr_tolerance: float = 1.0,
) -> tuple[list[str], list[str]]:
    """Compare a fresh report against the committed baseline.

    Only (scenario, detector) pairs present in *both* reports are gated, so
    the CI subset can be checked against the full committed baseline.
    Returns ``(warnings, failures)``; failures should fail the build.
    """
    warnings: list[str] = []
    failures: list[str] = []
    for name, scenario in current["scenarios"].items():
        base_scenario = baseline["scenarios"].get(name)
        if base_scenario is None:
            warnings.append(f"{name}: not in baseline (new scenario)")
            continue
        for lane, result in scenario["results"].items():
            base = base_scenario["results"].get(lane)
            if base is None:
                warnings.append(f"{name}/{lane}: not in baseline (new lane)")
                continue
            cur_rate, base_rate = result["detection_rate"], base["detection_rate"]
            if cur_rate is not None and base_rate is not None:
                if cur_rate < base_rate - detection_rate_tolerance:
                    failures.append(
                        f"{name}/{lane}: detection rate {cur_rate:.2f} "
                        f"fell below baseline {base_rate:.2f}"
                    )
                elif cur_rate < base_rate:
                    warnings.append(
                        f"{name}/{lane}: detection rate {cur_rate:.2f} "
                        f"< baseline {base_rate:.2f} (within tolerance)"
                    )
            cur_delay = result["median_delay_minutes"]
            base_delay = base["median_delay_minutes"]
            if cur_delay is not None and base_delay is not None:
                if cur_delay > base_delay + delay_tolerance:
                    failures.append(
                        f"{name}/{lane}: median delay {cur_delay:.1f} min "
                        f"regressed past baseline {base_delay:.1f}"
                    )
                elif cur_delay > base_delay:
                    warnings.append(
                        f"{name}/{lane}: median delay {cur_delay:.1f} min "
                        f"> baseline {base_delay:.1f} (within tolerance)"
                    )
            cur_fpr = result["false_alerts_per_kcm"]
            base_fpr = base["false_alerts_per_kcm"]
            if cur_fpr > base_fpr + fpr_tolerance:
                failures.append(
                    f"{name}/{lane}: false-alert rate {cur_fpr:.2f}/kcm "
                    f"regressed past baseline {base_fpr:.2f}"
                )
            elif cur_fpr > base_fpr:
                warnings.append(
                    f"{name}/{lane}: false-alert rate {cur_fpr:.2f}/kcm "
                    f"> baseline {base_fpr:.2f} (within tolerance)"
                )
    failures.extend(budget_failures(current))
    return warnings, failures


def render_report(report: dict) -> str:
    """Human-readable table of the matrix results."""
    lines: list[str] = []
    header = (
        f"{'scenario':<22} {'lane':<10} {'det':>5} {'rate':>6} "
        f"{'delay':>7} {'early':>7} {'fp':>4} {'prep':>5} {'scrub':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, scenario in report["scenarios"].items():
        for lane, result in scenario["results"].items():
            rate = result["detection_rate"]
            delay = result["median_delay_minutes"]
            early = result["earliness_vs_netscout_minutes"]
            scrub = result["scrub_overhead"]
            lines.append(
                f"{name:<22} {lane:<10} "
                f"{result['detected']:>2}/{result['events']:<2} "
                f"{rate if rate is not None else '-':>6} "
                f"{delay if delay is not None else '-':>7} "
                f"{early if early is not None else '-':>7} "
                f"{result['false_alerts']:>4} "
                f"{result.get('prep_alerts', 0):>5} "
                f"{scrub if scrub is not None else '-':>7}"
            )
    return "\n".join(lines)
