"""Adversarial/drift scenario matrix and earliness/FPR regression harness.

``catalog`` names the workloads (paper attack types, adversarial families,
benign-drift stressors); ``matrix`` drives every scenario through the
detector lanes and writes the versioned ``SCENARIOS.json`` report with a
compare-vs-baseline gate.
"""

from .catalog import (
    CI_SCENARIOS,
    ScenarioSpec,
    all_specs,
    get_spec,
    register,
    scenario_names,
)
from .matrix import (
    DETECTOR_LANES,
    REPORT_FORMAT_VERSION,
    MatrixConfig,
    TrainedArtifacts,
    budget_failures,
    compare_reports,
    load_report,
    render_report,
    run_matrix,
    train_artifacts,
    write_report,
)

__all__ = [
    "ScenarioSpec",
    "register",
    "get_spec",
    "all_specs",
    "scenario_names",
    "CI_SCENARIOS",
    "MatrixConfig",
    "TrainedArtifacts",
    "train_artifacts",
    "run_matrix",
    "write_report",
    "load_report",
    "compare_reports",
    "budget_failures",
    "render_report",
    "DETECTOR_LANES",
    "REPORT_FORMAT_VERSION",
]
