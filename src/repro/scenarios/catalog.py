"""The scenario registry: named, parameterized workloads for the matrix.

Every entry is a :class:`ScenarioSpec` — a ``repro.synth`` scenario config
plus evaluation policy (whether alerts are expected at all, and explicit
per-detector false-alert budgets).  The catalogue covers three bands:

* **paper** — the six attack types of Table 2, one scenario each.  Pinning
  every campaign to one type deliberately *oversamples* the rare classes
  (TCP SYN/RST are ~1-2% of the paper's alert mix), in the spirit of
  synthetic-oversampling augmentation (arXiv:2401.03116): each type gets a
  full-size evaluation set instead of a handful of tail events.
* **adversarial** — attackers built to defeat specific detector logic:
  carpet bombing spreads a full-size flood across many victims at
  per-victim rates under the volumetric threshold (DoLLM,
  arXiv:2405.07638); pulse waves burst shorter than a sustain window;
  multi-vector attacks switch generators mid-attack; adaptive-prep
  attackers damp their own A1/A2/A3 preparation signals.
* **drift** — benign concept drift (flash-crowd regime, diurnal shift)
  with **no attacks at all**: every alert is false, and the spec's
  ``fp_budget`` is the contract a detector must hold under drift.
* **scale** — large lazy-world universes (``lazy_world`` +
  ``benign_flow_budget``) streamed rather than held in memory; these
  cells score the detectors that operate per-customer-profile without
  pre-seeding the whole universe (``detectors`` restricts the lanes).

Scenario sizes are compressed (120-minute days, single-digit customers) so
the full matrix runs in minutes; the shapes — prep lookback relative to
horizon, ramp rates, burst statistics — follow the paper's proportions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synth import ScenarioConfig

__all__ = [
    "ScenarioSpec",
    "register",
    "get_spec",
    "all_specs",
    "scenario_names",
    "CI_SCENARIOS",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario plus its evaluation policy."""

    name: str
    family: str  # paper | adversarial | drift | scale
    description: str
    config: ScenarioConfig
    # Drift stressors set this False: the scenario contains no attacks and
    # *any* alert is a false positive.
    expect_alerts: bool = True
    # Per-detector absolute false-alert budgets over the whole scenario.
    # A detector absent from the map is reported but not gated.
    fp_budget: dict[str, int] = field(default_factory=dict)
    # Lane subset this scenario supports (None = every configured lane).
    # Scale cells restrict to the detectors whose state is proportional
    # to *observed* customers, not the universe.
    detectors: tuple[str, ...] | None = None


_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def all_specs() -> tuple[ScenarioSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def scenario_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in catalogue.  All scenarios share one world scale so the trained
# artifacts transfer; seeds differ per scenario so their traffic is
# decorrelated.
# ----------------------------------------------------------------------

def _base_config(seed: int, **overrides) -> ScenarioConfig:
    defaults = dict(
        total_days=8,
        minutes_per_day=120,
        prep_days=1.5,
        n_customers=6,
        n_botnets=3,
        botnet_size=80,
        campaigns_per_botnet=1,
        seed=seed,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


_PAPER_TYPES = (
    "udp_flood",
    "tcp_ack",
    "tcp_syn",
    "tcp_rst",
    "dns_amplification",
    "icmp_flood",
)

for _i, _type in enumerate(_PAPER_TYPES):
    register(
        ScenarioSpec(
            name=f"paper-{_type.replace('_', '-')}",
            family="paper",
            description=(
                f"Markov campaigns pinned to {_type} (Table 2 type, "
                "rare classes oversampled to a full evaluation set)"
            ),
            config=_base_config(seed=101 + _i, fixed_attack_type=_type),
        )
    )

register(
    ScenarioSpec(
        name="carpet-bombing",
        family="adversarial",
        description=(
            "Simultaneous low-rate floods on every customer of the prefix; "
            "each victim stays under the per-customer volumetric threshold "
            "(DoLLM, arXiv:2405.07638)"
        ),
        config=_base_config(
            seed=201,
            attack_family="carpet_bombing",
            n_customers=8,
            carpet_intensity=1.5,
        ),
    )
)

register(
    ScenarioSpec(
        name="pulse-wave",
        family="adversarial",
        description=(
            "On/off burst floods (3 min on / 3 min off) — every burst is "
            "shorter than NetScout's sustain window, and the off-phase "
            "resets it; FastNetMon's shorter sustain still fires"
        ),
        config=_base_config(
            seed=202,
            attack_family="pulse_wave",
            pulse_period=6,
            pulse_duty=0.5,
        ),
    )
)

register(
    ScenarioSpec(
        name="multi-vector",
        family="adversarial",
        description=(
            "Sequential vector composition mid-attack (UDP flood → TCP SYN "
            "→ TCP ACK) inside one anomaly window"
        ),
        config=_base_config(seed=203, attack_family="multi_vector"),
    )
)

register(
    ScenarioSpec(
        name="adaptive-prep-50",
        family="adversarial",
        description=(
            "Adaptive attacker damps its preparation signals (A1/A2/A3) to "
            "50%: half the probe sources, listed bots avoided half the time"
        ),
        config=_base_config(seed=204, prep_damping=0.5),
    )
)

register(
    ScenarioSpec(
        name="adaptive-prep-85",
        family="adversarial",
        description=(
            "Adaptive attacker damps its preparation signals to 85% — "
            "probing is nearly silent (the §8 limitation, short of the "
            "skip_preparation extreme)"
        ),
        config=_base_config(seed=205, prep_damping=0.85),
    )
)

register(
    ScenarioSpec(
        name="drift-flash-crowd",
        family="drift",
        description=(
            "No attacks; mid-trace the benign regime shifts to frequent "
            "flash crowds (~15x burst rate). Every alert is false."
        ),
        config=_base_config(
            seed=301, attack_free=True, benign_drift="flash_crowd"
        ),
        expect_alerts=False,
        # Measured: netscout 59, fastnetmon 33, xatu 0 — the static-profile
        # CDets page constantly under the new regime; Xatu's contract under
        # drift is zero.  CDet budgets carry ~10% headroom for float drift.
        fp_budget={"xatu": 0, "xatu_serve": 0, "netscout": 65, "fastnetmon": 38},
    )
)

register(
    ScenarioSpec(
        name="drift-diurnal-shift",
        family="drift",
        description=(
            "No attacks; mid-trace the diurnal peak moves half a day and "
            "the baseline rises 1.5x. Every alert is false."
        ),
        config=_base_config(
            seed=302, attack_free=True, benign_drift="diurnal_shift"
        ),
        expect_alerts=False,
        # Measured: netscout 9, fastnetmon 12, xatu 0 (same headroom rule).
        fp_budget={"xatu": 0, "xatu_serve": 0, "netscout": 12, "fastnetmon": 16},
    )
)

register(
    ScenarioSpec(
        name="scale-10k",
        family="scale",
        description=(
            "A 10,000-customer lazy world with budgeted benign traffic, "
            "streamed minute-by-minute (never materialized as per-customer "
            "state); paper-style campaigns still hit a handful of victims. "
            "Scores the incumbent CDet lanes, whose profiles grow with "
            "observed customers only."
        ),
        config=ScenarioConfig(
            total_days=3,
            minutes_per_day=120,
            prep_days=1.0,
            n_customers=10_000,
            n_botnets=2,
            botnet_size=100,
            campaigns_per_botnet=1,
            seed=401,
            lazy_world=True,
            benign_flow_budget=1_200,
        ),
        detectors=("netscout", "fastnetmon"),
    )
)

# The reduced matrix CI runs on every push: one paper type, the flagship
# adversarial family, and one drift stressor.
CI_SCENARIOS: tuple[str, ...] = (
    "paper-udp-flood",
    "carpet-bombing",
    "drift-flash-crowd",
)
