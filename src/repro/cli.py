"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``census``   — generate a trace and print the §3 observational analyses.
``pipeline`` — run the full train/calibrate/detect pipeline and print the
               headline metrics.
``compare``  — four-system comparison (NetScout / FastNetMon / RF / Xatu)
               at one overhead bound.
``train``    — train a per-attack-type model registry and save it to disk.
``bench``    — fused-vs-unfused nn microbenchmarks, tracked via
               ``BENCH_<tag>.json`` (docs/PERFORMANCE.md); ``--check``
               compares against the committed baseline (host mismatches
               warn rather than fail).
``serve``    — run the sharded, checkpointable serving engine over a
               replayed deployment (``--shards``, ``--checkpoint-dir``,
               ``--restart-at``; see docs/SERVING.md).
``metrics``  — render a ``--telemetry`` JSON file (top-style table,
               Prometheus exposition, or raw JSON), or ``--selftest``
               the exporters.

``train``, ``pipeline``, and ``bench`` accept ``--telemetry <path>``:
the run executes with the ``repro.obs`` switch enabled and writes a
telemetry snapshot (metrics + span trace) there (docs/OBSERVABILITY.md).

Every command accepts ``--seed``, ``--days``, ``--customers``, and
``--epochs`` to size the run; defaults finish in well under a minute.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np


def _build_scenario(args):
    from .eval.presets import tiny_scenario

    if getattr(args, "config", None):
        from .synth import load_scenario_file

        return load_scenario_file(args.config)
    scenario = tiny_scenario(seed=args.seed)
    return replace(
        scenario,
        total_days=args.days,
        n_customers=args.customers,
    )


def _build_pipeline_config(args):
    from .core import PipelineConfig, TrainConfig
    from .eval.presets import bench_model_config

    return PipelineConfig(
        scenario=_build_scenario(args),
        model=bench_model_config(),
        train=TrainConfig(epochs=args.epochs, batch_size=8, learning_rate=3e-3),
        overhead_bound=args.overhead_bound,
        seed=args.seed,
    )


def cmd_census(args) -> int:
    from .eval import (
        prep_signal_census,
        render_table,
        split_table,
        transition_matrix,
    )
    from .synth import TraceGenerator

    trace = TraceGenerator(_build_scenario(args)).materialize()
    print(f"{len(trace.events)} attacks over {trace.horizon} minutes\n")

    census = prep_signal_census(trace)
    rows = [
        ["blocklisted", float(np.median([c.blocklisted_fraction for c in census]))],
        ["previous attackers", float(np.median([c.previous_attacker_fraction for c in census]))],
        ["spoofed", float(np.median([c.spoofed_fraction for c in census]))],
    ]
    print(render_table(["signal", "median attacker fraction"], rows,
                       title="Attack preparation signals (Fig 4a)"))

    matrix, types, pairs = transition_matrix(trace)
    print(f"\n{pairs} consecutive pairs; same-type share per active type:")
    for i, t in enumerate(types):
        if matrix[i].sum() > 0:
            print(f"  {t.value:<18} {matrix[i, i]:.0%}")

    table = split_table(trace)
    print()
    print(render_table(
        ["type", "train", "val", "test"],
        [[k, v["train"], v["val"], v["test"]] for k, v in table.items() if sum(v.values())],
        title="Attack counts per split (Table 2)",
    ))
    return 0


def _write_cli_telemetry(path: str) -> None:
    """Snapshot the global obs registry + tracer into one JSON file."""
    from .obs import get_registry, get_tracer, write_telemetry

    out = write_telemetry(path, get_registry().snapshot(), get_tracer().snapshot())
    print(f"wrote telemetry to {out}")


def _replay_online_minutes(pipeline, minutes: int = 10) -> None:
    """Feed-health replay for the telemetry snapshot.

    Streams the tail of the pipeline's trace through the datagram codec
    (deterministically dropping every 17th export datagram, so the
    collector's gap accounting has something to count) into an
    :class:`~repro.core.OnlineXatu` built from the trained artefacts —
    populating the ``online.*`` and ``netflow.*`` series alongside the
    ``train.*`` ones.
    """
    from .core import OnlineXatu
    from .netflow import DatagramCodec, FlowCollector
    from .synth import as_trace_source

    model = pipeline._trained_model
    scaler = pipeline._trained_scaler
    threshold = pipeline._calibrated_threshold
    if model is None or threshold is None:
        registry = getattr(pipeline, "registry", None)
        if registry is None:
            return
        entry = registry.entry_for(None)
        model, scaler, threshold = entry.model, entry.scaler, entry.threshold
    trace = pipeline.trace
    world = trace.world
    blocklist = set()
    for botnet in world.botnets:
        blocklist.update(int(a) for a in botnet.blocklisted_members)
    online = OnlineXatu(
        model=model,
        scaler=scaler,
        threshold=threshold,
        customer_of={c.address: c.customer_id for c in world.customers},
        blocklist=blocklist,
        route_table=world.route_table,
        base_rate_of={c.customer_id: c.base_rate_bytes for c in world.customers},
    )
    codec = DatagramCodec(engine_id=1)
    collector = FlowCollector()
    start = max(0, trace.horizon - minutes)
    datagram_index = 0
    alerts = 0
    for sl in as_trace_source(trace).iter_minutes(start, trace.horizon):
        minute, flows = sl.minute, sl.records
        arrived = []
        for lo in range(0, len(flows), 30):
            blob = codec.encode(flows[lo : lo + 30], unix_secs=minute * 60)
            datagram_index += 1
            if datagram_index % 17 == 0:
                continue  # simulated export loss
            arrived.extend(collector.ingest_datagram(blob))
        alerts += len(online.step(minute, arrived))
    health = collector.feed_health()
    print(f"online replay    {trace.horizon - start} minutes, "
          f"{health.records_received} records "
          f"({health.records_lost} lost, {health.loss_rate:.1%}), "
          f"{alerts} alerts")


def _telemetry_context(telemetry_path):
    """The obs switch for a CLI run: ``telemetry()`` when a snapshot was
    requested (restores the previous switch state even on a raising run,
    so the process-global flag never leaks), else a no-op."""
    from contextlib import nullcontext

    if not telemetry_path:
        return nullcontext()
    from .obs import telemetry

    return telemetry()


def cmd_pipeline(args) -> int:
    from .core import XatuPipeline

    telemetry_path = getattr(args, "telemetry", None)
    with _telemetry_context(telemetry_path):
        pipeline = XatuPipeline(_build_pipeline_config(args))
        result = pipeline.run()
        print(f"threshold        {result.calibration.threshold:.3g}")
        print(f"effectiveness    median {result.effectiveness.median:.1%} "
              f"(p10 {result.effectiveness.low:.1%}, p90 {result.effectiveness.high:.1%})")
        print(f"detection delay  median {result.delay.median:+.1f} min")
        print(f"overhead         p75 {result.overhead.high:.2%} "
              f"(bound {args.overhead_bound:.2%})")
        print(f"alerts           {len(result.detection.alerts)} "
              f"({sum(1 for a in result.detection.alerts if a.event_id >= 0)} matched)")
        if telemetry_path:
            _replay_online_minutes(pipeline)
            _write_cli_telemetry(telemetry_path)
    return 0


def cmd_compare(args) -> int:
    from .eval import HeadlineExperiment, render_table

    experiment = HeadlineExperiment(_build_pipeline_config(args))
    rows = experiment.sweep([args.overhead_bound])
    print(render_table(
        ["system", "eff median", "delay median", "overhead p75"],
        [[m.system, m.effectiveness_median, m.delay_median, m.overhead_p75] for m in rows],
        title=f"Comparison at overhead bound {args.overhead_bound:.2%}",
    ))
    return 0


def cmd_train(args) -> int:
    from .core import TrainConfig, XatuModelRegistry, alerts_to_records
    from .detect import NetScoutDetector
    from .eval.presets import bench_model_config
    from .signals import FeatureExtractor
    from .synth import TraceGenerator

    telemetry_path = getattr(args, "telemetry", None)
    with _telemetry_context(telemetry_path):
        trace = TraceGenerator(_build_scenario(args)).materialize()
        alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
        extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, alerts))
        registry = XatuModelRegistry(
            bench_model_config(),
            TrainConfig(epochs=args.epochs, batch_size=8, learning_rate=3e-3),
        )
        split = int(trace.horizon * 0.7)
        entries = registry.train(trace, extractor, alerts, (0, split), (split, trace.horizon))
        registry.save(args.out)
        print(f"saved {len(entries)} models to {args.out}:")
        for key, entry in entries.items():
            losses = entry.train_result.train_losses if entry.train_result else []
            trend = f"{losses[0]:.3f}->{losses[-1]:.3f}" if losses else "n/a"
            print(f"  {key:<18} events={entry.n_train_events:<4} loss {trend}")
        if telemetry_path:
            _write_cli_telemetry(telemetry_path)
    return 0


def cmd_evasion(args) -> int:
    """§8 limitation check: normal vs fully-evasive attackers."""
    from dataclasses import replace as dc_replace

    from .core import XatuPipeline
    from .eval import render_table

    base = _build_pipeline_config(args)
    evasive = dc_replace(
        base,
        scenario=dc_replace(
            base.scenario, fresh_sources=True, skip_preparation=True
        ),
    )
    rows = []
    for name, config in (("normal", base), ("evasive (§8)", evasive)):
        result = XatuPipeline(config).run()
        rows.append([
            name, result.effectiveness.median, result.delay.median,
            result.overhead.high,
        ])
    print(render_table(
        ["attackers", "eff median", "delay median", "overhead p75"],
        rows, title="§8 limitation: evasive attackers minimize auxiliary signals",
    ))
    return 0


def cmd_golden(args) -> int:
    """Record or check the differential-correctness golden fixture."""
    from .testing import GoldenSpec, check_golden, record_golden

    if args.action == "record":
        spec = GoldenSpec(seed=args.seed, epochs=args.epochs)
        path = record_golden(args.path, spec)
        print(f"recorded golden fixture at {path} (seed {spec.seed}, "
              f"{spec.epochs} epochs)")
        return 0
    report = check_golden(args.path)
    print(report.render())
    return 0 if report.ok else 1


def cmd_scenarios(args) -> int:
    """Run/check the adversarial+drift scenario matrix (SCENARIOS.json)."""
    from pathlib import Path

    from .scenarios import (
        CI_SCENARIOS,
        DETECTOR_LANES,
        MatrixConfig,
        all_specs,
        budget_failures,
        compare_reports,
        load_report,
        render_report,
        run_matrix,
        write_report,
    )

    if args.action == "list":
        for spec in all_specs():
            marker = "ci" if spec.name in CI_SCENARIOS else "  "
            mode = "attacks" if spec.expect_alerts else "attack-free"
            print(f"{marker} {spec.name:<22} {spec.family:<12} [{mode}]")
            print(f"     {spec.description}")
        return 0

    if args.only and args.band:
        print("pass either --only or --band, not both")
        return 2
    if args.only:
        names = list(args.only)
    elif args.band:
        names = [spec.name for spec in all_specs() if spec.family == args.band]
        if not names:
            print(f"no scenarios in band {args.band!r}")
            return 2
    elif args.ci:
        names = list(CI_SCENARIOS)
    else:
        names = None  # the full catalogue
    config = MatrixConfig(
        detectors=tuple(args.detectors) if args.detectors else DETECTOR_LANES,
        epochs=args.epochs,
        train_seed=args.train_seed,
        serve_shards=args.shards,
    )
    report = run_matrix(
        names, config, progress=lambda message: print(f"  {message}", flush=True)
    )
    print(render_report(report))
    if args.report_out:
        # A side copy of the fresh report (e.g. as a CI artifact),
        # independent of whether this invocation may touch the baseline.
        import json as _json

        Path(args.report_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report_out).write_text(
            _json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"fresh report saved to {args.report_out}")

    if args.action == "check":
        # Compare-only mode: never overwrite the committed baseline.  The
        # CI subset gates only the (scenario, lane) pairs it actually ran.
        baseline_path = Path(args.out) / "SCENARIOS.json"
        if not baseline_path.exists():
            print(f"\nno baseline at {baseline_path}; nothing to check against")
            return 2
        warnings, failures = compare_reports(report, load_report(baseline_path))
        for message in warnings:
            print(f"warning: {message}")
        for message in failures:
            print(f"REGRESSION: {message}")
        if failures:
            return 1
        print(f"\ncheck against {baseline_path}: OK ({len(warnings)} warning(s))")
        return 0

    failures = budget_failures(report)
    for message in failures:
        print(f"BUDGET: {message}")
    out = write_report(report, args.out)
    print(f"\nwrote {out}")
    return 1 if failures else 0


def _bench_scale(args) -> int:
    """The scale suite: streamed compressed days at 10k/100k/1M customers."""
    from pathlib import Path

    from .bench.scale import (
        SCALE_CELLS,
        compare_scale,
        load_scale_json,
        render_scale,
        run_scale,
        scale_gate,
        write_scale_json,
    )

    cells = None
    if args.only:
        unknown = [c for c in args.only if c not in SCALE_CELLS]
        if unknown:
            print(f"unknown scale cell(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(SCALE_CELLS)}")
            return 2
        cells = tuple(args.only)
    payload = run_scale(cells=cells, smoke=args.smoke)
    print(render_scale(payload))
    max_rss = getattr(args, "max_rss_mb", None)
    gate_failures = scale_gate(payload, max_rss_mb=max_rss)
    for message in gate_failures:
        print(f"GATE: {message}")
    status = 1 if gate_failures else 0
    baseline_path = Path(args.out) / "BENCH_scale.json"
    if args.check:
        if not baseline_path.exists():
            print(f"\nno baseline at {baseline_path}; nothing to check against")
        else:
            warnings, failures = compare_scale(
                payload, load_scale_json(baseline_path)
            )
            for message in warnings:
                print(f"warning: {message}")
            for message in failures:
                print(f"REGRESSION: {message}")
            if failures:
                status = 1
            elif not gate_failures:
                print(f"\ncheck against {baseline_path}: OK "
                      f"({len(warnings)} warning(s))")
    else:
        out = write_scale_json(payload, args.out)
        print(f"\nwrote {out}")
    return status


def cmd_bench(args) -> int:
    """Run the fused-vs-unfused microbenchmarks and write BENCH_<tag>.json."""
    from pathlib import Path

    from .bench import (
        BENCH_CASES,
        INGEST_BENCH_CASES,
        compare_to_baseline,
        load_bench_json,
        run_all,
        run_ingest,
        write_bench_json,
    )

    if args.suite == "scale":
        return _bench_scale(args)
    if args.suite == "ingest":
        runner, suite_cases = run_ingest, INGEST_BENCH_CASES
        if args.tag == "fused":  # the parser default belongs to the nn suite
            args.tag = "ingest"
    else:
        runner, suite_cases = run_all, BENCH_CASES
    cases = None
    if args.only:
        unknown = [c for c in args.only if c not in suite_cases]
        if unknown:
            print(f"unknown benchmark case(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(suite_cases)}")
            return 2
        cases = tuple(args.only)
    telemetry_path = getattr(args, "telemetry", None)
    with _telemetry_context(telemetry_path):
        report = runner(
            tag=args.tag, smoke=args.smoke, reps=args.reps, cases=cases
        )
        if telemetry_path:
            _write_cli_telemetry(telemetry_path)
    print(report.render())
    shard_sizes = report.sizes.get("serve_shards")
    if shard_sizes is not None and not shard_sizes.get("parallel", True):
        print(
            f"note: serve_shards ran {shard_sizes['shards']} shards on "
            f"{shard_sizes['cpu_count']} core(s) — its fused number is the "
            "transport overhead, not the fan-out win; re-measure on a host "
            "with >= shards cores (docs/PERFORMANCE.md)"
        )
    status = 0
    if args.check:
        # Compare-only mode: never overwrite the committed baseline.
        baseline_path = Path(args.out) / f"BENCH_{args.tag}.json"
        if not baseline_path.exists():
            print(f"\nno baseline at {baseline_path}; nothing to check against")
        else:
            warnings, failures = compare_to_baseline(
                report, load_bench_json(baseline_path)
            )
            for message in warnings:
                print(f"warning: {message}")
            for message in failures:
                print(f"REGRESSION: {message}")
            if failures:
                status = 1
            else:
                print(f"\ncheck against {baseline_path}: OK "
                      f"({len(warnings)} warning(s))")
    else:
        out = write_bench_json(report, args.out)
        print(f"\nwrote {out}")
    speedups = report.speedups()
    if speedups:
        worst = min(speedups, key=speedups.get)
        print(f"smallest speedup: {worst} at {speedups[worst]:.1f}x")
    overheads = report.obs_overheads()
    for name, frac in overheads.items():
        budget = 0.03
        verdict = "within" if frac < budget else "OVER"
        print(f"telemetry overhead ({name}): {frac:+.1%} — "
              f"{verdict} the {budget:.0%} budget")
    return status


def cmd_serve(args) -> int:
    """Run the sharded serving engine over a replayed synthetic deployment.

    Quick-trains a model registry on the scenario (or loads one from
    ``--models``), then streams the trace through the datagram codec into
    a :class:`~repro.serve.ServeEngine` — periodic checkpoints, optional
    induced restart (``--restart-at``), incumbent alerts broadcast to all
    shards, and a merged ordered alert stream (``--alerts-out``).
    """
    import json
    import time as time_mod

    from .core import (
        OnlineXatu,
        TrainConfig,
        XatuModel,
        XatuModelRegistry,
        alerts_to_records,
    )
    from .detect import NetScoutDetector
    from .eval.presets import bench_model_config
    from .netflow import DatagramCodec
    from .serve import ServeConfig, ServeEngine
    from .signals import FeatureExtractor
    from .synth import TraceGenerator, as_trace_source

    telemetry_path = getattr(args, "telemetry", None)
    with _telemetry_context(telemetry_path):
        trace = TraceGenerator(_build_scenario(args)).materialize()
        cdet_alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
        if args.models:
            registry = XatuModelRegistry.load(args.models)
        else:
            extractor = FeatureExtractor(
                trace, alerts=alerts_to_records(trace, cdet_alerts)
            )
            registry = XatuModelRegistry(
                bench_model_config(),
                TrainConfig(epochs=args.epochs, batch_size=8, learning_rate=3e-3),
            )
            split = int(trace.horizon * 0.7)
            registry.train(
                trace, extractor, cdet_alerts, (0, split), (split, trace.horizon)
            )
        entry = registry.entry_for(None)
        threshold = args.threshold if args.threshold is not None else entry.threshold
        world = trace.world
        blocklist = set()
        for botnet in world.botnets:
            blocklist.update(int(a) for a in botnet.blocklisted_members)
        customer_of = {c.address: c.customer_id for c in world.customers}
        base_rate_of = {c.customer_id: c.base_rate_bytes for c in world.customers}
        model_state = entry.model.state_dict()
        model_config = entry.model.config

        def factory(partition):
            # Every shard gets its own model object (same weights), so the
            # thread/process backends never share mutable nn state.
            model = XatuModel(model_config)
            model.load_state_dict(model_state)
            model.eval()
            return OnlineXatu(
                model=model,
                scaler=entry.scaler,
                threshold=threshold,
                customer_of=partition,
                blocklist=blocklist,
                route_table=world.route_table,
                base_rate_of=base_rate_of,
            )

        config = ServeConfig(
            shards=args.shards,
            backend=args.backend,
            transport=args.transport,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            batched=args.lane == "batched",
            inference_dtype=args.inference_dtype,
        )
        if args.restart_at is not None and args.checkpoint_dir is None:
            print("serve: --restart-at requires --checkpoint-dir")
            return 2

        horizon = trace.horizon if args.minutes is None else min(
            args.minutes, trace.horizon
        )
        records = alerts_to_records(trace, cdet_alerts)
        by_detect: dict[int, list] = {}
        for record in records:
            by_detect.setdefault(record.detect_minute, []).append(record)
        ends = [(r.customer_id, r.end_minute) for r in records]
        by_end: dict[int, list] = {}
        for customer_id, end_minute in ends:
            by_end.setdefault(end_minute, []).append(customer_id)

        engine = ServeEngine(factory, customer_of, config)
        codec = DatagramCodec(engine_id=1)
        merged = []
        datagram_index = 0
        start_wall = time_mod.perf_counter()
        for sl in as_trace_source(trace).iter_minutes(0, horizon):
            minute, flows = sl.minute, sl.records
            for lo in range(0, len(flows), 30):
                blob = codec.encode(flows[lo : lo + 30], unix_secs=minute * 60)
                datagram_index += 1
                if datagram_index % 17 == 0:
                    continue  # simulated export loss (exercises feed health)
                engine.ingest_datagram(blob)
            for record in by_detect.get(minute, []):
                engine.ingest_cdet_alert(record)
            for customer_id in by_end.get(minute, []):
                engine.ingest_mitigation_end(customer_id, minute)
            engine.tick(minute)
            merged.extend(engine.poll_alerts())
            if args.restart_at is not None and minute == args.restart_at:
                engine.checkpoint()
                engine.close()
                print(f"induced restart at minute {minute}: "
                      f"rebuilding engine from checkpoint")
                engine = ServeEngine(factory, customer_of, config)
                restored = engine.restore()
                print(f"restored minute {restored}")
        elapsed = time_mod.perf_counter() - start_wall
        if args.checkpoint_dir:
            final = engine.checkpoint()
            print(f"final checkpoint  {final}")
        stats = engine.stats()
        health = engine.feed_health()
        engine.close()

        if args.alerts_out:
            lines = [
                json.dumps(
                    {"minute": a.minute, "customer": a.customer_id,
                     "survival": a.survival},
                    sort_keys=True,
                )
                for a in merged
            ]
            from pathlib import Path

            Path(args.alerts_out).write_text("\n".join(lines) + "\n")
            print(f"wrote {len(merged)} alerts to {args.alerts_out}")
        print(f"served            {horizon} minutes on {args.shards} shard(s) "
              f"[{args.backend}, {args.lane} lane] in {elapsed:.2f}s "
              f"({horizon / elapsed:.1f} min/s)")
        print(f"alerts            {len(merged)} merged "
              f"({stats['alerts_suppressed']} suppressed)")
        print(f"feed health       {health.records_received} records, "
              f"{health.records_lost} lost ({health.loss_rate:.1%}), "
              f"{stats['degraded_minutes']} degraded minute(s)")
        print(f"shards healthy    {stats['healthy_shards']}/{stats['shards']}, "
              f"{stats['checkpoints_written']} checkpoint(s)")
        if telemetry_path:
            _write_cli_telemetry(telemetry_path)
    return 0


def cmd_metrics(args) -> int:
    """Render a telemetry JSON file, or --selftest the exporters."""
    if args.selftest:
        from .obs import selftest

        problems = selftest()
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print("obs exporters selftest: OK")
        if not args.path:
            return 0
    if not args.path:
        print("metrics: provide a telemetry JSON path (or --selftest)")
        return 2
    from .obs import load_telemetry, render_top, snapshot_from_json, to_prometheus
    from .obs.tracing import SpanNode

    payload = load_telemetry(args.path)
    snapshot = snapshot_from_json(payload)
    tree = SpanNode.from_json(payload["trace"]) if payload.get("trace") else None
    if args.format == "prom":
        print(to_prometheus(snapshot), end="")
    elif args.format == "json":
        import json

        print(json.dumps(payload, indent=2))
    else:
        print(render_top(snapshot, tree, payload.get("host")))
    return 0


def cmd_report(args) -> int:
    from .eval import build_report

    report = build_report(_build_scenario(args))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"wrote {len(report)} chars to {args.out}")
    else:
        print(report)
    return 0


def cmd_lint(args) -> int:
    """Run xatulint (repro.analysis) over the tree and gate on findings.

    ``--deep`` adds the xatuflow interprocedural checkers (XF001–XF004)
    on top of the shallow XL rules, built from a cached symbol graph.

    Exit codes: 0 clean (baselined findings don't count), 1 when the gate
    fails — any new finding or stale baseline entry under ``--strict``,
    new *error*-severity findings otherwise — and 2 on usage errors.
    """
    import json
    from pathlib import Path

    from .analysis import (
        Baseline,
        Severity,
        all_rules,
        analyze_paths,
        iter_python_files,
    )
    from .analysis.flow import ALL_FLOW_RULE_IDS, all_flow_checkers

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.severity:<7}  {rule.name}")
            if rule.description:
                print(f"       {rule.description}")
        for checker in all_flow_checkers():
            print(f"{checker.id}  {checker.severity:<7}  {checker.name}  "
                  f"(--deep)")
            if checker.description:
                print(f"       {checker.description}")
        return 0

    root = Path.cwd()
    findings = analyze_paths(args.paths, root=root)

    if args.deep:
        from .analysis.flow import load_symbol_graph

        sg, _from_cache = load_symbol_graph(
            root, list(args.paths), use_cache=not args.no_cache
        )
        for checker in all_flow_checkers():
            findings.extend(checker.run(sg))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    # The full inventory (shallow + deep) is what baselines are stamped
    # with, independent of --deep, so stamp warnings are stable.
    inventory = tuple(sorted(
        [r.id for r in all_rules()] + list(ALL_FLOW_RULE_IDS)
    ))

    baseline_path = root / args.baseline
    if args.write_baseline:
        previous = Baseline() if args.no_baseline else Baseline.load(baseline_path)
        written = Baseline.from_findings(findings, previous=previous)
        written.save(baseline_path, rules=inventory)
        print(f"wrote {len(written)} entr{'y' if len(written) == 1 else 'ies'} "
              f"to {baseline_path}")
        print("edit the file and replace every placeholder reason before "
              "committing")
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    if not args.no_baseline:
        for warning in baseline.stamp_warnings(inventory):
            print(f"lint: warning: {warning}", file=sys.stderr)
    new, suppressed = baseline.partition(findings)
    # An entry is stale only if its *file* was in this run's scope —
    # linting a subtree must not flag entries for files it never read.
    analyzed = set()
    for path in iter_python_files(args.paths, root):
        try:
            analyzed.add(path.relative_to(root).as_posix())
        except ValueError:
            analyzed.add(path.as_posix())
    # ... and only if its *rule* ran: a shallow run cannot judge deep
    # (XF) entries stale, and vice versa.
    ran_rules = {r.id for r in all_rules()}
    if args.deep:
        ran_rules |= set(ALL_FLOW_RULE_IDS)
    stale = [
        e
        for e in baseline.unused_entries(findings)
        if e.path in analyzed and e.rule in ran_rules
    ]

    if args.format == "json":
        payload = {
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "fix_hint": f.fix_hint,
                }
                for f in new
            ],
            "baselined": len(suppressed),
            "stale_baseline_entries": [e.to_json() for e in stale],
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import render_sarif

        rule_info = [
            (r.id, r.name, r.description, r.severity) for r in all_rules()
        ]
        if args.deep:
            rule_info += [
                (c.id, c.name, c.description, c.severity)
                for c in all_flow_checkers()
            ]
        print(render_sarif(new, rule_info, suppressed))
    else:
        for finding in new:
            print(finding.render())
        for entry in stale:
            print(f"{entry.path}: stale baseline entry {entry.rule} "
                  f"({entry.line_text!r}) — the finding is gone; delete it")
        counts = f"{len(new)} new finding(s), {len(suppressed)} baselined"
        if stale:
            counts += f", {len(stale)} stale baseline entr" + (
                "y" if len(stale) == 1 else "ies")
        print(f"lint: {counts}")

    if args.strict:
        return 1 if (new or stale) else 0
    errors = [f for f in new if f.severity == Severity.ERROR]
    return 1 if errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Xatu (CoNEXT 2022) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, func, extra in (
        ("census", cmd_census, []),
        ("pipeline", cmd_pipeline, ["bound"]),
        ("compare", cmd_compare, ["bound"]),
        ("train", cmd_train, ["out"]),
        ("report", cmd_report, ["report_out"]),
        ("evasion", cmd_evasion, ["bound"]),
    ):
        p = sub.add_parser(name)
        p.add_argument("--seed", type=int, default=3)
        p.add_argument("--config", default=None,
                       help="JSON scenario config file (overrides size flags)")
        p.add_argument("--days", type=float, default=16.0,
                       help="compressed days (120 minutes each)")
        p.add_argument("--customers", type=int, default=8)
        p.add_argument("--epochs", type=int, default=5)
        if "bound" in extra or name in ("pipeline", "compare"):
            p.add_argument("--overhead-bound", type=float, default=0.1)
        else:
            p.set_defaults(overhead_bound=0.1)
        if "out" in extra:
            p.add_argument("--out", default="xatu_models")
        if "report_out" in extra:
            p.add_argument("--out", default=None,
                           help="write the markdown report here (default: stdout)")
        if name in ("pipeline", "train"):
            p.add_argument("--telemetry", default=None, metavar="PATH",
                           help="enable repro.obs and write the telemetry "
                           "snapshot (metrics + span trace) to this JSON file")
        p.set_defaults(func=func)

    golden = sub.add_parser(
        "golden",
        help="record/check the differential-correctness golden fixture",
        description="Golden end-to-end traces: `record` freezes a "
        "deterministic training/detection run to disk; `check` re-runs it "
        "against the current code and diffs every array (see docs/TESTING.md).",
    )
    golden.add_argument("action", choices=["record", "check"])
    golden.add_argument("--path", default="tests/fixtures/golden",
                        help="fixture directory (manifest.json + arrays.npz)")
    golden.add_argument("--seed", type=int, default=7,
                        help="recipe seed (record only)")
    golden.add_argument("--epochs", type=int, default=2,
                        help="training epochs in the recipe (record only)")
    golden.set_defaults(func=cmd_golden)

    bench = sub.add_parser(
        "bench",
        help="time the fused nn kernels against the pre-fusion baseline",
        description="Microbenchmarks: LSTM forward / training step, pooling, "
        "a full training epoch, and end-to-end synthetic-day scoring, each "
        "fused and unfused.  Results go to a versioned BENCH_<tag>.json "
        "(see docs/PERFORMANCE.md).",
    )
    bench.add_argument("--suite", choices=("fused", "ingest", "scale"),
                       default="fused",
                       help="benchmark suite: 'fused' times the nn kernels, "
                       "'ingest' times the columnar NetFlow ingest path and "
                       "the shared-memory shard transport, 'scale' streams "
                       "seeded compressed days at 10k/100k/1M customers and "
                       "records peak RSS + minutes/sec (BENCH_scale.json)")
    bench.add_argument("--max-rss-mb", type=float, default=None,
                       help="scale suite only: fail if any cell's peak RSS "
                       "exceeds this bound (the CI memory gate)")
    bench.add_argument("--tag", default="fused",
                       help="result file suffix: BENCH_<tag>.json "
                       "(defaults to the suite name)")
    bench.add_argument("--reps", type=int, default=None,
                       help="timed repetitions per case (default 5, smoke 1)")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny sizes + 1 rep: correctness-of-the-harness "
                       "mode for CI")
    bench.add_argument("--out", default="benchmarks/results",
                       help="directory for the result JSON")
    bench.add_argument("--only", nargs="*", default=None,
                       help="subset of cases to run")
    bench.add_argument("--check", action="store_true",
                       help="compare against the committed BENCH_<tag>.json "
                       "instead of overwriting it; host mismatches demote "
                       "regressions to warnings")
    bench.add_argument("--telemetry", default=None, metavar="PATH",
                       help="enable repro.obs during the run and write the "
                       "telemetry snapshot to this JSON file")
    bench.set_defaults(func=cmd_bench)

    scenarios = sub.add_parser(
        "scenarios",
        help="run the adversarial/drift scenario matrix or check regressions",
        description="Scenario matrix: paper attack types, adversarial "
        "families (carpet bombing, pulse waves, multi-vector, adaptive "
        "prep), and benign-drift stressors, each driven through the CDet "
        "simulators, the online Xatu detector, and the sharded serving "
        "lane.  `run` writes the versioned SCENARIOS.json report; `check` "
        "compares a fresh run against the committed baseline; `list` "
        "prints the catalogue (see docs/TESTING.md).",
    )
    scenarios.add_argument("action", choices=["run", "check", "list"])
    scenarios.add_argument("--only", nargs="*", default=None,
                           help="subset of scenarios to run")
    scenarios.add_argument("--band", default=None,
                           choices=("paper", "adversarial", "drift", "scale"),
                           help="run every scenario of one family (e.g. "
                           "--band scale for the large-universe cells)")
    scenarios.add_argument("--ci", action="store_true",
                           help="the reduced deterministic CI subset")
    scenarios.add_argument("--detectors", nargs="*", default=None,
                           help="detector lanes (default: all four)")
    scenarios.add_argument("--epochs", type=int, default=3,
                           help="training epochs for the shared artifacts")
    scenarios.add_argument("--train-seed", type=int, default=42,
                           help="seed of the shared training scenario")
    scenarios.add_argument("--shards", type=int, default=2,
                           help="shard count for the xatu_serve lane")
    scenarios.add_argument("--out", default="benchmarks/results",
                           help="directory holding SCENARIOS.json")
    scenarios.add_argument("--report-out", default=None, metavar="PATH",
                           help="also save the fresh report JSON here "
                           "(never touches the baseline; for CI artifacts)")
    scenarios.set_defaults(func=cmd_scenarios)

    serve = sub.add_parser(
        "serve",
        help="run the sharded, checkpointable serving engine over a replay",
        description="Streaming deployment: shard the customer universe, "
        "feed minute batches through the flow collector, merge per-shard "
        "alerts into one ordered stream, checkpoint/restore the full "
        "online state (see docs/SERVING.md).",
    )
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument("--config", default=None,
                       help="JSON scenario config file (overrides size flags)")
    serve.add_argument("--days", type=float, default=4.0,
                       help="compressed days (120 minutes each; must exceed "
                       "the scenario's 2 prep days)")
    serve.add_argument("--customers", type=int, default=8)
    serve.add_argument("--epochs", type=int, default=2,
                       help="quick-training epochs when no --models given")
    serve.add_argument("--shards", type=int, default=1,
                       help="worker shards (customer_id %% shards)")
    serve.add_argument("--backend", choices=["inline", "thread", "process"],
                       default="inline", help="shard execution backend")
    serve.add_argument("--transport", choices=["shm", "pipe"], default="shm",
                       help="process-backend payload transport: shared-memory "
                       "rings (default; falls back to pipe when unavailable) "
                       "or pickled pipe messages — byte-identical outputs "
                       "either way")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="directory for versioned state checkpoints")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="snapshot every N minutes (0 disables periodic)")
    serve.add_argument("--restart-at", type=int, default=None, metavar="MINUTE",
                       help="induce a kill+restore at this minute "
                       "(requires --checkpoint-dir)")
    serve.add_argument("--lane", choices=["batched", "per-customer"],
                       default="batched",
                       help="scoring lane: one stacked fused pass per shard "
                       "per minute (default) or the per-customer reference "
                       "oracle — byte-identical alert streams either way")
    serve.add_argument("--inference-dtype", choices=["float32", "float64"],
                       default=None,
                       help="reduced-precision inference policy for the "
                       "shard detectors (default: full float64)")
    serve.add_argument("--minutes", type=int, default=None,
                       help="serve only the first N minutes of the trace")
    serve.add_argument("--threshold", type=float, default=None,
                       help="override the calibrated survival threshold")
    serve.add_argument("--models", default=None,
                       help="load a saved model registry instead of training")
    serve.add_argument("--alerts-out", default=None, metavar="PATH",
                       help="write the merged alert stream as JSON lines")
    serve.add_argument("--telemetry", default=None, metavar="PATH",
                       help="enable repro.obs during the run and write the "
                       "telemetry snapshot to this JSON file")
    serve.set_defaults(func=cmd_serve)

    metrics = sub.add_parser(
        "metrics",
        help="render a --telemetry JSON file or selftest the exporters",
        description="Telemetry viewer: top-style console table (default), "
        "Prometheus text exposition, or raw JSON.  --selftest exercises "
        "every exporter on a synthetic registry (see docs/OBSERVABILITY.md).",
    )
    metrics.add_argument("path", nargs="?", default=None,
                         help="telemetry JSON written by --telemetry")
    metrics.add_argument("--format", choices=["top", "prom", "json"],
                         default="top", help="output rendering")
    metrics.add_argument("--selftest", action="store_true",
                         help="check the exporters and exit")
    metrics.set_defaults(func=cmd_metrics)

    lint = sub.add_parser(
        "lint",
        help="run xatulint (domain-aware static analysis) over the tree",
        description="AST rules for the autograd/serving stack: tape "
        "mutation, grad-mode hygiene, global-switch leaks, determinism "
        "hazards, thread-safety, deprecated APIs (see docs/ANALYSIS.md).  "
        "Known-intentional findings live in lint-baseline.json with "
        "written reasons; the gate fails only on new ones.",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--strict", action="store_true",
                      help="fail on any new finding or stale baseline "
                      "entry, regardless of severity (the CI gate)")
    lint.add_argument("--deep", action="store_true",
                      help="also run the xatuflow interprocedural "
                      "checkers (XF001-XF004) over a cached symbol graph")
    lint.add_argument("--no-cache", action="store_true",
                      help="rebuild the --deep symbol graph from scratch, "
                      "ignoring .xatuflow-cache")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="baseline suppression file (repo-relative)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline to cover current findings "
                      "(keeps existing reasons; new entries get a TODO)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="report rendering (sarif: SARIF 2.1.0 for CI "
                      "artifacts / code-scanning upload)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
