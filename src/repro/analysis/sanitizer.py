"""Runtime sanitizer: the dynamic backstop for the xatulint invariants.

The static rules in :mod:`repro.analysis.rules` catch invariant
violations they can *see*; this module enforces the two most
corruption-prone ones at runtime, under an environment switch so the
production hot path pays a single module-level boolean read:

* **Tape immutability** (the dynamic half of rule XL001) — every tensor
  produced by a recorded op gets ``ndarray.flags.writeable = False``,
  so any in-place write to an activation buffer between forward and
  backward raises immediately at the mutation site instead of silently
  corrupting gradients.  Leaf tensors (parameters, inputs) stay
  writable: optimizers and ``gradcheck`` mutate those by design.
* **Finite kernel boundaries** — the fused kernels assert their inputs
  and outputs are free of NaN/inf, so a poisoned batch is caught at the
  kernel that first saw it, not three subsystems downstream as a weird
  survival score.

Enable with ``REPRO_SANITIZE=1`` (the CI sanitized test lane does); in
code use :func:`sanitized` / :func:`set_sanitize` (tests).  This module
must stay import-light — :mod:`repro.nn.autograd` imports it.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

__all__ = [
    "SanitizeError",
    "sanitize_enabled",
    "set_sanitize",
    "sanitized",
    "freeze_tape_buffer",
    "check_finite",
]


def _env_flag() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


_SANITIZE = _env_flag()


class SanitizeError(RuntimeError):
    """A runtime invariant the sanitizer enforces was violated."""


def sanitize_enabled() -> bool:
    """Whether the runtime sanitizer hooks are active."""
    return _SANITIZE


def set_sanitize(flag: bool) -> bool:
    """Flip the sanitizer switch; returns the previous state (tests)."""
    global _SANITIZE
    previous = _SANITIZE
    _SANITIZE = bool(flag)
    return previous


class sanitized:
    """Enable (or disable) the sanitizer within a ``with`` block,
    restoring the previous state on exit, raising included."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled

    def __enter__(self) -> "sanitized":
        self._prev = set_sanitize(self._enabled)
        return self

    def __exit__(self, *exc) -> bool:
        set_sanitize(self._prev)
        return False


def freeze_tape_buffer(array: np.ndarray) -> np.ndarray:
    """Mark a tape-node buffer read-only so in-place writes raise.

    Views of frozen buffers inherit the flag; fresh arrays derived from
    them (``np.zeros_like`` etc.) stay writable.  Arrays that do not own
    their memory and whose base is writable can still be frozen — numpy
    allows tightening ``writeable`` on any array.
    """
    try:
        array.flags.writeable = False
    except ValueError:
        # Some exotic views refuse the flag change; the static rule and
        # the finite guards still cover these.
        pass
    return array


def check_finite(where: str, **named: np.ndarray) -> None:
    """Raise :class:`SanitizeError` if any named array has NaN/inf.

    ``where`` names the kernel boundary for the report, e.g.
    ``lstm_sequence.forward``.
    """
    bad: list[str] = []
    for name, array in named.items():
        if array is None:
            continue
        data = np.asarray(array)
        if data.dtype.kind != "f":
            continue
        if not np.all(np.isfinite(data)):
            n_nan = int(np.isnan(data).sum())
            n_inf = int(np.isinf(data).sum())
            bad.append(f"{name} (shape {data.shape}: {n_nan} NaN, {n_inf} inf)")
    if bad:
        raise SanitizeError(
            f"non-finite values at {where}: " + ", ".join(bad)
        )
