"""Per-function control-flow graphs for the xatuflow checkers.

A :class:`CFG` is a list of basic blocks (statement runs with no internal
branching) plus successor edges.  Two derived queries carry the checkers:

* :meth:`CFG.reaches` — can execution flow from block ``a`` to block
  ``b``?  The seed-stream checker (XF002) uses this to tell *exclusive*
  consumptions (an ``if``/``else`` pair, one branch taken) from
  *sequential* ones (both executed — a double spend);
* :meth:`CFG.in_loop` — does a block sit on a cycle?  One consumption
  site inside a loop body executes many times.

The builder covers the statement forms the analyzed code uses — ``if``,
``while``/``for`` (+ ``else``), ``try``/``except``/``finally``, ``with``,
``return``/``raise``/``break``/``continue`` — and over-approximates the
rest (an unknown compound statement falls through).  Exceptional edges
are approximated: every ``try`` body block may jump to each handler.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg"]


@dataclass
class Block:
    """One basic block: statements executed straight through."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = 0
        self._block_of_stmt: dict[int, int] = {}  # id(stmt) -> block index
        self._reach_cache: dict[int, set[int]] = {}

    # -- construction helpers ------------------------------------------
    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def add_stmt(self, block: Block, stmt: ast.stmt) -> None:
        block.statements.append(stmt)
        self._block_of_stmt[id(stmt)] = block.index

    def link(self, src: Block, dst: Block) -> None:
        src.successors.add(dst.index)

    # -- queries --------------------------------------------------------
    def block_of(self, stmt: ast.stmt) -> int | None:
        return self._block_of_stmt.get(id(stmt))

    def _reachable_from(self, start: int) -> set[int]:
        cached = self._reach_cache.get(start)
        if cached is not None:
            return cached
        seen: set[int] = set()
        stack = list(self.blocks[start].successors)
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(self.blocks[idx].successors)
        self._reach_cache[start] = seen
        return seen

    def reaches(self, a: int, b: int) -> bool:
        """True when execution can flow from block ``a`` into block ``b``
        (strictly: via at least one edge; a block reaches itself only
        through a cycle)."""
        return b in self._reachable_from(a)

    def in_loop(self, idx: int) -> bool:
        return self.reaches(idx, idx)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function body (nested defs are opaque
    single statements — they execute at definition time, not inline)."""
    cfg = CFG()
    entry = cfg.new_block()
    exit_block = cfg.new_block()
    final = _build_body(cfg, func.body, entry, exit_block, loops=[])
    if final is not None:
        cfg.link(final, exit_block)
    cfg.entry = entry.index
    return cfg


def _build_body(
    cfg: CFG,
    body: list[ast.stmt],
    current: Block,
    exit_block: Block,
    loops: list[tuple[Block, Block]],  # (loop_head, loop_exit) stack
) -> Block | None:
    """Thread ``body`` starting at ``current``; return the fall-through
    block, or ``None`` if every path terminated (return/raise/...)."""
    for stmt in body:
        if current is None:
            # Dead code after a terminator; attach to a fresh orphan
            # block so statements still map to *some* block.
            current = cfg.new_block()
        if isinstance(stmt, ast.If):
            cfg.add_stmt(current, stmt)
            then_block = cfg.new_block()
            cfg.link(current, then_block)
            then_end = _build_body(cfg, stmt.body, then_block, exit_block, loops)
            if stmt.orelse:
                else_block = cfg.new_block()
                cfg.link(current, else_block)
                else_end = _build_body(
                    cfg, stmt.orelse, else_block, exit_block, loops
                )
            else:
                else_end = current  # condition false: fall through
            join = cfg.new_block()
            alive = False
            for end in (then_end, else_end):
                if end is not None:
                    cfg.link(end, join)
                    alive = True
            current = join if alive else None
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg.new_block()
            cfg.add_stmt(head, stmt)
            cfg.link(current, head)
            body_block = cfg.new_block()
            after = cfg.new_block()
            cfg.link(head, body_block)
            cfg.link(head, after)  # zero-iteration / loop-done edge
            body_end = _build_body(
                cfg, stmt.body, body_block, exit_block, loops + [(head, after)]
            )
            if body_end is not None:
                cfg.link(body_end, head)  # back edge
            if stmt.orelse:
                _build_body(cfg, stmt.orelse, after, exit_block, loops)
            current = after
        elif isinstance(stmt, ast.Try):
            body_block = cfg.new_block()
            cfg.link(current, body_block)
            body_end = _build_body(cfg, stmt.body, body_block, exit_block, loops)
            ends: list[Block | None] = [body_end]
            for handler in stmt.handlers:
                h_block = cfg.new_block()
                # Approximate: any block of the try body may raise into
                # the handler; linking from the body entry suffices for
                # reachability queries.
                cfg.link(body_block, h_block)
                ends.append(
                    _build_body(cfg, handler.body, h_block, exit_block, loops)
                )
            if stmt.orelse and body_end is not None:
                body_end = _build_body(
                    cfg, stmt.orelse, body_end, exit_block, loops
                )
                ends[0] = body_end
            join = cfg.new_block()
            alive = False
            for end in ends:
                if end is not None:
                    cfg.link(end, join)
                    alive = True
            if stmt.finalbody:
                fin_start = join if alive else cfg.new_block()
                fin_end = _build_body(
                    cfg, stmt.finalbody, fin_start, exit_block, loops
                )
                current = fin_end
            else:
                current = join if alive else None
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.add_stmt(current, stmt)
            inner = cfg.new_block()
            cfg.link(current, inner)
            current = _build_body(cfg, stmt.body, inner, exit_block, loops)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.add_stmt(current, stmt)
            cfg.link(current, exit_block)
            current = None
        elif isinstance(stmt, ast.Break):
            cfg.add_stmt(current, stmt)
            if loops:
                cfg.link(current, loops[-1][1])
            current = None
        elif isinstance(stmt, ast.Continue):
            cfg.add_stmt(current, stmt)
            if loops:
                cfg.link(current, loops[-1][0])
            current = None
        else:
            cfg.add_stmt(current, stmt)
    return current
