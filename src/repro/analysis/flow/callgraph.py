"""Call-graph construction over the xatuflow symbol table.

For every function in the table, each ``ast.Call`` in its body is
resolved to a callee qualname when possible:

* direct names (``helper(...)``) through module scope and imports;
* ``self.method(...)`` through the enclosing class and its resolvable
  bases;
* dotted access (``module.func``, ``Class.method``, ``pkg.mod.Class``)
  through the import-aware :meth:`SymbolTable.resolve`;
* constructor calls (``OnlineXatu(...)``) become edges to
  ``Class.__init__`` and are additionally recorded as *constructions*
  (the escape checker needs to know which class a value was built from);
* as a last resort, a *unique-name fallback*: ``obj.step(...)`` where
  exactly one class in the whole table defines ``step`` resolves to that
  method, marked ``heuristic=True`` so checkers can weigh it.

Edges carry the call node, so checkers can reason about the *site*
(guarded by ``with no_grad():``? inside a comprehension?) and findings
can print an interprocedural trace.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable

__all__ = ["CallSite", "CallGraph", "build_call_graph", "dotted_name"]


def dotted_name(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at ``node``."""

    caller: str  # qualname
    callee: str  # qualname
    node: ast.Call
    heuristic: bool = False  # resolved only via the unique-name fallback
    constructs: str | None = None  # ClassInfo qualname when a constructor


class CallGraph:
    """Edges between table functions, with reverse index and path search."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, []).append(site)
        self.callers.setdefault(site.callee, []).append(site)

    def callees_of(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def callers_of(self, qualname: str) -> list[CallSite]:
        return self.callers.get(qualname, [])

    # ------------------------------------------------------------------
    def reachable_from(
        self, entries: list[str], include_heuristic: bool = True
    ) -> dict[str, list[str]]:
        """BFS closure: qualname → shortest call path (list of qualnames,
        entry first) for every function reachable from ``entries``."""
        paths: dict[str, list[str]] = {}
        queue: list[str] = []
        for entry in entries:
            if entry not in paths:
                paths[entry] = [entry]
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for site in self.callees_of(current):
                if site.heuristic and not include_heuristic:
                    continue
                if site.callee in paths:
                    continue
                paths[site.callee] = paths[current] + [site.callee]
                queue.append(site.callee)
        return paths


# ----------------------------------------------------------------------
def build_call_graph(table: SymbolTable) -> CallGraph:
    graph = CallGraph(table)
    for fn in table.functions.values():
        mod = table.module_of(fn)
        cls = table.class_of(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            site = _resolve_call(table, mod, cls, fn, node)
            if site is not None:
                graph.add(site)
    return graph


def _resolve_call(
    table: SymbolTable,
    mod: ModuleInfo,
    cls: ClassInfo | None,
    fn: FunctionInfo,
    call: ast.Call,
) -> CallSite | None:
    func = call.func
    # self.method(...) — the common intraclass edge
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls is not None
    ):
        target = table.method_of(cls, func.attr)
        if target is not None:
            return CallSite(fn.qualname, target.qualname, call)
        return None
    dotted = dotted_name(func)
    if dotted:
        resolved = table.resolve(mod, dotted)
        if isinstance(resolved, FunctionInfo):
            return CallSite(fn.qualname, resolved.qualname, call)
        if isinstance(resolved, ClassInfo):
            init = table.method_of(resolved, "__init__")
            if init is not None:
                return CallSite(
                    fn.qualname, init.qualname, call, constructs=resolved.qualname
                )
            # Constructor of a class with no table __init__ (dataclass,
            # inherited init): keep the construction fact on a synthetic
            # edge to the class qualname so escape analysis still sees it.
            return CallSite(
                fn.qualname, resolved.qualname, call, constructs=resolved.qualname
            )
    # unique-name fallback for attribute calls on values of unknown type
    if isinstance(func, ast.Attribute):
        candidates = table.method_index.get(func.attr, [])
        if len(candidates) == 1:
            return CallSite(
                fn.qualname, candidates[0].qualname, call, heuristic=True
            )
    return None
