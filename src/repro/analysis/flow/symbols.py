"""xatuflow symbol layer: module/import resolution into one project table.

The flow checkers need to answer "what does this name mean *here*" across
file boundaries — a question the per-file :class:`~repro.analysis.framework.
FileContext` cannot ask.  This module parses every analyzed file once and
builds:

* :class:`ModuleInfo` — one parsed module: its import alias map (``np`` →
  ``numpy``, ``OnlineXatu`` → ``repro.core.online.OnlineXatu``), top-level
  functions, and classes;
* :class:`FunctionInfo` / :class:`ClassInfo` — one symbol each, addressed
  by *qualname* (``repro.core.model:XatuModel.hazards_np``);
* :class:`SymbolTable` — the project-wide index with the resolution
  helpers the call-graph builder leans on (:meth:`SymbolTable.resolve`
  follows import chains, including one-hop re-exports through package
  ``__init__`` modules).

Resolution is deliberately best-effort: an unresolved name returns
``None`` and the caller over- or under-approximates as its checker
requires.  Nothing here imports the analyzed code — it is all source-level,
so the table builds in milliseconds and never executes repo modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name_for",
]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/core/model.py`` → ``repro.core.model``; package
    ``__init__.py`` files name the package itself.
    """
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method: the unit the call graph connects."""

    qualname: str  # "repro.core.model:XatuModel.hazards_np"
    module: str  # dotted module name
    cls: str | None  # owning class name, None for module-level
    name: str  # bare function name
    node: ast.FunctionDef | ast.AsyncFunctionDef
    rel_path: str

    @property
    def decorator_names(self) -> list[str]:
        out = []
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            out.append(_dotted(target))
        return out


@dataclass
class ClassInfo:
    """One class with its method map and (unresolved) base names."""

    qualname: str  # "repro.serve.shard:ShardWorker"
    module: str
    name: str
    node: ast.ClassDef
    rel_path: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: source, tree, imports, and member indexes."""

    name: str
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    # local alias -> fully dotted target ("np" -> "numpy",
    # "OnlineXatu" -> "repro.core.online.OnlineXatu")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _package_of(module: str, rel_path: str) -> str:
    """The package a module's relative imports resolve against."""
    if rel_path.endswith("__init__.py"):
        return module  # the package itself
    return module.rsplit(".", 1)[0] if "." in module else ""


class SymbolTable:
    """Project-wide symbol index over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        # bare method name -> every FunctionInfo carrying it (the
        # unique-name fallback the call-graph resolver uses).
        self.method_index: dict[str, list[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, root: Path, paths: Iterable[str | Path] | None = None
    ) -> "SymbolTable":
        """Parse every ``.py`` file under ``paths`` (default: ``src``)
        relative to ``root`` into one table.  Files that fail to parse are
        skipped — the shallow XL000 rule owns syntax errors."""
        from ..framework import iter_python_files

        table = cls()
        for path in iter_python_files(paths or ["src"], Path(root)):
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                source = path.read_text()
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                continue
            table.add_module(rel, source, tree)
        table.finalize()
        return table

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "SymbolTable":
        """Build from in-memory ``{rel_path: source}`` (the test entry)."""
        table = cls()
        for rel, source in sorted(sources.items()):
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            table.add_module(rel, source, tree)
        table.finalize()
        return table

    def add_module(self, rel_path: str, source: str, tree: ast.Module) -> None:
        name = module_name_for(rel_path)
        mod = ModuleInfo(
            name=name,
            rel_path=PurePosixPath(rel_path).as_posix(),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        package = _package_of(name, mod.rel_path)
        for node in tree.body:
            self._collect(mod, node, package)
        self.modules[name] = mod

    def _collect(self, mod: ModuleInfo, node: ast.stmt, package: str) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # relative import: climb `level - 1` packages above ours
                anchor = package.split(".") if package else []
                climb = node.level - 1
                anchor = anchor[: len(anchor) - climb] if climb else anchor
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{mod.name}:{node.name}",
                module=mod.name,
                cls=None,
                name=node.name,
                node=node,
                rel_path=mod.rel_path,
            )
            mod.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            cinfo = ClassInfo(
                qualname=f"{mod.name}:{node.name}",
                module=mod.name,
                name=node.name,
                node=node,
                rel_path=mod.rel_path,
                bases=[_dotted(b) for b in node.bases],
            )
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    finfo = FunctionInfo(
                        qualname=f"{mod.name}:{node.name}.{sub.name}",
                        module=mod.name,
                        cls=node.name,
                        name=sub.name,
                        node=sub,
                        rel_path=mod.rel_path,
                    )
                    cinfo.methods[sub.name] = finfo
            mod.classes[node.name] = cinfo

    def finalize(self) -> None:
        """Build the flat qualname and method-name indexes."""
        self.functions.clear()
        self.classes.clear()
        self.method_index.clear()
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            for cinfo in mod.classes.values():
                self.classes[cinfo.qualname] = cinfo
                for meth in cinfo.methods.values():
                    self.functions[meth.qualname] = meth
                    self.method_index.setdefault(meth.name, []).append(meth)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(
        self, mod: ModuleInfo, dotted: str, _depth: int = 0
    ) -> "FunctionInfo | ClassInfo | ModuleInfo | None":
        """Resolve a dotted name as seen from ``mod`` to a table symbol.

        Handles module-local names, import aliases, dotted module-member
        access, ``Class.method``, and one-hop re-exports through package
        ``__init__`` import chains.  Returns ``None`` for anything outside
        the table (numpy, stdlib, unresolvable dynamics).
        """
        if not dotted or _depth > 4:
            return None
        head, _, rest = dotted.partition(".")
        # 1. module-local symbol
        target: FunctionInfo | ClassInfo | ModuleInfo | None = None
        if head in mod.functions:
            target = mod.functions[head]
        elif head in mod.classes:
            target = mod.classes[head]
        elif head in mod.imports:
            imported = mod.imports[head]
            target = self._resolve_absolute(imported, _depth + 1)
        elif head in self.modules:
            target = self.modules[head]
        if target is None:
            return None
        if not rest:
            return target
        return self._member(target, rest, _depth + 1)

    def _resolve_absolute(
        self, dotted: str, _depth: int = 0
    ) -> "FunctionInfo | ClassInfo | ModuleInfo | None":
        """Resolve a fully dotted target against the table."""
        if _depth > 4:
            return None
        if dotted in self.modules:
            return self.modules[dotted]
        if "." in dotted:
            owner, _, member = dotted.rpartition(".")
            owner_sym = self._resolve_absolute(owner, _depth + 1)
            if owner_sym is not None:
                return self._member(owner_sym, member, _depth + 1)
        return None

    def _member(
        self,
        owner: "FunctionInfo | ClassInfo | ModuleInfo",
        dotted: str,
        _depth: int,
    ) -> "FunctionInfo | ClassInfo | ModuleInfo | None":
        head, _, rest = dotted.partition(".")
        target: FunctionInfo | ClassInfo | ModuleInfo | None = None
        if isinstance(owner, ModuleInfo):
            if head in owner.functions:
                target = owner.functions[head]
            elif head in owner.classes:
                target = owner.classes[head]
            elif head in owner.imports:
                # re-export: `from .online import OnlineXatu` in __init__
                target = self._resolve_absolute(owner.imports[head], _depth + 1)
            elif f"{owner.name}.{head}" in self.modules:
                target = self.modules[f"{owner.name}.{head}"]
        elif isinstance(owner, ClassInfo):
            target = self.method_of(owner, head)
        if target is None or not rest:
            return target
        return self._member(target, rest, _depth + 1)

    def method_of(self, cinfo: ClassInfo, name: str) -> FunctionInfo | None:
        """Find ``name`` on ``cinfo`` or (table-resolvable) base classes."""
        seen: set[str] = set()
        stack = [cinfo]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            mod = self.modules.get(current.module)
            if mod is None:
                continue
            for base in current.bases:
                resolved = self.resolve(mod, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.module]

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.cls is None:
            return None
        return self.modules[fn.module].classes.get(fn.cls)
