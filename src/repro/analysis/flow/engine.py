"""The xatuflow fixpoint machinery.

Two engines, both classic worklist iterations:

* :func:`fixpoint_summaries` — **interprocedural**: computes one abstract
  summary per function (e.g. "returns a float32 array", "returns a fresh
  Generator") by iterating a transfer function to fixpoint over the call
  graph.  When a function's summary changes, its *callers* re-enter the
  worklist, so facts propagate across call edges — the property that
  separates the XF rules from the per-file XL rules.

* :func:`dataflow_forward` — **intraprocedural**: block-level forward
  dataflow over one :class:`~repro.analysis.flow.cfg.CFG` with a
  caller-supplied join, for the flow-sensitive checkers (dtype lanes).

Both terminate because the abstract domains the checkers use are finite
lattices and the transfer functions are monotone; a hard iteration cap
guards against a checker bug ever hanging the lint gate.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from .callgraph import CallGraph
from .cfg import CFG

__all__ = ["fixpoint_summaries", "dataflow_forward"]

S = TypeVar("S")

_MAX_ROUNDS = 50  # defensive cap; real fixpoints settle in < 5 rounds


def fixpoint_summaries(
    graph: CallGraph,
    functions: Iterable[str],
    initial: Callable[[str], S],
    transfer: Callable[[str, Callable[[str], S]], S],
) -> dict[str, S]:
    """Iterate ``transfer`` over the call graph until summaries stabilize.

    ``transfer(qualname, get_summary)`` recomputes one function's summary,
    reading callee summaries through ``get_summary`` (which returns the
    ``initial`` value for functions outside the analyzed set, so external
    callees degrade to the checker's ⊥/unknown).
    """
    names = list(functions)
    summaries: dict[str, S] = {name: initial(name) for name in names}
    in_set = set(names)

    def get_summary(qualname: str) -> S:
        if qualname in summaries:
            return summaries[qualname]
        return initial(qualname)

    worklist = list(names)
    rounds: dict[str, int] = {}
    while worklist:
        name = worklist.pop()
        rounds[name] = rounds.get(name, 0) + 1
        if rounds[name] > _MAX_ROUNDS:
            continue
        updated = transfer(name, get_summary)
        if updated != summaries[name]:
            summaries[name] = updated
            # The change can affect every caller's summary.
            for site in graph.callers_of(name):
                if site.caller in in_set and site.caller not in worklist:
                    worklist.append(site.caller)
    return summaries


def dataflow_forward(
    cfg: CFG,
    init: S,
    transfer_block: Callable[[int, S], S],
    join: Callable[[S, S], S],
    equal: Callable[[S, S], bool] | None = None,
) -> dict[int, S]:
    """Forward dataflow to fixpoint; returns the *input* state per block.

    ``transfer_block(index, state)`` returns the block's output state;
    ``join`` merges states at control-flow joins.  ``equal`` defaults to
    ``==``.
    """
    eq = equal or (lambda a, b: a == b)
    n = len(cfg.blocks)
    in_states: dict[int, S] = {cfg.entry: init}
    worklist = [cfg.entry]
    visits: dict[int, int] = {}
    while worklist:
        idx = worklist.pop(0)
        visits[idx] = visits.get(idx, 0) + 1
        if visits[idx] > _MAX_ROUNDS * max(1, n):
            continue
        out = transfer_block(idx, in_states[idx])
        for succ in cfg.blocks[idx].successors:
            if succ not in in_states:
                in_states[succ] = out
                worklist.append(succ)
            else:
                merged = join(in_states[succ], out)
                if not eq(merged, in_states[succ]):
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
    return in_states
