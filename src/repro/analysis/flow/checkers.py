"""The xatuflow deep checkers (XF001–XF004).

Each checker consumes the whole-project :class:`SymbolGraph` (symbol
table + call graph) instead of one file's AST, so its facts survive
function and module boundaries — the exact blind spot of the shallow
XL rules:

* **XF001 dtype-flow** — float32/float64 provenance through assignments
  and *call-return summaries*; flags mixed-dtype joins (binops, concats)
  that would silently upcast a reduced-precision inference lane and
  break bitwise lane equivalence.
* **XF002 seed-stream-discipline** — ``SeedSequence``/``Generator``
  values as linear resources: each named stream is consumed by exactly
  one owner.  Double consumption on one control-flow path, consumption
  inside a loop or comprehension, and aliased hand-offs all fire;
  exclusive ``if``/``else`` consumptions do not (the CFG knows the
  difference).
* **XF003 shard-state-ownership** — escape analysis across thread/
  process spawn sites: an object that escapes into a worker context
  while the spawning side retains an alias is *shared*; unguarded
  attribute writes reachable from the worker entry are flagged unless
  they go through the checkpoint (``state_dict``/``load_state_dict``) or
  ``ShmRing`` paths.  Supersedes the local XL006 heuristic across call
  and class boundaries.
* **XF004 no-grad-reachability** — walks unguarded call chains from
  inference entry points; any function on such a chain that allocates
  tape nodes (``Tensor(...)``, ``lstm_sequence``, ``.forward``) outside
  ``no_grad`` fires, with the full call path in the message.

Findings reuse the shallow framework's :class:`Finding` (same
fingerprints), so the one committed baseline covers both rule families.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterable

from ..framework import Finding, Severity
from .callgraph import CallGraph, CallSite, dotted_name
from .cfg import CFG, build_cfg
from .engine import dataflow_forward, fixpoint_summaries
from .symbols import ClassInfo, FunctionInfo, SymbolTable

__all__ = [
    "FlowChecker",
    "SymbolGraph",
    "all_flow_checkers",
    "ALL_FLOW_RULE_IDS",
]


class SymbolGraph:
    """Symbol table + call graph + per-function AST indexes, built once
    and shared by every checker (and cached across runs)."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self._parents: dict[str, dict[int, ast.AST]] = {}
        self._cfgs: dict[str, CFG] = {}

    # -- lazy per-function indexes -------------------------------------
    def parents_of(self, fn: FunctionInfo) -> dict[int, ast.AST]:
        cached = self._parents.get(fn.qualname)
        if cached is None:
            cached = {}
            for parent in ast.walk(fn.node):
                for child in ast.iter_child_nodes(parent):
                    cached[id(child)] = parent
            self._parents[fn.qualname] = cached
        return cached

    def cfg_of(self, fn: FunctionInfo) -> CFG:
        cfg = self._cfgs.get(fn.qualname)
        if cfg is None:
            cfg = build_cfg(fn.node)
            self._cfgs[fn.qualname] = cfg
        return cfg

    def ancestors(self, fn: FunctionInfo, node: ast.AST):
        parents = self.parents_of(fn)
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def statement_of(self, fn: FunctionInfo, node: ast.AST) -> ast.stmt | None:
        current: ast.AST | None = node
        parents = self.parents_of(fn)
        while current is not None and not isinstance(current, ast.stmt):
            current = parents.get(id(current))
        return current

    def under_no_grad(self, fn: FunctionInfo, node: ast.AST) -> bool:
        for anc in self.ancestors(fn, node):
            if isinstance(anc, ast.With):
                for item in anc.items:
                    expr = item.context_expr
                    target = expr.func if isinstance(expr, ast.Call) else expr
                    if "no_grad" in dotted_name(target):
                        return True
        return False

    def under_lock(self, fn: FunctionInfo, node: ast.AST) -> bool:
        for anc in self.ancestors(fn, node):
            if isinstance(anc, ast.With):
                for item in anc.items:
                    expr = item.context_expr
                    if "lock" in dotted_name(expr).lower() or (
                        isinstance(expr, ast.Call)
                        and "lock" in dotted_name(expr.func).lower()
                    ):
                        return True
        return False

    def in_comprehension(self, fn: FunctionInfo, node: ast.AST) -> bool:
        for anc in self.ancestors(fn, node):
            if isinstance(
                anc, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                return True
        return False


def _render_path(path: list[str]) -> str:
    return " -> ".join(q.split(":")[-1] for q in path)


class FlowChecker:
    """Base class for one interprocedural rule."""

    id: str = "XF000"
    name: str = "unnamed"
    severity: str = Severity.ERROR
    fix_hint: str = ""
    description: str = ""

    def check(self, sg: SymbolGraph) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        node: ast.AST,
        message: str,
        trace: list[str] | None = None,
    ) -> Finding:
        mod = sg.table.module_of(fn)
        line = getattr(node, "lineno", fn.node.lineno)
        if trace:
            message = f"{message} [call path: {_render_path(trace)}]"
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=fn.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=self.fix_hint,
            line_text=mod.line_text(line),
        )

    def run(self, sg: SymbolGraph) -> list[Finding]:
        from ..framework import _SUPPRESS_RE

        by_path = {m.rel_path: m for m in sg.table.modules.values()}
        out = []
        for finding in self.check(sg):
            # honour the same inline-suppression escape as shallow rules
            mod = by_path.get(finding.path)
            if mod is not None:
                match = _SUPPRESS_RE.search(mod.line_text(finding.line))
                if match is not None:
                    listed = match.group(1)
                    if listed is None or finding.rule in {
                        part.strip() for part in listed.split(",")
                    }:
                        continue
            out.append(finding)
        return sorted(out, key=lambda f: (f.path, f.line, f.col))


# ======================================================================
# XF001 — dtype provenance across call edges
# ======================================================================
_F32 = "float32"
_F64 = "float64"
_ARRAY_FACTORIES = {
    "asarray", "array", "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "ascontiguousarray", "linspace", "arange",
}
# Factories that default to float64 when no dtype is given.
_F64_DEFAULT_FACTORIES = {"zeros", "ones", "empty", "full", "linspace"}
_JOIN_CALLS = {"concatenate", "stack", "hstack", "vstack", "column_stack"}


def _dtype_const(expr: ast.AST) -> str | None:
    """A dtype-denoting expression: ``np.float32`` / ``"float32"``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        if expr.value in (_F32, _F64):
            return expr.value
    name = dotted_name(expr)
    leaf = name.split(".")[-1] if name else ""
    if leaf in (_F32, _F64):
        return leaf
    return None


def _join_dtype(a: str | None, b: str | None) -> str | None:
    return a if a == b else None


class DtypeFlowChecker(FlowChecker):
    """XF001: float64 values must not silently join a float32 lane."""

    id = "XF001"
    name = "dtype-flow"
    severity = Severity.ERROR
    fix_hint = (
        "cast explicitly at the lane boundary (np.asarray(x, dtype=...)); "
        "a mixed-dtype join upcasts silently and breaks bitwise lane "
        "equivalence"
    )
    description = (
        "mixed float32/float64 join, tracked interprocedurally through "
        "call-return summaries"
    )

    # -- expression dtype evaluation -----------------------------------
    def _dtype_of(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        expr: ast.AST,
        env: dict[str, str | None],
        get_summary: Callable[[str], str | None],
    ) -> str | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            dotted = dotted_name(func)
            leaf = dotted.split(".")[-1] if dotted else ""
            if leaf in (_F32, _F64):
                return leaf
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                for kw in expr.keywords:
                    if kw.arg == "dtype":
                        return _dtype_const(kw.value)
                if expr.args:
                    return _dtype_const(expr.args[0])
                return None
            if leaf in _ARRAY_FACTORIES:
                for kw in expr.keywords:
                    if kw.arg == "dtype":
                        got = _dtype_const(kw.value)
                        if got is not None:
                            return got
                        # dtype=<dynamic> — unknown, never assume
                        return None
                root = dotted.split(".")[0] if "." in dotted else ""
                if leaf in _F64_DEFAULT_FACTORIES and root in ("np", "numpy"):
                    return _F64
                return None
            # interprocedural: a resolved callee's return-dtype summary
            for site in sg.graph.callees_of(fn.qualname):
                if site.node is expr and not site.heuristic:
                    return get_summary(site.callee)
            return None
        if isinstance(expr, ast.BinOp):
            left = self._dtype_of(sg, fn, expr.left, env, get_summary)
            right = self._dtype_of(sg, fn, expr.right, env, get_summary)
            if left is not None and right is not None:
                # numpy promotion: f32 (op) f64 -> f64
                return _F64 if _F64 in (left, right) else left
            return None
        if isinstance(expr, ast.IfExp):
            return _join_dtype(
                self._dtype_of(sg, fn, expr.body, env, get_summary),
                self._dtype_of(sg, fn, expr.orelse, env, get_summary),
            )
        if isinstance(expr, ast.Subscript):
            return self._dtype_of(sg, fn, expr.value, env, get_summary)
        return None

    # -- one function's intraprocedural pass ---------------------------
    def _analyze(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        get_summary: Callable[[str], str | None],
        report: Callable[[ast.AST, str], None] | None = None,
    ) -> str | None:
        cfg = sg.cfg_of(fn)

        def transfer(idx: int, state: dict[str, str | None]):
            env = dict(state)
            for stmt in cfg.blocks[idx].statements:
                self._transfer_stmt(sg, fn, stmt, env, get_summary, report)
            return env

        def join(a: dict, b: dict) -> dict:
            merged = {}
            for key in set(a) | set(b):
                value = _join_dtype(a.get(key), b.get(key))
                if value is not None:
                    merged[key] = value
            return merged

        in_states = dataflow_forward(cfg, {}, transfer, join)

        # return-dtype summary: join over every reachable return
        result: str | None = None
        first = True
        for idx, state in in_states.items():
            env = dict(state)
            for stmt in cfg.blocks[idx].statements:
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    value = self._dtype_of(sg, fn, stmt.value, env, get_summary)
                    result = value if first else _join_dtype(result, value)
                    first = False
                self._transfer_stmt(sg, fn, stmt, env, get_summary, None)
        return result

    def _transfer_stmt(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        stmt: ast.stmt,
        env: dict[str, str | None],
        get_summary: Callable[[str], str | None],
        report: Callable[[ast.AST, str], None] | None,
    ) -> None:
        # Shallow handling: compound statements only contribute their
        # header expression — their bodies live in other CFG blocks.
        if isinstance(stmt, ast.Assign):
            if report is not None:
                self._scan_expr(sg, fn, stmt.value, env, get_summary, report)
            value = self._dtype_of(sg, fn, stmt.value, env, get_summary)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value is None:
                        env.pop(target.id, None)
                    else:
                        env[target.id] = value
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                if report is not None:
                    self._scan_expr(sg, fn, stmt.value, env, get_summary, report)
                value = self._dtype_of(sg, fn, stmt.value, env, get_summary)
                if isinstance(stmt.target, ast.Name):
                    if value is None:
                        env.pop(stmt.target.id, None)
                    else:
                        env[stmt.target.id] = value
        elif isinstance(stmt, ast.AugAssign):
            if report is not None:
                self._scan_expr(sg, fn, stmt.value, env, get_summary, report)
            if isinstance(stmt.target, ast.Name):
                left = env.get(stmt.target.id)
                right = self._dtype_of(sg, fn, stmt.value, env, get_summary)
                if (
                    report is not None
                    and left is not None
                    and right is not None
                    and left != right
                ):
                    report(
                        stmt,
                        f"augmented assignment joins {left} `{stmt.target.id}` "
                        f"with a {right} value",
                    )
                merged = _join_dtype(left, right)
                if merged is None:
                    env.pop(stmt.target.id, None)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if report is not None and stmt.value is not None:
                self._scan_expr(sg, fn, stmt.value, env, get_summary, report)
        elif isinstance(stmt, (ast.If, ast.While)):
            if report is not None:
                self._scan_expr(sg, fn, stmt.test, env, get_summary, report)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                env.pop(stmt.target.id, None)

    def _scan_expr(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        expr: ast.AST,
        env: dict[str, str | None],
        get_summary: Callable[[str], str | None],
        report: Callable[[ast.AST, str], None],
    ) -> None:
        """Flag mixed-dtype joins inside one expression tree."""
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp):
                left = self._dtype_of(sg, fn, node.left, env, get_summary)
                right = self._dtype_of(sg, fn, node.right, env, get_summary)
                if left is not None and right is not None and left != right:
                    report(
                        node,
                        f"binary op joins a {left} value with a {right} "
                        "value — numpy upcasts silently",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                leaf = dotted.split(".")[-1] if dotted else ""
                if leaf in _JOIN_CALLS and node.args:
                    seq = node.args[0]
                    elements = (
                        seq.elts if isinstance(seq, (ast.List, ast.Tuple)) else []
                    )
                    dtypes = {
                        d
                        for d in (
                            self._dtype_of(sg, fn, el, env, get_summary)
                            for el in elements
                        )
                        if d is not None
                    }
                    if len(dtypes) > 1:
                        report(
                            node,
                            f"np.{leaf} joins arrays of "
                            f"{' and '.join(sorted(dtypes))} — the result "
                            "silently upcasts the lane",
                        )

    # ------------------------------------------------------------------
    def check(self, sg: SymbolGraph) -> Iterable[Finding]:
        names = list(sg.table.functions)

        summaries = fixpoint_summaries(
            sg.graph,
            names,
            initial=lambda _q: None,
            transfer=lambda q, get: self._analyze(
                sg, sg.table.functions[q], get
            ),
        )

        def get_summary(qualname: str) -> str | None:
            return summaries.get(qualname)

        findings: list[Finding] = []
        for qualname in names:
            fn = sg.table.functions[qualname]
            seen: set[int] = set()

            def report(node: ast.AST, message: str) -> None:
                if id(node) in seen:
                    return
                seen.add(id(node))
                findings.append(self.finding(sg, fn, node, message))

            self._analyze(sg, fn, get_summary, report)
        return findings


# ======================================================================
# XF002 — seed streams are linear resources
# ======================================================================
_SEEDSEQ = "seedseq"
_GEN = "generator"
_SAFE_CALLS = {"len", "isinstance", "repr", "str", "id", "type", "print"}


class SeedStreamChecker(FlowChecker):
    """XF002: each named SeedSequence/Generator stream has one owner."""

    id = "XF002"
    name = "seed-stream-discipline"
    severity = Severity.ERROR
    fix_hint = (
        "spawn one child stream per consumer (root.spawn(n)); never hand "
        "the same SeedSequence/Generator to two owners or construct "
        "owners from it in a loop"
    )
    description = (
        "SeedSequence/Generator stream consumed more than once (linear-"
        "resource violation), tracked through call-return summaries"
    )

    # -- stream-kind evaluation ----------------------------------------
    def _kind_of(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        expr: ast.AST,
        env: dict[str, str],
        get_summary: Callable[[str], str | None],
    ) -> str | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            leaf = dotted.split(".")[-1] if dotted else ""
            if leaf == "SeedSequence":
                return _SEEDSEQ
            if leaf in ("default_rng", "Generator", "Random"):
                return _GEN
            if leaf == "spawn":
                return _SEEDSEQ  # a spawn() result (list; unpacked below)
            for site in sg.graph.callees_of(fn.qualname):
                if site.node is expr and not site.heuristic:
                    return get_summary(site.callee)
        return None

    def _summary(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        get_summary: Callable[[str], str | None],
    ) -> str | None:
        env = self._bindings(sg, fn, get_summary)
        result: str | None = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = self._kind_of(sg, fn, node.value, env, get_summary)
                if kind is not None:
                    result = kind
        return result

    def _bindings(
        self,
        sg: SymbolGraph,
        fn: FunctionInfo,
        get_summary: Callable[[str], str | None],
    ) -> dict[str, str]:
        """Flow-insensitive variable → stream-kind map for one function."""
        env: dict[str, str] = {}
        for _ in range(2):  # two passes resolve forward chains a = b
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                kind = self._kind_of(sg, fn, node.value, env, get_summary)
                for target in node.targets:
                    if isinstance(target, ast.Name) and kind is not None:
                        env[target.id] = kind
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        # a, b = root.spawn(2) — every element is a stream
                        value = node.value
                        unpack_kind = None
                        if (
                            isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Attribute)
                            and value.func.attr == "spawn"
                        ):
                            unpack_kind = _SEEDSEQ
                        elif isinstance(value, (ast.Tuple, ast.List)) and len(
                            value.elts
                        ) == len(target.elts):
                            continue  # handled positionally below if needed
                        if unpack_kind is not None:
                            for el in target.elts:
                                if isinstance(el, ast.Name):
                                    env[el.id] = unpack_kind
        return env

    # -- consumption collection ----------------------------------------
    def _consumptions(
        self, sg: SymbolGraph, fn: FunctionInfo, env: dict[str, str]
    ) -> dict[str, list[ast.AST]]:
        """var → consumption sites, deduplicated by node identity.

        Only *ownership hand-offs* consume, never draws:

        * a ``SeedSequence`` passed **directly by name** to any call —
          handing the same entropy source to two consumers is always a
          collision (``default_rng(ss)`` twice, two constructors, ...);
        * a ``Generator`` passed directly by name to a *constructor* of
          a table class (the object captures the stream) or stored on
          ``self``.  Passing a generator to a plain function that draws
          from it sequentially is this codebase's explicit-rng idiom and
          is deterministic — it does not consume.
        """
        mod = sg.table.module_of(fn)
        sites: dict[str, dict[int, ast.AST]] = {}

        def consume(name_node: ast.Name) -> None:
            sites.setdefault(name_node.id, {})[id(name_node)] = name_node

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                leaf = dotted.split(".")[-1] if dotted else ""
                if leaf in _SAFE_CALLS:
                    continue
                resolved = sg.table.resolve(mod, dotted) if dotted else None
                is_ctor = isinstance(resolved, ClassInfo)
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if not (isinstance(arg, ast.Name) and arg.id in env):
                        continue
                    kind = env[arg.id]
                    if kind == _SEEDSEQ or (kind == _GEN and is_ctor):
                        consume(arg)
            elif isinstance(node, ast.Assign):
                # self.x = v : ownership moves into the object
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and isinstance(
                        node.value, ast.Name
                    ):
                        if node.value.id in env:
                            consume(node.value)
        return {var: list(by_id.values()) for var, by_id in sites.items()}

    def check(self, sg: SymbolGraph) -> Iterable[Finding]:
        names = list(sg.table.functions)
        summaries = fixpoint_summaries(
            sg.graph,
            names,
            initial=lambda _q: None,
            transfer=lambda q, get: self._summary(sg, sg.table.functions[q], get),
        )

        def get_summary(qualname: str) -> str | None:
            return summaries.get(qualname)

        findings: list[Finding] = []
        for qualname in names:
            fn = sg.table.functions[qualname]
            env = self._bindings(sg, fn, get_summary)
            if not env:
                continue
            cfg = sg.cfg_of(fn)
            for var, sites in sorted(self._consumptions(sg, fn, env).items()):
                kind = env[var]
                noun = "SeedSequence" if kind == _SEEDSEQ else "Generator"
                flagged: set[int] = set()
                resolved: list[tuple[ast.AST, int | None]] = []
                for site in sites:
                    if sg.in_comprehension(fn, site):
                        if id(site) not in flagged:
                            flagged.add(id(site))
                            findings.append(
                                self.finding(
                                    sg,
                                    fn,
                                    site,
                                    f"{noun} stream `{var}` is consumed "
                                    "inside a comprehension — one stream "
                                    "shared across every constructed "
                                    "element",
                                )
                            )
                        continue
                    stmt = sg.statement_of(fn, site)
                    block = cfg.block_of(stmt) if stmt is not None else None
                    if block is not None and cfg.in_loop(block):
                        if id(site) not in flagged:
                            flagged.add(id(site))
                            findings.append(
                                self.finding(
                                    sg,
                                    fn,
                                    site,
                                    f"{noun} stream `{var}` is consumed "
                                    "inside a loop body — one stream "
                                    "shared across iterations",
                                )
                            )
                        continue
                    resolved.append((site, block))
                # pairwise: double consumption on one control-flow path
                for i in range(len(resolved)):
                    for j in range(i + 1, len(resolved)):
                        site_a, block_a = resolved[i]
                        site_b, block_b = resolved[j]
                        if block_a is None or block_b is None:
                            continue
                        sequential = (
                            block_a == block_b
                            or cfg.reaches(block_a, block_b)
                            or cfg.reaches(block_b, block_a)
                        )
                        if sequential and id(site_b) not in flagged:
                            flagged.add(id(site_b))
                            findings.append(
                                self.finding(
                                    sg,
                                    fn,
                                    site_b,
                                    f"{noun} stream `{var}` is consumed a "
                                    "second time (first hand-off at line "
                                    f"{site_a.lineno}) — split child "
                                    "streams instead of sharing one",
                                )
                            )
        return findings


# ======================================================================
# XF003 — shard-state ownership across spawn boundaries
# ======================================================================
_SPAWN_LEAVES = {"Thread", "Process"}
_CHECKPOINT_FUNCS = {"state_dict", "load_state_dict"}
_MEDIATED_MODULES = ("serve.shm", "serve.state")


class ShardOwnershipChecker(FlowChecker):
    """XF003: state shared across a spawn boundary needs mediation."""

    id = "XF003"
    name = "shard-state-ownership"
    severity = Severity.ERROR
    fix_hint = (
        "hand the object wholly to the worker (construct it in the spawn "
        "args), mediate through checkpoint/ShmRing paths, or guard the "
        "write with a lock / `# owner:` contract"
    )
    description = (
        "attribute write reachable from a thread/process worker entry on "
        "an object the spawning side still aliases"
    )

    def _spawn_sites(
        self, sg: SymbolGraph, fn: FunctionInfo
    ) -> list[ast.Call]:
        out = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted.split(".")[-1] in _SPAWN_LEAVES:
                    if any(kw.arg == "target" for kw in node.keywords):
                        out.append(node)
        return out

    def _resolve_target(
        self, sg: SymbolGraph, fn: FunctionInfo, expr: ast.AST
    ) -> FunctionInfo | None:
        table = sg.table
        mod = table.module_of(fn)
        cls = table.class_of(fn)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and cls is not None
        ):
            return table.method_of(cls, expr.attr)
        dotted = dotted_name(expr)
        if dotted:
            resolved = table.resolve(mod, dotted)
            if isinstance(resolved, FunctionInfo):
                return resolved
        return None

    def _class_of_value(
        self, sg: SymbolGraph, fn: FunctionInfo, expr: ast.AST
    ) -> ClassInfo | None:
        """The table class an escaped expression refers to, if inferable."""
        table = sg.table
        mod = table.module_of(fn)
        cls = table.class_of(fn)
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return cls
            # local also stored on self => the spawner retains an alias
            ctor_class: ClassInfo | None = None
            retained = False
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == expr.id
                            and isinstance(node.value, ast.Call)
                        ):
                            resolved = table.resolve(
                                mod, dotted_name(node.value.func)
                            )
                            if isinstance(resolved, ClassInfo):
                                ctor_class = resolved
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and isinstance(node.value, ast.Name)
                            and node.value.id == expr.id
                        ):
                            retained = True
            return ctor_class if retained else None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and cls is not None
        ):
            # self.<attr> escapes; infer its class from the constructor
            # assignment anywhere in the spawning class.
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Call
                    ):
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and target.attr == expr.attr
                            ):
                                resolved = table.resolve(
                                    table.module_of(method),
                                    dotted_name(node.value.func),
                                )
                                if isinstance(resolved, ClassInfo):
                                    return resolved
            return None
        return None

    def _owned_attrs(self, sg: SymbolGraph, cls: ClassInfo) -> set[str]:
        """Attributes introduced with an `# owner:` note (the XL006
        contract, honoured here too)."""
        mod = sg.table.modules[cls.module]
        owned: set[str] = set()
        for node in ast.walk(cls.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if "owner:" not in mod.line_text(node.lineno):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        owned.add(target.attr)
        return owned

    def check(self, sg: SymbolGraph) -> Iterable[Finding]:
        table = sg.table
        findings: list[Finding] = []
        flagged: set[tuple[str, int]] = set()
        for fn in list(table.functions.values()):
            for spawn in self._spawn_sites(sg, fn):
                target_expr = next(
                    kw.value for kw in spawn.keywords if kw.arg == "target"
                )
                entry = self._resolve_target(sg, fn, target_expr)
                if entry is None:
                    continue
                args_kw = next(
                    (kw.value for kw in spawn.keywords if kw.arg == "args"),
                    None,
                )
                escaped: list[ClassInfo] = []
                elements = (
                    args_kw.elts
                    if isinstance(args_kw, (ast.Tuple, ast.List))
                    else []
                )
                for element in elements:
                    shared = self._class_of_value(sg, fn, element)
                    if shared is not None:
                        escaped.append(shared)
                if not escaped:
                    continue
                reachable = sg.graph.reachable_from([entry.qualname])
                for shared in escaped:
                    owned = self._owned_attrs(sg, shared)
                    for method in shared.methods.values():
                        path = reachable.get(method.qualname)
                        if path is None:
                            continue
                        if method.name in _CHECKPOINT_FUNCS:
                            continue
                        if any(
                            method.module.endswith(m) for m in _MEDIATED_MODULES
                        ):
                            continue
                        mod = table.module_of(method)
                        for node in ast.walk(method.node):
                            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                                continue
                            targets = (
                                node.targets
                                if isinstance(node, ast.Assign)
                                else [node.target]
                            )
                            for target in targets:
                                if not (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    continue
                                if target.attr in owned:
                                    continue
                                if "owner:" in mod.line_text(node.lineno):
                                    continue
                                if sg.under_lock(method, node):
                                    continue
                                key = (method.rel_path, node.lineno)
                                if key in flagged:
                                    continue
                                flagged.add(key)
                                findings.append(
                                    self.finding(
                                        sg,
                                        method,
                                        node,
                                        f"`self.{target.attr}` of "
                                        f"`{shared.name}` is written on the "
                                        "worker side of a spawn boundary "
                                        "while the spawning side retains an "
                                        "alias — unmediated shared state",
                                        trace=path,
                                    )
                                )
        return findings


# ======================================================================
# XF004 — tape allocation reachable from inference entries
# ======================================================================
_INFER_ENTRY_RE = re.compile(
    r"(^_?infer)|(_infer($|_))|(^predict)|(_np($|_))"
)
_TAPE_LEAVES = {"Tensor", "lstm_sequence"}


class NoGradReachabilityChecker(FlowChecker):
    """XF004: inference-reachable functions must not allocate tape."""

    id = "XF004"
    name = "no-grad-reachability"
    severity = Severity.ERROR
    fix_hint = (
        "establish `with no_grad():` at the inference entry (or decorate "
        "the entry with @no_grad) so every transitively reached Tensor "
        "construction is graph-free"
    )
    description = (
        "function reachable from an inference entry point over an "
        "unguarded call chain allocates tape nodes"
    )

    def _mode_aware(self, fn: FunctionInfo) -> bool:
        """A function that dispatches on grad mode itself is mechanism."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if "grad_enabled" in dotted_name(node.func):
                    return True
            if isinstance(node, ast.Name) and node.id == "grad_enabled":
                return True
        return False

    def _mechanism_module(self, sg: SymbolGraph, fn: FunctionInfo) -> bool:
        """The module defining the Tensor class is the tape itself."""
        mod = sg.table.modules[fn.module]
        return "Tensor" in mod.classes

    def _alloc_sites(self, fn: FunctionInfo) -> list[tuple[ast.Call, str]]:
        out = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            leaf = dotted.split(".")[-1] if dotted else ""
            if leaf in _TAPE_LEAVES:
                out.append((node, leaf))
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "forward":
                out.append((node, f"{dotted or 'obj.forward'}"))
        return out

    def _decorated_no_grad(self, fn: FunctionInfo) -> bool:
        return any("no_grad" in d for d in fn.decorator_names)

    def check(self, sg: SymbolGraph) -> Iterable[Finding]:
        table = sg.table
        entries = [
            fn.qualname
            for fn in table.functions.values()
            if _INFER_ENTRY_RE.search(fn.name)
            and not self._mechanism_module(sg, fn)
        ]
        findings: list[Finding] = []
        flagged: set[tuple[str, int]] = set()
        # BFS over *unguarded* chains only: a call site under
        # `with no_grad():` (or a @no_grad callee) seals everything below.
        paths: dict[str, list[str]] = {}
        queue: list[str] = []
        for entry in sorted(entries):
            if entry not in paths:
                paths[entry] = [entry]
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            fn = table.functions[current]
            if self._mechanism_module(sg, fn) or self._mode_aware(fn):
                continue
            if self._decorated_no_grad(fn):
                continue
            for node, what in self._alloc_sites(fn):
                if sg.under_no_grad(fn, node):
                    continue
                key = (fn.rel_path, node.lineno)
                if key in flagged:
                    continue
                flagged.add(key)
                findings.append(
                    self.finding(
                        sg,
                        fn,
                        node,
                        f"`{what}(...)` allocates tape nodes outside "
                        "no_grad on an inference path",
                        trace=paths[current],
                    )
                )
            for site in sg.graph.callees_of(current):
                if site.callee in paths:
                    continue
                if sg.under_no_grad(fn, site.node):
                    continue
                callee = table.functions.get(site.callee)
                if callee is None:
                    continue
                if self._decorated_no_grad(callee):
                    continue
                paths[site.callee] = paths[current] + [site.callee]
                queue.append(site.callee)
        return findings


# ======================================================================
_FLOW_CHECKERS: list[FlowChecker] = [
    DtypeFlowChecker(),
    SeedStreamChecker(),
    ShardOwnershipChecker(),
    NoGradReachabilityChecker(),
]

ALL_FLOW_RULE_IDS = tuple(checker.id for checker in _FLOW_CHECKERS)


def all_flow_checkers() -> list[FlowChecker]:
    """Every deep checker, ordered by rule id."""
    return sorted(_FLOW_CHECKERS, key=lambda c: c.id)
