"""xatuflow: interprocedural dataflow analysis for the repro codebase.

Layered under :mod:`repro.analysis` (the shallow per-file xatulint
framework), this package adds the project-wide half of the lint story:

* :mod:`.symbols` — module/import resolution into one symbol table;
* :mod:`.callgraph` — call edges between every table function;
* :mod:`.cfg` — per-function basic-block control-flow graphs;
* :mod:`.engine` — inter- and intraprocedural fixpoint engines;
* :mod:`.checkers` — the four deep rules (XF001 dtype-flow, XF002
  seed-stream discipline, XF003 shard-state ownership, XF004 no_grad
  reachability);
* :mod:`.cache` — manifest-keyed symbol-graph cache behind
  ``cli lint --deep``.

Like the parent package, nothing here imports other ``repro``
subpackages and nothing executes analyzed code — analysis is purely
source-level.
"""

from .cache import build_symbol_graph, load_symbol_graph, manifest_digest
from .callgraph import CallGraph, CallSite, build_call_graph, dotted_name
from .cfg import CFG, Block, build_cfg
from .checkers import (
    ALL_FLOW_RULE_IDS,
    FlowChecker,
    SymbolGraph,
    all_flow_checkers,
)
from .engine import dataflow_forward, fixpoint_summaries
from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "ALL_FLOW_RULE_IDS",
    "Block",
    "CFG",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FlowChecker",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolGraph",
    "SymbolTable",
    "all_flow_checkers",
    "build_call_graph",
    "build_cfg",
    "build_symbol_graph",
    "dataflow_forward",
    "dotted_name",
    "fixpoint_summaries",
    "load_symbol_graph",
    "manifest_digest",
    "module_name_for",
]
