"""Symbol-graph cache so ``cli lint --deep`` stays fast on warm runs.

Building the table + call graph means parsing every analyzed file and
walking every function body — cheap (well under a second for this repo)
but not free, and the deep checkers re-run it on every invocation.  The
cache pickles the finished :class:`SymbolGraph` keyed by a *manifest
digest*: a sha256 over every analyzed file's path and content hash plus
the analyzer version and flow-rule inventory.  Any edit to any analyzed
file, or any change to the rule set, changes the digest and forces a
rebuild — there is no staleness window to reason about.

Pickling the table and call graph **together** matters: ``CallSite``
objects reference ``ast.Call`` nodes inside the table's trees, and the
checkers test those with ``is``.  A single ``pickle.dumps`` memoizes
shared objects, so identity survives the round trip.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from ..framework import ANALYZER_VERSION, iter_python_files
from .callgraph import build_call_graph
from .checkers import ALL_FLOW_RULE_IDS, SymbolGraph
from .symbols import SymbolTable

__all__ = ["manifest_digest", "load_symbol_graph", "CACHE_DIR_NAME"]

CACHE_DIR_NAME = ".xatuflow-cache"
_PICKLE_PROTOCOL = 4


def manifest_digest(root: Path, paths: list[str]) -> str:
    """sha256 over (analyzer version, rule inventory, every file's
    path + content hash).  Stable across runs, sensitive to any edit."""
    h = hashlib.sha256()
    h.update(ANALYZER_VERSION.encode())
    h.update(",".join(ALL_FLOW_RULE_IDS).encode())
    entries = []
    for path in iter_python_files(paths, root):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            content = path.read_bytes()
        except OSError:
            continue
        entries.append((rel, hashlib.sha256(content).hexdigest()))
    for rel, digest in sorted(entries):
        h.update(rel.encode())
        h.update(digest.encode())
    return h.hexdigest()


def _cache_file(root: Path, paths: list[str]) -> Path:
    key = hashlib.sha256("\x00".join(sorted(paths)).encode()).hexdigest()[:12]
    return root / CACHE_DIR_NAME / f"graph-{key}.pkl"


def build_symbol_graph(root: Path, paths: list[str]) -> SymbolGraph:
    """Uncached build: parse, index, connect."""
    table = SymbolTable.build(root, paths)
    return SymbolGraph(table, build_call_graph(table))


def load_symbol_graph(
    root: Path, paths: list[str], use_cache: bool = True
) -> tuple[SymbolGraph, bool]:
    """Return ``(graph, from_cache)``; rebuilds and rewrites the cache on
    any manifest mismatch.  Cache failures (corrupt pickle, unwritable
    dir) silently fall back to a fresh build — the cache is an
    optimization, never a correctness dependency."""
    root = Path(root)
    if not use_cache:
        return build_symbol_graph(root, paths), False
    digest = manifest_digest(root, paths)
    cache_path = _cache_file(root, paths)
    if cache_path.exists():
        try:
            payload = pickle.loads(cache_path.read_bytes())
            if payload.get("manifest") == digest:
                table = payload["table"]
                graph = payload["graph"]
                return SymbolGraph(table, graph), True
        except Exception:
            pass  # corrupt/incompatible cache: rebuild below
    sg = build_symbol_graph(root, paths)
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {"manifest": digest, "table": sg.table, "graph": sg.graph},
            protocol=_PICKLE_PROTOCOL,
        )
        tmp = cache_path.with_suffix(".tmp")
        tmp.write_bytes(blob)
        tmp.replace(cache_path)
    except Exception:
        pass  # unwritable cache dir: run uncached
    return sg, False
