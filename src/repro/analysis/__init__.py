"""repro.analysis — xatulint: domain-aware static analysis + sanitizer.

The correctness gate for the autograd/serving stack (docs/ANALYSIS.md):

* :mod:`repro.analysis.framework` — the AST rule framework: registry,
  :class:`Finding`, deterministic file drivers, inline suppressions;
* :mod:`repro.analysis.rules` — the XL001–XL010 domain rules (tape
  immutability, no_grad hygiene, global-switch leaks, reproducibility,
  thread ownership, deprecated APIs, alert-order determinism);
* :mod:`repro.analysis.flow` — **xatuflow**, the interprocedural layer:
  symbol table, call graph, per-function CFGs, fixpoint engines, and the
  deep XF001–XF004 checkers behind ``cli lint --deep``;
* :mod:`repro.analysis.baseline` — the committed suppression ledger
  (``lint-baseline.json``) with per-entry written reasons and an
  analyzer-version + rule-inventory stamp;
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 serialisation for CI
  artifacts (``cli lint --format sarif``);
* :mod:`repro.analysis.sanitizer` — the ``REPRO_SANITIZE=1`` runtime
  backstop: frozen tape buffers and NaN/inf kernel-boundary guards.

Run it via ``python -m repro.cli lint --strict`` (shallow, fast) or
``python -m repro.cli lint --deep`` (adds the flow checkers) /
``make lint`` / ``make lint-deep``.

:mod:`repro.analysis.flow` is *not* imported here — the deep layer loads
only when ``--deep`` asks for it, keeping the sanitizer import path
(this package is imported by :mod:`repro.nn.autograd`) minimal.

This package is imported by :mod:`repro.nn.autograd` (for the sanitizer
switch), so it must not import any repro subpackage.
"""

from .baseline import BASELINE_VERSION, DEFAULT_BASELINE_PATH, Baseline, BaselineEntry
from .framework import (
    ANALYZER_VERSION,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    iter_python_files,
    register,
)
from .rules import ALL_RULE_IDS
from .sanitizer import (
    SanitizeError,
    check_finite,
    freeze_tape_buffer,
    sanitize_enabled,
    sanitized,
    set_sanitize,
)

__all__ = [
    "ALL_RULE_IDS",
    "ANALYZER_VERSION",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "Rule",
    "SanitizeError",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "check_finite",
    "freeze_tape_buffer",
    "get_rule",
    "iter_python_files",
    "register",
    "sanitize_enabled",
    "sanitized",
    "set_sanitize",
]
