"""repro.analysis — xatulint: domain-aware static analysis + sanitizer.

The correctness gate for the autograd/serving stack (docs/ANALYSIS.md):

* :mod:`repro.analysis.framework` — the AST rule framework: registry,
  :class:`Finding`, deterministic file drivers, inline suppressions;
* :mod:`repro.analysis.rules` — the XL001–XL010 domain rules (tape
  immutability, no_grad hygiene, global-switch leaks, reproducibility,
  thread ownership, deprecated APIs, alert-order determinism);
* :mod:`repro.analysis.baseline` — the committed suppression ledger
  (``lint-baseline.json``) with per-entry written reasons;
* :mod:`repro.analysis.sanitizer` — the ``REPRO_SANITIZE=1`` runtime
  backstop: frozen tape buffers and NaN/inf kernel-boundary guards.

Run it via ``python -m repro.cli lint --strict`` or ``make lint``.

This package is imported by :mod:`repro.nn.autograd` (for the sanitizer
switch), so it must not import any repro subpackage.
"""

from .baseline import BASELINE_VERSION, DEFAULT_BASELINE_PATH, Baseline, BaselineEntry
from .framework import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    iter_python_files,
    register,
)
from .rules import ALL_RULE_IDS
from .sanitizer import (
    SanitizeError,
    check_finite,
    freeze_tape_buffer,
    sanitize_enabled,
    sanitized,
    set_sanitize,
)

__all__ = [
    "ALL_RULE_IDS",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "Rule",
    "SanitizeError",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "check_finite",
    "freeze_tape_buffer",
    "get_rule",
    "iter_python_files",
    "register",
    "sanitize_enabled",
    "sanitized",
    "set_sanitize",
]
