"""xatulint — the AST framework: contexts, rules, findings, drivers.

A *rule* is a small class that walks one file's AST and yields
:class:`Finding`\\ s.  Rules register themselves into a module-level
registry via the :func:`register` decorator, so adding a rule is one
class in :mod:`repro.analysis.rules` (see docs/ANALYSIS.md for the
how-to).  The framework deliberately knows nothing about the domain —
everything Xatu-specific (tape immutability, grad-mode hygiene, alert
determinism) lives in the rules.

Design points that matter for a lint gate:

* **Deterministic output** — files are visited in sorted order and
  findings are sorted by ``(path, line, col, rule)``, so two runs over
  the same tree produce byte-identical reports.
* **Line-content fingerprints** — a finding carries the stripped source
  line it points at; the baseline (:mod:`repro.analysis.baseline`)
  matches on ``(rule, path, line_text)`` rather than line numbers, so
  unrelated edits don't churn the suppression file.
* **Inline escapes** — ``# xatulint: ignore[XL001]`` on the offending
  line suppresses that rule there (``ignore`` with no bracket list
  suppresses every rule); use sparingly, prefer the baseline file which
  forces a written reason.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator

__all__ = [
    "ANALYZER_VERSION",
    "Severity",
    "Finding",
    "Rule",
    "FileContext",
    "register",
    "all_rules",
    "get_rule",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
]


# Analyzer generation, stamped into baseline files.  Bump the major when
# the rule inventory or a rule's semantics change enough that an old
# baseline deserves a re-audit; `cli lint` warns when a baseline was
# written by an older analyzer or a different rule set.
ANALYZER_VERSION = "2.0"


class Severity:
    """Finding severities, ordered: error > warning > info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, 99)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``line_text`` is the stripped source line — the stable half of the
    baseline fingerprint (line *numbers* churn with every edit above the
    finding; line *content* only churns when the flagged code itself
    changes).
    """

    rule: str
    severity: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    fix_hint: str = ""
    line_text: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)

    def render(self) -> str:
        hint = f"  [{self.fix_hint}]" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}{hint}"
        )


_SUPPRESS_RE = re.compile(r"#\s*xatulint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


class FileContext:
    """Everything a rule needs to inspect one parsed source file."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module) -> None:
        self.rel_path = PurePosixPath(rel_path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- path scoping ---------------------------------------------------
    def in_subpath(self, *fragments: str) -> bool:
        """Whether the file lives under any ``fragment`` path component
        (``ctx.in_subpath("serve")`` matches ``src/repro/serve/shard.py``)."""
        parts = PurePosixPath(self.rel_path).parts
        return any(fragment in parts for fragment in fragments)

    # -- source access --------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        """Inline ``# xatulint: ignore[...]`` escape on ``lineno``."""
        match = _SUPPRESS_RE.search(self.line_text(lineno))
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return rule_id in {part.strip() for part in listed.split(",")}

    # -- tree navigation ------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def next_sibling(self, stmt: ast.stmt) -> ast.stmt | None:
        """The statement following ``stmt`` in its enclosing body, if any."""
        parent = self._parents.get(stmt)
        if parent is None:
            return None
        for body_field in ("body", "orelse", "finalbody", "handlers"):
            body = getattr(parent, body_field, None)
            if isinstance(body, list) and stmt in body:
                index = body.index(stmt)
                if index + 1 < len(body):
                    return body[index + 1]
                return None
        return None

    def walk(self, *types: type) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` pairs (or fully-built :class:`Finding`
    objects); the framework attaches location, severity, fix hint, line
    text, and honours inline suppressions.
    """

    id: str = "XL000"
    name: str = "unnamed"
    severity: str = Severity.ERROR
    fix_hint: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Path scoping; default: every file under analysis."""
        return True

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(self, ctx: FileContext) -> list[Finding]:
        if not self.applies_to(ctx):
            return []
        findings = []
        for item in self.check(ctx):
            if isinstance(item, Finding):
                finding = item
            else:
                node, message = item
                line = getattr(node, "lineno", 1)
                finding = Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=ctx.rel_path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    fix_hint=self.fix_hint,
                    line_text=ctx.line_text(line),
                )
            if ctx.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
        return findings


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401  (self-registration on import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401

    return _REGISTRY[rule_id]


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def analyze_source(
    source: str, rel_path: str, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint one in-memory source blob (the unit-test entry point)."""
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="XL000",
                severity=Severity.ERROR,
                path=PurePosixPath(rel_path).as_posix(),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                line_text="",
            )
        ]
    ctx = FileContext(rel_path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.run(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
    return sorted(out)


def analyze_paths(
    paths: Iterable[str | Path],
    root: str | Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; paths in findings are
    reported relative to ``root`` (default: the current directory)."""
    root = Path(root) if root is not None else Path.cwd()
    rules = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for path in iter_python_files(paths, root):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        findings.extend(analyze_source(path.read_text(), rel, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
