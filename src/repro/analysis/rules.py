"""The xatulint domain rules (XL001–XL010).

Each rule encodes one invariant the train/serve stack's correctness
rests on — invariants no generic linter knows about.  The catalogue,
with rationale and worked examples, lives in docs/ANALYSIS.md; the
positive/negative fixtures per rule live in tests/test_analysis.py.

Rules are deliberately *syntactic and local*: they over-approximate
(flagging, e.g., a leaf-parameter update as a tape mutation) and rely
on the committed baseline file to record the intentional exceptions
with a written reason — that keeps every rule simple enough to audit
in one read, and every exception documented in one place.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .framework import FileContext, Rule, Severity, register

__all__ = ["ALL_RULE_IDS"]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _mentions_attr(node: ast.AST, attr: str) -> bool:
    """Whether any sub-expression accesses ``<something>.<attr>``."""
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == attr
        for sub in ast.walk(node)
    )


def _call_name(call: ast.Call) -> str:
    """The trailing name of a call target: ``a.b.c(...)`` -> ``c``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.normal``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _inside_try_finally(ctx: FileContext, node: ast.AST) -> bool:
    return any(
        isinstance(anc, ast.Try) and anc.finalbody for anc in ctx.ancestors(node)
    )


def _inside_with_lock(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` sits under ``with <something lock-ish>:``."""
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if "lock" in _dotted(item.context_expr).lower() or (
                    isinstance(item.context_expr, ast.Call)
                    and "lock" in _dotted(item.context_expr.func).lower()
                ):
                    return True
    return False


def _statement_of(ctx: FileContext, node: ast.AST) -> ast.stmt | None:
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = ctx.parent(current)
    return current


# ----------------------------------------------------------------------
# XL001 — tape-node buffers must never be mutated in place
# ----------------------------------------------------------------------
@register
class TapeMutationRule(Rule):
    """In-place writes through a ``.data`` buffer invalidate the tape.

    Autograd backward closures capture ``tensor.data`` *by reference*;
    mutating it between forward and backward silently corrupts every
    gradient that flows through the node.  The runtime sanitizer
    (``REPRO_SANITIZE=1``) enforces this dynamically by freezing tape
    buffers; this rule catches the pattern at review time.  Legitimate
    exceptions (optimizer steps and checkpoint loads touch only *leaf*
    parameters, which are never tape nodes) are baselined with reasons.
    """

    id = "XL001"
    name = "tape-mutation"
    severity = Severity.ERROR
    fix_hint = (
        "build a new array instead of writing through .data; if the "
        "target is provably a leaf parameter, baseline with a reason"
    )
    description = "in-place mutation of a Tensor .data buffer"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for node in ctx.walk(ast.Assign, ast.AugAssign):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                # `x.data[...] = v` / `x.data += v` — but a plain rebind
                # `x.data = v` (Attribute target itself) only counts for
                # AugAssign; rebinding the attribute makes a new array.
                if isinstance(target, ast.Subscript) and _mentions_attr(
                    target, "data"
                ):
                    yield node, "in-place write through a Tensor .data buffer"
                elif isinstance(node, ast.AugAssign) and isinstance(
                    target, ast.Attribute
                ) and target.attr == "data":
                    yield node, "augmented assignment mutates .data in place"
        for call in ctx.walk(ast.Call):
            for kw in call.keywords:
                if kw.arg == "out" and kw.value is not None and _mentions_attr(
                    kw.value, "data"
                ):
                    yield call, (
                        "ufunc out= targets a Tensor .data buffer "
                        "(mutates the tape in place)"
                    )


# ----------------------------------------------------------------------
# XL002 — inference entry points must run under no_grad
# ----------------------------------------------------------------------
_INFER_NAME_RE = re.compile(r"(^_?infer)|(_infer($|_))|(^predict)|(_np$)")


@register
class InferenceOutsideNoGradRule(Rule):
    """Inference lanes that build Tensors outside ``no_grad()`` leak tape.

    A function that *names itself* an inference path (``infer*``,
    ``*_infer``, ``predict*``, ``*_np``) and constructs Tensors (or
    calls the fused kernels / ``.forward``) without disabling gradients
    allocates a closure per op — the exact regression the graph-free
    lane exists to avoid — and silently grows the tape.
    """

    id = "XL002"
    name = "inference-outside-no-grad"
    severity = Severity.ERROR
    fix_hint = (
        "wrap the tensor-building body in `with no_grad():` or decorate "
        "with @no_grad"
    )
    description = "inference-named function builds Tensors without no_grad"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for func in ctx.walk(ast.FunctionDef):
            if not _INFER_NAME_RE.search(func.name):
                continue
            builds_tensors = False
            has_guard = any(
                "no_grad" in _dotted(dec) for dec in func.decorator_list
            )
            for sub in ast.walk(func):
                if isinstance(sub, ast.Call):
                    name = _call_name(sub)
                    if name in ("Tensor", "lstm_sequence") or name == "forward":
                        builds_tensors = True
                if isinstance(sub, ast.With):
                    for item in sub.items:
                        if "no_grad" in _dotted(
                            item.context_expr.func
                            if isinstance(item.context_expr, ast.Call)
                            else item.context_expr
                        ):
                            has_guard = True
            if builds_tensors and not has_guard:
                yield func, (
                    f"inference path `{func.name}` builds Tensors outside "
                    "no_grad() — every op allocates a tape closure"
                )


# ----------------------------------------------------------------------
# XL003 — process-global switches must not leak
# ----------------------------------------------------------------------
_SWITCH_CALLS = {"set_enabled", "set_tape_hook"}


@register
class GlobalSwitchLeakRule(Rule):
    """Toggling a process-global switch without a restore path leaks it.

    ``repro.obs.set_enabled`` and ``repro.nn.set_tape_hook`` mutate
    process-wide state: a raising body between toggle and restore leaves
    telemetry (or the profiling hook) on for every later import in the
    process — the grad-mode race PR 4 fixed by hand was exactly this
    shape.  Allowed forms: toggle inside ``try``/``finally``, toggle
    whose *next statement* opens the ``try``/``finally`` that restores
    it, context-manager plumbing (``__enter__``/``__exit__``), and the
    defining module itself.
    """

    id = "XL003"
    name = "global-switch-leak"
    severity = Severity.ERROR
    fix_hint = (
        "use the context-manager form (telemetry() / profile_tape()) or "
        "restore the previous value in a finally: block"
    )
    description = "global switch toggled without try/finally or ctx manager"

    def applies_to(self, ctx: FileContext) -> bool:
        # The switches' own defining modules are the mechanism, not a use.
        return not ctx.rel_path.endswith(
            ("obs/registry.py", "nn/autograd.py")
        )

    def _restores_in_finally(self, stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Try) or not stmt.finalbody:
            return False
        for node in stmt.finalbody:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and _call_name(sub) in _SWITCH_CALLS:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for call in ctx.walk(ast.Call):
            name = _call_name(call)
            if name not in _SWITCH_CALLS:
                continue
            func = ctx.enclosing_function(call)
            if func is not None and func.name in ("__enter__", "__exit__"):
                continue
            if _inside_try_finally(ctx, call):
                continue
            # Toggle immediately followed by the try/finally that restores
            # it is fine — check siblings of the statement and of each
            # enclosing statement (the toggle often sits in an `if`).
            stmt = _statement_of(ctx, call)
            restored = False
            while stmt is not None and not restored:
                sibling = ctx.next_sibling(stmt)
                if sibling is not None:
                    restored = self._restores_in_finally(sibling)
                    break
                parent = ctx.parent(stmt)
                if isinstance(
                    parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
                ):
                    break  # never climb across a function boundary
                stmt = _statement_of(ctx, parent)
            if restored:
                continue
            yield call, (
                f"`{name}(...)` toggles process-global state with no "
                "try/finally restore on this path"
            )
        # Direct pokes at the autograd mode object are never OK outside
        # the context managers in nn/autograd.py itself.
        for node in ctx.walk(ast.Assign, ast.AugAssign):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "grad_enabled"
                ):
                    func = ctx.enclosing_function(node)
                    if func is not None and func.name in ("__enter__", "__exit__"):
                        continue
                    yield node, (
                        "direct assignment to the grad-mode flag; use "
                        "no_grad() so the previous mode is restored"
                    )


# ----------------------------------------------------------------------
# XL004 — unseeded randomness breaks crash-equivalence
# ----------------------------------------------------------------------
_RNG_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
                  "RandomState", "get_state", "set_state"}


@register
class UnseededRandomnessRule(Rule):
    """Module-level RNG calls make replays and restores non-reproducible.

    The serving stack's crash-equivalence guarantee (a restored run is
    byte-identical to an uninterrupted one) holds only when every random
    draw flows from an explicitly seeded ``np.random.Generator`` that is
    part of checkpointed state.  ``np.random.normal(...)`` and friends
    draw from hidden process-global state that no checkpoint captures.
    """

    id = "XL004"
    name = "unseeded-randomness"
    severity = Severity.ERROR
    fix_hint = (
        "thread an np.random.Generator through (rng parameter, "
        "np.random.default_rng(seed) at the boundary)"
    )
    description = "np.random.* / random.* module-level draw"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for call in ctx.walk(ast.Call):
            dotted = _dotted(call.func)
            parts = dotted.split(".")
            if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                if parts[2] not in _RNG_FACTORIES:
                    yield call, (
                        f"`{dotted}(...)` draws from the hidden global RNG; "
                        "crash-equivalence requires an explicit Generator"
                    )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] not in (
                "Random", "SystemRandom"
            ):
                yield call, (
                    f"`{dotted}(...)` draws from the stdlib global RNG; "
                    "use a seeded random.Random (or numpy Generator)"
                )


# ----------------------------------------------------------------------
# XL005 — wall-clock reads in deterministic paths
# ----------------------------------------------------------------------
_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.now": "datetime.datetime.now()",
    "datetime.datetime.utcnow": "datetime.datetime.utcnow()",
    "date.today": "date.today()",
    "datetime.date.today": "datetime.date.today()",
}


@register
class WallClockRule(Rule):
    """Wall-clock reads in core/serve/nn paths break replay determinism.

    Logical time in this stack is the *minute index* threaded through
    every API; real timestamps differ between the original and the
    restored run, so any wall-clock read that influences state breaks
    the byte-identical-alerts guarantee.  ``time.perf_counter`` is fine
    — durations feed telemetry, never state.  Host metadata stamping in
    ``obs``/``bench`` is out of scope by path.
    """

    id = "XL005"
    name = "wall-clock"
    severity = Severity.ERROR
    fix_hint = (
        "thread the minute index (or an injected clock) through instead; "
        "time.perf_counter() is fine for durations"
    )
    description = "wall-clock read in a determinism-critical path"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_subpath(
            "core", "serve", "nn", "netflow", "signals", "detect", "scrub",
            "survival",
        )

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for call in ctx.walk(ast.Call):
            dotted = _dotted(call.func)
            if dotted in _WALL_CLOCK:
                yield call, (
                    f"`{_WALL_CLOCK[dotted]}` reads the wall clock in a "
                    "determinism-critical path"
                )


# ----------------------------------------------------------------------
# XL006 — thread-shared mutable state needs a lock or an owner
# ----------------------------------------------------------------------
@register
class UnlockedSharedStateRule(Rule):
    """In ``serve/``, attribute writes in thread-spawning classes need
    a lock or a documented single owner.

    A class that starts a ``threading.Thread`` has (at least) two
    execution contexts touching ``self``.  Every post-``__init__``
    attribute write must either hold a lock (``with self._lock:``) or
    target an attribute with *documented ownership* — an ``# owner: ...``
    comment naming the one thread allowed to write it, placed either on
    the write itself or on the attribute's introduction in ``__init__``
    (ownership is a property of the attribute, declared once).

    Private helpers invoked **only** from ``__init__`` (transitively —
    an init helper calling another init helper still counts) run before
    any thread exists, so their writes are construction, not sharing;
    they are exempt exactly like ``__init__`` itself.  A helper loses
    the exemption the moment any post-init method calls it, or its bound
    reference escapes (``target=self._helper``).
    """

    id = "XL006"
    name = "unlocked-shared-state"
    severity = Severity.WARNING
    fix_hint = (
        "guard with `with self._lock:` or document single-thread "
        "ownership with an `# owner: <thread>` comment on the line"
    )
    description = "unsynchronized attribute write in a threaded serve class"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_subpath("serve")

    def _spawns_threads(self, cls: ast.ClassDef) -> bool:
        for sub in ast.walk(cls):
            if isinstance(sub, ast.Call) and _dotted(sub.func) in (
                "threading.Thread", "Thread"
            ):
                return True
        return False

    def _owned_attrs(self, ctx: FileContext, cls: ast.ClassDef) -> set[str]:
        """Attributes whose introduction carries an `# owner:` note."""
        owned: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            if "owner:" not in ctx.line_text(node.lineno):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    owned.add(target.attr)
        return owned

    def _init_phase_methods(self, cls: ast.ClassDef) -> set[str]:
        """Private methods whose *only* callers are ``__init__`` or other
        init-phase helpers — they run before the thread is spawned."""
        methods = {
            f.name: f for f in cls.body if isinstance(f, ast.FunctionDef)
        }
        calls: dict[str, set[str]] = {name: set() for name in methods}
        call_funcs: set[int] = set()
        referenced: set[str] = set()
        for name, func in methods.items():
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
                    target = node.func
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in methods
                    ):
                        calls[name].add(target.attr)
        # A bound reference that is not the callee of a Call (thread
        # target, callback registration) can run at any time later.
        for func in methods.values():
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in methods
                    and id(node) not in call_funcs
                ):
                    referenced.add(node.attr)
        # closure of private helpers reachable from __init__
        phase: set[str] = set()
        stack = list(calls.get("__init__", ()))
        while stack:
            name = stack.pop()
            if name in phase:
                continue
            if not name.startswith("_") or name.startswith("__"):
                continue
            if name in referenced:
                continue
            phase.add(name)
            stack.extend(calls[name])
        # drop helpers also called from outside the init phase; removal
        # cascades until stable (a helper only kept alive by a removed
        # helper is itself post-init-callable)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name == "__init__" or name in phase:
                    continue
                for callee in callees:
                    if callee in phase:
                        phase.discard(callee)
                        changed = True
        return phase

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for cls in ctx.walk(ast.ClassDef):
            if not self._spawns_threads(cls):
                continue
            owned = self._owned_attrs(ctx, cls)
            init_phase = self._init_phase_methods(cls)
            for func in cls.body:
                if not isinstance(func, ast.FunctionDef) or func.name == "__init__":
                    continue
                if func.name in init_phase:
                    continue
                for node in ast.walk(func):
                    if not isinstance(node, (ast.Assign, ast.AugAssign)):
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            if _inside_with_lock(ctx, node):
                                continue
                            if target.attr in owned:
                                continue
                            if "owner:" in ctx.line_text(node.lineno):
                                continue
                            yield node, (
                                f"`self.{target.attr}` written in "
                                f"`{cls.name}.{func.name}` (a thread-spawning "
                                "class) without a lock or ownership note"
                            )


# ----------------------------------------------------------------------
# XL007 — deprecated pre-PR-4 detector signatures
# ----------------------------------------------------------------------
_DEPRECATED_RUN_CLASSES = {
    "NetScoutDetector",
    "FastNetMonDetector",
    "EntropyDetector",
}


@register
class DeprecatedDetectorApiRule(Rule):
    """The unified Detector protocol replaced the pre-PR-4 signatures.

    ``SomeDetector().run(trace)`` became ``detect(trace)``; the two-arg
    ``observe_minute(minute, flows)`` became ``step(minute, flows)`` (or
    the protocol form ``observe_minute(flows)``).  Both shims emit
    ``DeprecationWarning`` at runtime; this rule catches them at lint
    time before they reach a warnings-as-errors CI lane.
    """

    id = "XL007"
    name = "deprecated-detector-api"
    severity = Severity.WARNING
    fix_hint = (
        "use detect(trace) instead of run(trace); step(minute, flows) "
        "or observe_minute(flows) instead of observe_minute(minute, flows)"
    )
    description = "call to a deprecated pre-protocol detector signature"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for call in ctx.walk(ast.Call):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "observe_minute" and len(call.args) >= 2:
                yield call, (
                    "two-arg observe_minute(minute, flows) is the deprecated "
                    "pre-protocol form"
                )
            if func.attr == "run" and isinstance(func.value, ast.Call):
                ctor = _call_name(func.value)
                if ctor in _DEPRECATED_RUN_CLASSES:
                    yield call, (
                        f"`{ctor}().run(...)` is the deprecated pre-protocol "
                        "entry point"
                    )


# ----------------------------------------------------------------------
# XL008 — mutable default arguments
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """A mutable default is shared across *every* call of the function.

    In a long-lived serving process that is cross-request state leakage:
    one tick's alerts bleed into the next.  Default to ``None`` and
    materialize inside the body.
    """

    id = "XL008"
    name = "mutable-default"
    severity = Severity.ERROR
    fix_hint = "default to None and create the list/dict/set in the body"
    description = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for func in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
            for default in list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and _call_name(default) in ("list", "dict", "set", "defaultdict")
                )
                if mutable:
                    yield default, (
                        f"mutable default argument in `{func.name}` is shared "
                        "across calls"
                    )


# ----------------------------------------------------------------------
# XL009 — bare except
# ----------------------------------------------------------------------
@register
class BareExceptRule(Rule):
    """``except:`` catches SystemExit/KeyboardInterrupt too.

    A shard worker swallowing KeyboardInterrupt turns a clean shutdown
    into a hang; catch the narrowest exception that the recovery path
    actually handles (``Exception`` at the very widest).
    """

    id = "XL009"
    name = "bare-except"
    severity = Severity.WARNING
    fix_hint = "catch a specific exception type (Exception at the widest)"
    description = "bare except: clause"

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for handler in ctx.walk(ast.ExceptHandler):
            if handler.type is None:
                yield handler, "bare `except:` also catches KeyboardInterrupt"


# ----------------------------------------------------------------------
# XL010 — unordered iteration in alert-merge paths
# ----------------------------------------------------------------------
_ALERT_FUNC_RE = re.compile(r"alert|merge|poll|tick")


@register
class AlertOrderHazardRule(Rule):
    """Alert streams must be deterministic and shard-count-invariant.

    Functions on the alert path (``*alert*``, ``*merge*``, ``*poll*``,
    ``*tick*``) must not iterate raw ``dict.values()`` / ``.items()`` /
    ``.keys()`` or sets when producing output: insertion order varies
    with ingest interleaving (and set order with hash seeds), so the
    merged stream stops being byte-identical across shard counts.  Wrap
    the iterable in ``sorted(...)``.
    """

    id = "XL010"
    name = "alert-order-hazard"
    severity = Severity.WARNING
    fix_hint = "iterate sorted(d.items()) so the emitted order is canonical"
    description = "unordered dict/set iteration in an alert-merge path"

    def _is_sorted_wrapped(self, ctx: FileContext, call: ast.Call) -> bool:
        parent = ctx.parent(call)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ("sorted", "min", "max", "len", "sum")
        )

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for func in ctx.walk(ast.FunctionDef):
            if not _ALERT_FUNC_RE.search(func.name):
                continue
            iters: list[ast.AST] = []
            for sub in ast.walk(func):
                if isinstance(sub, ast.For):
                    iters.append(sub.iter)
                elif isinstance(sub, ast.comprehension):
                    iters.append(sub.iter)
            for it in iters:
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and it.func.attr in ("values", "items", "keys")
                    and not it.args
                    and not self._is_sorted_wrapped(ctx, it)
                ):
                    yield it, (
                        f"`{func.name}` iterates dict.{it.func.attr}() on an "
                        "alert path; emission order must be canonical"
                    )


# ----------------------------------------------------------------------
# XL011 — materialized traces belong to tests and explicit call sites
# ----------------------------------------------------------------------
@register
class MaterializedTraceRule(Rule):
    """Library code must stream traces, not materialize them.

    ``TraceGenerator.generate()`` is the deprecated shim over
    ``materialize()``, and a direct ``Trace(...)`` construction holds the
    full horizon's matrix in memory — both reintroduce O(horizon ×
    customers) state that the :class:`~repro.synth.TraceSource` streaming
    protocol exists to avoid.  New code should consume
    ``iter_minutes()``; the two constructors of the in-memory form
    (``materialize()`` itself and trace deserialization) are baselined
    with reasons, and tests are out of scope — differential suites *must*
    materialize to compare against the stream.
    """

    id = "XL011"
    name = "materialized-trace"
    severity = Severity.WARNING
    fix_hint = (
        "stream via iter_minutes() / as_trace_source(...); call "
        "materialize() only where holding the full Trace is the point, "
        "and baseline that site with a reason"
    )
    description = "deprecated generate() call or direct Trace(...) construction"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_subpath("tests")

    def check(self, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        for call in ctx.walk(ast.Call):
            name = _call_name(call)
            if name == "generate" and isinstance(call.func, ast.Attribute):
                yield call, (
                    "`.generate()` is the deprecated materializing shim; "
                    "stream iter_minutes() or call materialize() explicitly"
                )
            elif name == "Trace":
                yield call, (
                    "direct Trace(...) construction materializes the full "
                    "horizon; produce MinuteSlices via the streaming "
                    "generator instead"
                )


ALL_RULE_IDS = (
    "XL001", "XL002", "XL003", "XL004", "XL005",
    "XL006", "XL007", "XL008", "XL009", "XL010",
    "XL011",
)
