"""Baseline suppression for xatulint findings.

The baseline file (``lint-baseline.json`` at the repo root) is the
committed ledger of *intentional* rule violations: each entry names the
rule, the file, the offending line's stripped text, and — mandatory —
a human-written reason.  ``cli lint`` subtracts baselined findings from
its report, so the gate fails only on **new** findings; fixing a
baselined site and deleting its entry shrinks the ledger monotonically.

Fingerprints are line-*content* based (``(rule, path, stripped line)``),
not line-number based, so edits elsewhere in a file never churn the
baseline.  One entry suppresses every occurrence of that exact line in
that file — if that is too broad for a case, fix the code instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .framework import ANALYZER_VERSION, Finding

__all__ = ["BaselineEntry", "Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_PATH"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = "lint-baseline.json"
_PLACEHOLDER_REASON = "TODO: document why this is acceptable"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One suppressed finding pattern, with its written justification."""

    rule: str
    path: str
    line_text: str
    reason: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line_text,
            "reason": self.reason,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BaselineEntry":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line_text=str(payload["line"]),
            reason=str(payload.get("reason", _PLACEHOLDER_REASON)),
        )


class Baseline:
    """An ordered set of :class:`BaselineEntry` with matching helpers."""

    def __init__(
        self,
        entries: Iterable[BaselineEntry] = (),
        analyzer: str | None = None,
        rules: tuple[str, ...] = (),
    ) -> None:
        self.entries: list[BaselineEntry] = list(entries)
        self._index = {entry.fingerprint: entry for entry in self.entries}
        # provenance stamp: which analyzer generation and rule inventory
        # wrote this file (None/() for pre-stamp baselines)
        self.analyzer = analyzer
        self.rules = tuple(rules)

    def stamp_warnings(self, current_rules: Iterable[str]) -> list[str]:
        """Human-readable warnings when this baseline predates the
        current analyzer or rule inventory — a cue to re-audit entries."""
        warnings: list[str] = []
        if self.analyzer is None:
            warnings.append(
                "baseline has no analyzer stamp (written before "
                f"xatulint {ANALYZER_VERSION}); rewrite with "
                "--write-baseline to stamp it"
            )
            return warnings
        if self.analyzer != ANALYZER_VERSION:
            warnings.append(
                f"baseline was written by xatulint {self.analyzer}; "
                f"this build is {ANALYZER_VERSION} — re-audit and rewrite "
                "with --write-baseline"
            )
        current = tuple(sorted(current_rules))
        if self.rules and current != self.rules:
            added = sorted(set(current) - set(self.rules))
            removed = sorted(set(self.rules) - set(current))
            parts = []
            if added:
                parts.append(f"new rules since baseline: {', '.join(added)}")
            if removed:
                parts.append(f"rules gone since baseline: {', '.join(removed)}")
            warnings.append(
                "baseline rule inventory is outdated ("
                + "; ".join(parts)
                + ")"
            )
        return warnings

    def __len__(self) -> int:
        return len(self.entries)

    def match(self, finding: Finding) -> BaselineEntry | None:
        return self._index.get(finding.fingerprint)

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self._index

    def partition(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined)."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            (suppressed if self.suppresses(finding) else new).append(finding)
        return new, suppressed

    def unused_entries(self, findings: Iterable[Finding]) -> list[BaselineEntry]:
        """Entries matching no current finding — stale, delete them."""
        seen = {finding.fingerprint for finding in findings}
        return [e for e in self.entries if e.fingerprint not in seen]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has format version {version!r}; "
                f"this build reads version {BASELINE_VERSION}"
            )
        return cls(
            (BaselineEntry.from_json(e) for e in payload.get("entries", ())),
            analyzer=payload.get("analyzer"),
            rules=tuple(payload.get("rules", ())),
        )

    def save(self, path: str | Path, rules: Iterable[str] = ()) -> Path:
        path = Path(path)
        entries = sorted(
            self.entries, key=lambda e: (e.path, e.rule, e.line_text)
        )
        stamp_rules = tuple(sorted(rules)) or self.rules
        payload = {
            "version": BASELINE_VERSION,
            "analyzer": ANALYZER_VERSION,
            "rules": list(stamp_rules),
            "entries": [e.to_json() for e in entries],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        return path

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        previous: "Baseline | None" = None,
        reason: str = _PLACEHOLDER_REASON,
    ) -> "Baseline":
        """Build a baseline covering ``findings``, keeping the written
        reasons of any entry that still matches (``--write-baseline``)."""
        previous = previous or cls()
        seen: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in findings:
            if finding.fingerprint in seen:
                continue
            kept = previous._index.get(finding.fingerprint)
            seen[finding.fingerprint] = kept or BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                line_text=finding.line_text,
                reason=reason,
            )
        return cls(seen.values())
