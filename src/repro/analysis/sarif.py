"""SARIF 2.1.0 output for xatulint findings.

``cli lint --format sarif`` serialises both the shallow (XL) and deep
(XF) rule families into one SARIF run, so CI can upload the file as an
artifact and code-scanning UIs can render findings inline.  Only the
subset of the format that consumers actually read is emitted: the tool
driver with its rule inventory, one result per finding with a physical
location, and a stable partial fingerprint derived from the same
``(rule, path, line_text)`` triple the baseline matches on — so a
finding keeps its identity across line-number churn in SARIF exactly as
it does in the baseline ledger.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from .framework import ANALYZER_VERSION, Finding, Severity

__all__ = ["to_sarif", "render_sarif", "sarif_level"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def sarif_level(severity: str) -> str:
    return _LEVELS.get(severity, "warning")


def _fingerprint(finding: Finding) -> str:
    rule, path, line_text = finding.fingerprint
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{line_text}".encode()
    ).hexdigest()
    return digest[:32]


def to_sarif(
    findings: Iterable[Finding],
    rules: Iterable[tuple[str, str, str, str]],
    suppressed: Iterable[Finding] = (),
) -> dict:
    """Build the SARIF document as a plain dict.

    ``rules`` is ``(id, name, description, severity)`` for the full rule
    inventory of the run (shallow + deep when ``--deep``).  ``suppressed``
    findings (baseline-matched) are included with a suppression record so
    the artifact shows the whole ledger, not just new findings.
    """
    rule_descriptors = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": sarif_level(severity)},
        }
        for rule_id, name, description, severity in rules
    ]

    def result(finding: Finding, *, suppressed_entry: bool) -> dict:
        out = {
            "ruleId": finding.rule,
            "level": sarif_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(1, finding.col + 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "xatulint/v1": _fingerprint(finding),
            },
        }
        if suppressed_entry:
            out["suppressions"] = [
                {"kind": "external", "justification": "baselined"}
            ]
        return out

    results = [result(f, suppressed_entry=False) for f in findings]
    results += [result(f, suppressed_entry=True) for f in suppressed]

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "xatulint",
                        "version": ANALYZER_VERSION,
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rule_descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "./"}},
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding],
    rules: Iterable[tuple[str, str, str, str]],
    suppressed: Iterable[Finding] = (),
) -> str:
    return json.dumps(to_sarif(findings, rules, suppressed), indent=2)
