"""Pure-numpy survival-analysis helpers (inference-side).

Training-side math lives in :func:`repro.nn.losses.safe_survival_loss`;
these helpers are used at detection time, where no gradients are needed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hazards_to_survival_np",
    "survival_to_event_prob",
    "detection_time_from_survival",
]


def hazards_to_survival_np(hazards: np.ndarray) -> np.ndarray:
    """``S_t = exp(-cumsum(lambda))`` along the last axis.

    ``S_t`` is the probability that no attack has occurred by step ``t``
    (Pr(A >= t), §4.2).  Monotone non-increasing in ``t`` by construction.
    """
    hazards = np.asarray(hazards, dtype=np.float64)
    if (hazards < 0).any():
        raise ValueError("hazard rates must be non-negative")
    return np.exp(-np.cumsum(hazards, axis=-1))


def survival_to_event_prob(survival: np.ndarray) -> np.ndarray:
    """Per-step event probability ``Pr(A = t) = S_{t-1} - S_t``."""
    survival = np.asarray(survival, dtype=np.float64)
    prev = np.concatenate(
        [np.ones((*survival.shape[:-1], 1)), survival[..., :-1]], axis=-1
    )
    return prev - survival


def detection_time_from_survival(
    survival: np.ndarray, threshold: float
) -> int | None:
    """First step where ``S_t`` drops below ``threshold`` (Xatu's alert rule).

    Returns None if the survival curve never crosses the threshold within
    the window — no detection.
    """
    survival = np.asarray(survival, dtype=np.float64)
    if survival.ndim != 1:
        raise ValueError("expected a single survival curve")
    hits = np.nonzero(survival < threshold)[0]
    return int(hits[0]) if len(hits) else None
