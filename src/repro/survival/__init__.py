"""Survival analysis utilities and threshold calibration."""

from .analysis import (
    hazards_to_survival_np,
    survival_to_event_prob,
    detection_time_from_survival,
)
from .calibration import CalibrationResult, ThresholdCalibrator

__all__ = [
    "hazards_to_survival_np",
    "survival_to_event_prob",
    "detection_time_from_survival",
    "ThresholdCalibrator",
    "CalibrationResult",
]
