"""Validation-phase threshold calibration (§4.2 / §5.3).

After training, Xatu picks the alert threshold on ``S_t`` by searching the
validation data for the value that *maximizes mitigation effectiveness
while keeping the scrubbing overhead for 75% of customers below a given
bound*.  :class:`ThresholdCalibrator` implements that search generically:
the caller supplies a function that maps a candidate threshold to the
(median effectiveness, 75th-percentile overhead) pair measured on
validation, and the calibrator scans a threshold grid.

Lower thresholds mean *later* detection (S_t must fall further), hence less
overhead; higher thresholds detect earlier at more overhead.  The search
therefore walks candidate thresholds from high to low and keeps the best
feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["CalibrationResult", "ThresholdCalibrator"]


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Outcome of a calibration sweep."""

    threshold: float
    effectiveness: float
    overhead_p75: float
    overhead_bound: float
    feasible: bool
    evaluations: int


class ThresholdCalibrator:
    """Grid search over survival thresholds under an overhead bound.

    Parameters
    ----------
    thresholds:
        Candidate thresholds on ``S_t``; defaults to a log-ish grid over
        (0, 1).  The alert rule is "alert when S_t < threshold".
    overhead_percentile:
        Which customer-overhead percentile the bound constrains (75 in the
        paper: "keeping the scrubbing overhead for 75% of customers below a
        given bound").
    """

    def __init__(
        self,
        thresholds: Sequence[float] | None = None,
        overhead_percentile: float = 75.0,
        refine_steps: int = 0,
    ) -> None:
        """``refine_steps`` bisection iterations sharpen the grid winner:
        after the sweep, the interval between the best feasible threshold
        and its infeasible upper neighbour is bisected, keeping the most
        effective feasible midpoint."""
        if thresholds is None:
            thresholds = np.concatenate(
                [
                    np.geomspace(1e-4, 0.1, 8),
                    np.linspace(0.15, 0.95, 17),
                    np.array([0.99, 0.999]),
                ]
            )
        self.thresholds = np.sort(np.asarray(thresholds, dtype=np.float64))
        if ((self.thresholds <= 0) | (self.thresholds >= 1)).any():
            raise ValueError("thresholds must lie strictly inside (0, 1)")
        if refine_steps < 0:
            raise ValueError("refine_steps must be >= 0")
        self.overhead_percentile = overhead_percentile
        self.refine_steps = refine_steps

    def calibrate(
        self,
        evaluate: Callable[[float], tuple[float, np.ndarray]],
        overhead_bound: float,
    ) -> CalibrationResult:
        """Run the sweep.

        ``evaluate(threshold)`` must return ``(median_effectiveness,
        per_customer_overheads)`` measured on the validation split with that
        threshold.  Returns the feasible threshold with the best
        effectiveness; ties are broken toward the *lower* measured overhead
        (equally effective but cheaper — and less likely to blow the bound
        on test data).  When *no* threshold is feasible, returns the one
        with the smallest overhead percentile, flagged infeasible.
        """
        best: CalibrationResult | None = None
        fallback: CalibrationResult | None = None
        evaluations = 0
        for threshold in self.thresholds:
            effectiveness, overheads = evaluate(float(threshold))
            evaluations += 1
            p = (
                float(np.percentile(overheads, self.overhead_percentile))
                if len(overheads)
                else 0.0
            )
            feasible = p <= overhead_bound
            candidate = CalibrationResult(
                threshold=float(threshold),
                effectiveness=float(effectiveness),
                overhead_p75=p,
                overhead_bound=overhead_bound,
                feasible=feasible,
                evaluations=evaluations,
            )
            if feasible:
                if (
                    best is None
                    or candidate.effectiveness > best.effectiveness
                    or (
                        candidate.effectiveness == best.effectiveness
                        and candidate.overhead_p75 < best.overhead_p75
                    )
                ):
                    best = candidate
            if fallback is None or candidate.overhead_p75 < fallback.overhead_p75:
                fallback = candidate
        if best is not None:
            # Optional bisection refinement between the winner and its
            # nearest infeasible upper neighbour on the grid.
            if self.refine_steps:
                uppers = self.thresholds[self.thresholds > best.threshold]
                hi = float(uppers[0]) if len(uppers) else 1.0 - 1e-6
                lo = best.threshold
                for _ in range(self.refine_steps):
                    mid = 0.5 * (lo + hi)
                    effectiveness, overheads = evaluate(mid)
                    evaluations += 1
                    p = (
                        float(np.percentile(overheads, self.overhead_percentile))
                        if len(overheads)
                        else 0.0
                    )
                    if p <= overhead_bound:
                        lo = mid
                        if effectiveness >= best.effectiveness:
                            best = CalibrationResult(
                                mid, float(effectiveness), p,
                                overhead_bound, True, evaluations,
                            )
                    else:
                        hi = mid
            return CalibrationResult(
                best.threshold,
                best.effectiveness,
                best.overhead_p75,
                overhead_bound,
                True,
                evaluations,
            )
        assert fallback is not None
        return CalibrationResult(
            fallback.threshold,
            fallback.effectiveness,
            fallback.overhead_p75,
            overhead_bound,
            False,
            evaluations,
        )
