"""repro — a reproduction of Xatu (CoNEXT 2022).

Xatu boosts existing DDoS detection systems with auxiliary signals: attack
preparation activity (blocklisted / previously-attacking / spoofed sources)
and attack history (serial and correlated attacks), learned by a
multi-timescale LSTM trained with a survival-analysis (SAFE) loss.

Top-level subpackages
---------------------
``repro.nn``       numpy autograd + LSTM/Adam/SAFE loss (PyTorch substitute)
``repro.netflow``  flow records, sampling, routing, per-minute aggregation
``repro.synth``    the synthetic ISP world (traces, attacks, campaigns)
``repro.signals``  blocklists, history stores, clustering, 273 features
``repro.detect``   CDet simulators (NetScout / FastNetMon) and CUSUM
``repro.forest``   random-forest baseline (from-scratch CART/bagging)
``repro.scrub``    CScrub accounting (effectiveness / overhead / delay)
``repro.survival`` survival analysis and threshold calibration
``repro.core``     the Xatu model, trainer, online detector, pipeline
``repro.metrics``  summary statistics and ROC
``repro.eval``     per-figure/table experiment runners
``repro.obs``      metrics/tracing/profiling telemetry (off by default)
"""

__version__ = "1.0.0"

from . import (
    core,
    detect,
    forest,
    metrics,
    netflow,
    nn,
    obs,
    scrub,
    signals,
    survival,
    synth,
)

__all__ = [
    "nn", "netflow", "synth", "signals", "detect", "forest", "scrub",
    "survival", "core", "metrics", "obs", "__version__",
]
