"""repro — a reproduction of Xatu (CoNEXT 2022).

Xatu boosts existing DDoS detection systems with auxiliary signals: attack
preparation activity (blocklisted / previously-attacking / spoofed sources)
and attack history (serial and correlated attacks), learned by a
multi-timescale LSTM trained with a survival-analysis (SAFE) loss.

Top-level subpackages
---------------------
``repro.nn``       numpy autograd + LSTM/Adam/SAFE loss (PyTorch substitute)
``repro.netflow``  flow records, sampling, routing, per-minute aggregation
``repro.synth``    the synthetic ISP world (traces, attacks, campaigns)
``repro.signals``  blocklists, history stores, clustering, 273 features
``repro.detect``   CDet simulators (NetScout / FastNetMon) and CUSUM
``repro.forest``   random-forest baseline (from-scratch CART/bagging)
``repro.scrub``    CScrub accounting (effectiveness / overhead / delay)
``repro.survival`` survival analysis and threshold calibration
``repro.core``     the Xatu model, trainer, online detector, pipeline
``repro.metrics``  summary statistics and ROC
``repro.eval``     per-figure/table experiment runners
``repro.serve``    sharded, checkpointable online serving engine
``repro.obs``      metrics/tracing/profiling telemetry (off by default)

The stable public surface (documented in docs/API.md) is re-exported
here: the :class:`Detector` protocol plus the typed configs
:class:`OnlineConfig` and :class:`ServeConfig`.
"""

__version__ = "1.0.0"

from . import (
    core,
    detect,
    forest,
    metrics,
    netflow,
    nn,
    obs,
    scrub,
    serve,
    signals,
    survival,
    synth,
)
from .core.online import OnlineConfig, OnlineXatu
from .detect.api import Alert, Detector
from .serve.config import ServeConfig
from .serve.engine import ServeEngine

__all__ = [
    "nn", "netflow", "synth", "signals", "detect", "forest", "scrub",
    "survival", "core", "metrics", "serve", "obs",
    "Alert", "Detector", "OnlineConfig", "OnlineXatu",
    "ServeConfig", "ServeEngine",
    "__version__",
]
