"""The scrubbing center (CScrub) and its cost accounting.

CScrub receives diverted traffic matching an alert signature, filters it,
and charges by volume handled (§2.1).  For evaluation, what matters is the
*accounting* of Figure 2:

* **Area A** — anomalous traffic over the ground-truth attack window,
* **Area B** — the part of A that was actually diverted (effectiveness = B/A),
* **Area C** — extraneous traffic diverted outside the attack window
  (overhead = C/A, cumulative per customer across attacks, §2.4).

:class:`ScrubbingCenter` turns a set of diversion windows (from any
detector, or from Xatu's early alerts) plus ground truth into a
:class:`ScrubbingReport`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs import get_registry, obs_enabled, trace as obs_trace
from ..synth.scenario import AttackEvent, Trace

__all__ = ["DiversionWindow", "ScrubbingCenter", "ScrubbingReport"]


@dataclass(frozen=True, slots=True)
class DiversionWindow:
    """Traffic diversion for one customer over ``[start, end)`` minutes."""

    customer_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("diversion window is inverted")


@dataclass
class ScrubbingReport:
    """Per-event and per-customer accounting of a scrubbing run."""

    # per event_id: (anomalous A, diverted-anomalous B)
    event_area: dict[int, tuple[float, float]] = field(default_factory=dict)
    # per customer: cumulative extraneous bytes C and cumulative anomalous A
    customer_extraneous: dict[int, float] = field(default_factory=dict)
    customer_anomalous: dict[int, float] = field(default_factory=dict)
    # per event_id: detection delay in minutes (None = never diverted)
    detection_delay: dict[int, int | None] = field(default_factory=dict)

    def effectiveness(self, event_id: int) -> float:
        """B/A for one event (0 when A is 0)."""
        a, b = self.event_area.get(event_id, (0.0, 0.0))
        return b / a if a > 0 else 0.0

    def effectiveness_values(self) -> np.ndarray:
        return np.array([self.effectiveness(e) for e in sorted(self.event_area)])

    def overhead(self, customer_id: int) -> float:
        """Cumulative C/A for one customer (§2.4)."""
        a = self.customer_anomalous.get(customer_id, 0.0)
        c = self.customer_extraneous.get(customer_id, 0.0)
        return c / a if a > 0 else 0.0

    def overhead_values(self) -> np.ndarray:
        customers = sorted(
            set(self.customer_anomalous) | set(self.customer_extraneous)
        )
        return np.array([self.overhead(c) for c in customers])

    def delay_values(self, missed_value: int | None = None) -> np.ndarray:
        """Detection delays; missed events map to ``missed_value`` (or drop)."""
        values = []
        for event_id in sorted(self.detection_delay):
            delay = self.detection_delay[event_id]
            if delay is None:
                if missed_value is not None:
                    values.append(missed_value)
            else:
                values.append(delay)
        return np.array(values, dtype=np.float64)


class ScrubbingCenter:
    """Accounts diverted traffic against ground truth."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._series_cache: dict[int, np.ndarray] = {}

    def _customer_series(self, customer_id: int) -> np.ndarray:
        series = self._series_cache.get(customer_id)
        if series is None:
            series = self.trace.matrix.bytes_series(customer_id, 0, self.trace.horizon)
            self._series_cache[customer_id] = series
        return series

    def account(self, windows: list[DiversionWindow]) -> ScrubbingReport:
        """Compute the Figure 2 areas for a set of diversion windows.

        Anomalous traffic per minute comes from each event's ground-truth
        ``anomalous_bytes``; extraneous traffic is everything else diverted
        (benign traffic during diversion, and any diversion outside attack
        windows).
        """
        with obs_trace("scrub.account"):
            return self._account(windows)

    def _account(self, windows: list[DiversionWindow]) -> ScrubbingReport:
        trace = self.trace
        report = ScrubbingReport()
        horizon = trace.horizon

        # Diverted-minute masks per customer.
        diverted: dict[int, np.ndarray] = {}
        for window in windows:
            mask = diverted.get(window.customer_id)
            if mask is None:
                mask = np.zeros(horizon, dtype=bool)
                diverted[window.customer_id] = mask
            mask[max(0, window.start) : min(horizon, window.end)] = True

        # Anomalous-byte series per customer (sum over its events).
        anomalous: dict[int, np.ndarray] = defaultdict(lambda: np.zeros(horizon))
        for event in trace.events:
            span = min(event.end, horizon) - event.onset
            if span > 0:
                anomalous[event.customer_id][event.onset : event.onset + span] += (
                    event.anomalous_bytes[:span]
                )

        # Per-event A and B; per-event delay.
        for event in trace.events:
            span = min(event.end, horizon) - event.onset
            series = event.anomalous_bytes[:span]
            area_a = float(series.sum())
            mask = diverted.get(event.customer_id)
            if mask is None:
                area_b = 0.0
                delay = None
            else:
                window_mask = mask[event.onset : event.onset + span]
                area_b = float(series[window_mask].sum())
                hit = np.nonzero(mask[: min(event.end, horizon)])[0]
                # Delay = first diverted minute at/after which the event is
                # covered, relative to onset; diversion already active at
                # onset counts as delay <= 0.
                covering = hit[hit < event.end] if len(hit) else hit
                covering = covering[covering >= 0]
                relevant = covering[covering >= event.onset]
                if mask[event.onset]:
                    # Find when this continuous diversion started.
                    start = event.onset
                    while start > 0 and mask[start - 1]:
                        start -= 1
                    delay = start - event.onset
                elif len(relevant):
                    delay = int(relevant[0]) - event.onset
                else:
                    delay = None
            report.event_area[event.event_id] = (area_a, area_b)
            report.detection_delay[event.event_id] = delay
            report.customer_anomalous[event.customer_id] = (
                report.customer_anomalous.get(event.customer_id, 0.0) + area_a
            )

        # Per-customer extraneous bytes C: diverted total minus diverted
        # anomalous.
        for customer_id, mask in diverted.items():
            total_diverted = float(self._customer_series(customer_id)[mask].sum())
            anomalous_diverted = float(anomalous[customer_id][mask].sum())
            report.customer_extraneous[customer_id] = max(
                0.0, total_diverted - anomalous_diverted
            )
            report.customer_anomalous.setdefault(customer_id, 0.0)

        if obs_enabled():
            registry = get_registry()
            registry.counter(
                "scrub.diversion_windows", "diversion windows accounted"
            ).inc(len(windows))
            registry.counter(
                "scrub.diverted_minutes", "customer-minutes under diversion"
            ).inc(int(sum(int(m.sum()) for m in diverted.values())))
            registry.counter(
                "scrub.anomalous_bytes_diverted", "area B: anomalous bytes scrubbed"
            ).inc(int(sum(b for _, b in report.event_area.values())))
            registry.counter(
                "scrub.extraneous_bytes", "area C: extraneous bytes diverted"
            ).inc(int(sum(report.customer_extraneous.values())))
        return report
