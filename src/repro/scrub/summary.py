"""Report summarization: turn a ScrubbingReport into headline statistics.

Shared by the CLI and the evaluation harness so that "median effectiveness
/ overhead p75 / median delay over a minute range" is computed exactly one
way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.core import PercentileSummary, percentile_summary
from ..synth.scenario import Trace
from .center import ScrubbingReport

__all__ = ["ReportSummary", "summarize_report"]


@dataclass(frozen=True, slots=True)
class ReportSummary:
    """The paper's three metrics over one evaluation range."""

    effectiveness: PercentileSummary
    overhead: PercentileSummary
    delay: PercentileSummary
    n_events: int
    n_detected: int

    @property
    def detection_rate(self) -> float:
        return self.n_detected / self.n_events if self.n_events else 0.0


def summarize_report(
    trace: Trace,
    report: ScrubbingReport,
    minute_range: tuple[int, int] | None = None,
    missed_delay: int = 30,
) -> ReportSummary:
    """Summarize a scrubbing report over ``minute_range`` (default: all).

    Effectiveness and delay are per-event over events whose onset falls in
    the range (missed events contribute ``missed_delay``); overhead is the
    cumulative per-customer metric (25/75 percentiles, §6 convention).
    """
    lo, hi = minute_range if minute_range is not None else (0, trace.horizon)
    events = [e for e in trace.events if lo <= e.onset < hi]
    eff = np.array([report.effectiveness(e.event_id) for e in events])
    delays = []
    n_detected = 0
    for event in events:
        delay = report.detection_delay.get(event.event_id)
        if delay is None:
            delays.append(missed_delay)
        else:
            delays.append(delay)
            n_detected += 1
    return ReportSummary(
        effectiveness=percentile_summary(eff, 10, 90),
        overhead=percentile_summary(report.overhead_values(), 25, 75),
        delay=percentile_summary(np.array(delays, dtype=np.float64), 10, 90),
        n_events=len(events),
        n_detected=n_detected,
    )
