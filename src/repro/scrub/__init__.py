"""CScrub: the scrubbing-center cost model."""

from .center import DiversionWindow, ScrubbingCenter, ScrubbingReport
from .summary import ReportSummary, summarize_report

__all__ = [
    "ScrubbingCenter", "DiversionWindow", "ScrubbingReport",
    "ReportSummary", "summarize_report",
]
