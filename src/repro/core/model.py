"""The Xatu model: multi-timescale LSTM with a survival (hazard) head.

Figure 6 of the paper: the 273-feature minute series is pooled at three
granularities (1 / 10 / 60 minutes), each pooled series feeds its own LSTM
(LSTM_short / LSTM_med / LSTM_long), per-scale dense layers project the
hidden states, the projections are combined by a final dense layer, and the
output is the instantaneous attack probability (hazard rate) ``lambda_t``
for each minute of the detection window.  The survival head converts the
hazards to ``S_t`` (§4.2).

Each timescale also has its own *span*: LSTM_short sees recent hours at
1-minute resolution while LSTM_long sees the whole 10-day history at
1-hour resolution (Figure 11 visualizes exactly this: a 4-hour short view
and a 40-hour medium view).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import LSTM, AvgPool1D, Dense, MaxPool1D, Module, Tensor
from ..survival.analysis import hazards_to_survival_np

__all__ = ["TimescaleSpec", "XatuModelConfig", "XatuModel"]


@dataclass(frozen=True, slots=True)
class TimescaleSpec:
    """One timescale: pooling window (minutes/step) and span (steps).

    The LSTM for this scale consumes the most recent ``window * span``
    minutes, pooled into ``span`` steps of ``window`` minutes each.
    """

    name: str
    window: int
    span: int

    def __post_init__(self) -> None:
        if self.window < 1 or self.span < 1:
            raise ValueError("window and span must be >= 1")

    @property
    def minutes(self) -> int:
        return self.window * self.span


@dataclass
class XatuModelConfig:
    """Architecture hyper-parameters (paper defaults in §5.3 / Appendix H).

    The paper uses hidden size 200 and timescales (1, 10, 60); the
    reproduction defaults are laptop-scale but fully configurable — the
    Figure 18 sensitivity benches sweep them.
    """

    n_features: int = 273
    hidden_size: int = 32
    dense_size: int = 16
    detect_window: int = 30  # N in §5.3
    timescales: tuple[TimescaleSpec, ...] = (
        TimescaleSpec("short", 1, 120),
        TimescaleSpec("medium", 10, 72),
        TimescaleSpec("long", 60, 48),
    )
    pooling: str = "avg"  # "avg" (paper default) or "max" — ablation knob
    seed: int = 0

    @property
    def lookback_minutes(self) -> int:
        """Input window length required by the longest timescale."""
        return max(ts.minutes for ts in self.timescales)

    def validate(self) -> None:
        if self.detect_window < 1:
            raise ValueError("detect_window must be >= 1")
        if not self.timescales:
            raise ValueError("at least one timescale is required")
        shortest = min(ts.window for ts in self.timescales)
        if self.detect_window > self.timescales[0].span * self.timescales[0].window:
            raise ValueError("detect_window exceeds the first timescale's span")
        if shortest != self.timescales[0].window:
            raise ValueError(
                "the first timescale must be the finest (it drives the "
                "per-minute hazard output)"
            )
        if self.pooling not in ("avg", "max"):
            raise ValueError("pooling must be 'avg' or 'max'")


class XatuModel(Module):
    """Multi-timescale LSTM → dense combine → hazard rates.

    ``forward`` takes ``(batch, lookback_minutes, n_features)`` and returns
    hazards of shape ``(batch, detect_window)`` for the *last*
    ``detect_window`` minutes of the input.
    """

    def __init__(self, config: XatuModelConfig | None = None) -> None:
        cfg = config or XatuModelConfig()
        cfg.validate()
        self.config = cfg
        rng = np.random.default_rng(cfg.seed)
        pool_cls = AvgPool1D if cfg.pooling == "avg" else MaxPool1D
        self.pools = [pool_cls(ts.window) for ts in cfg.timescales]
        self.lstms = [
            LSTM(cfg.n_features, cfg.hidden_size, rng=rng) for _ts in cfg.timescales
        ]
        self.scale_dense = [
            Dense(cfg.hidden_size, cfg.dense_size, activation="tanh", rng=rng)
            for _ts in cfg.timescales
        ]
        self.combine = Dense(
            cfg.dense_size * len(cfg.timescales), 1, activation="softplus", rng=rng
        )
        # Start the hazard head cold: softplus(-4) ~ 0.018/minute, so the
        # untrained model's survival stays near 1 instead of alerting on
        # everything (softplus(0) ~ 0.69/min would drive S_30 to ~1e-9).
        # Rebind rather than write in place: the tape may already hold a
        # reference to the buffer, and rebinding keeps XL001 happy.
        self.combine.bias.data = np.full_like(self.combine.bias.data, -4.0)
        self._indices_cache: dict[int, list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _scale_indices(self, total_minutes: int) -> list[np.ndarray]:
        """Pooled-step index for each detection-window minute, per scale.

        Pure function of ``total_minutes`` and the (frozen) timescale specs,
        so results are memoized — the detector's sliding-window loop calls
        this once per scored block.
        """
        cached = self._indices_cache.get(total_minutes)
        if cached is not None:
            return cached
        cfg = self.config
        out = []
        detect_minutes = np.arange(
            total_minutes - cfg.detect_window, total_minutes
        )
        for ts in cfg.timescales:
            scale_start = total_minutes - ts.minutes  # first minute this scale sees
            idx = (detect_minutes - scale_start) // ts.window
            idx = np.clip(idx, 0, ts.span - 1)
            out.append(idx.astype(np.int64))
        self._indices_cache[total_minutes] = out
        return out

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        batch, total_minutes, n_features = x.shape
        if n_features != cfg.n_features:
            raise ValueError(
                f"expected {cfg.n_features} features, got {n_features}"
            )
        if total_minutes < cfg.lookback_minutes:
            raise ValueError(
                f"input window of {total_minutes} min is shorter than the "
                f"required lookback of {cfg.lookback_minutes} min"
            )

        indices = self._scale_indices(total_minutes)
        projections: list[Tensor] = []
        for ts, pool, lstm, dense, idx in zip(
            cfg.timescales, self.pools, self.lstms, self.scale_dense, indices
        ):
            recent = x[:, total_minutes - ts.minutes :, :]
            pooled = pool(recent)  # (batch, span, features)
            hidden, _state = lstm(pooled)  # (batch, span, hidden)
            selected = hidden[:, idx, :]  # (batch, detect_window, hidden)
            projections.append(dense(selected))
        combined = Tensor.concat(projections, axis=-1)
        hazards = self.combine(combined)  # (batch, detect_window, 1)
        return hazards.reshape(batch, cfg.detect_window)

    # ------------------------------------------------------------------
    def hazards_np(self, x: np.ndarray, dtype=None) -> np.ndarray:
        """Inference: hazards as a plain array (no autograd tape).

        Runs the graph-free fast lane: the module tree is flipped to eval
        mode for the call, no closures are allocated, and ``dtype`` (e.g.
        ``np.float32``) optionally activates the reduced-precision policy
        for the fused kernels.  Default float64 output is byte-identical to
        the training-mode forward.
        """
        from ..nn import inference_dtype, no_grad

        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                if dtype is not None:
                    with inference_dtype(dtype):
                        return self.forward(Tensor(x)).numpy()
                return self.forward(Tensor(x)).numpy()
        finally:
            if was_training:
                self.train(True)

    def survival_np(self, x: np.ndarray, dtype=None) -> np.ndarray:
        """Inference: the survival curve ``S_t`` over the detection window."""
        return hazards_to_survival_np(self.hazards_np(x, dtype=dtype))

    # ------------------------------------------------------------------
    # batched cross-customer inference lane
    # ------------------------------------------------------------------
    def hazards_np_batched(self, x: np.ndarray, dtype=None) -> np.ndarray:
        """Inference over a stack of independent windows, per-item bitwise
        identical to :meth:`hazards_np` on each window alone.

        ``hazards_np(x)`` with ``batch > 1`` is *not* row-stable: the LSTM
        kernels flatten ``(batch, time, features)`` into one 2-D GEMM whose
        BLAS blocking (and therefore low-order bits) changes with the row
        count.  This entry point instead mirrors ``forward`` op for op with
        stacked 3-D matmuls whose per-item 2-D shapes match the
        ``batch == 1`` call exactly, so

            ``hazards_np_batched(x)[i] == hazards_np(x[i:i+1])[0]``

        holds bit for bit, in float64 and under the float32 ``dtype``
        policy alike.  This is what lets the serving layer score every
        customer on a shard in one pass while keeping alert streams and
        checkpoints byte-identical to the per-customer reference lane.
        """
        from ..nn import inference_dtype, no_grad

        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                if dtype is not None:
                    with inference_dtype(dtype):
                        return self._hazards_batched(x)
                return self._hazards_batched(x)
        finally:
            if was_training:
                self.train(True)

    def _hazards_batched(self, x: np.ndarray) -> np.ndarray:
        return self._hazards_staged(self._stage_pooled(x))

    def stage_pooled(self, x: np.ndarray, dtype=None) -> list[np.ndarray]:
        """Feature-staging half of the batched lane: validate, cast to the
        inference dtype, and pool a stack of windows into the per-timescale
        sequences :meth:`hazards_np_staged` consumes.

        Splitting staging from the decision pass mirrors the serving
        pipeline's feature-extractor → batch-inferencer structure: staging
        is per-minute data movement; the staged pass is the per-customer
        alert-decision cost that batching amortizes.  Composition is exact:
        ``hazards_np_staged(stage_pooled(x, d), d)`` equals
        ``hazards_np_batched(x, d)`` bit for bit.
        """
        from ..nn import inference_dtype, no_grad

        with no_grad():
            if dtype is not None:
                with inference_dtype(dtype):
                    return self._stage_pooled(x)
            return self._stage_pooled(x)

    def hazards_np_staged(self, staged: list[np.ndarray], dtype=None) -> np.ndarray:
        """Decision half of the batched lane: one fused LSTM + survival-head
        pass over pre-staged pooled sequences (see :meth:`stage_pooled`).
        """
        from ..nn import inference_dtype, no_grad

        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                if dtype is not None:
                    with inference_dtype(dtype):
                        return self._hazards_staged(staged)
                return self._hazards_staged(staged)
        finally:
            if was_training:
                self.train(True)

    def _stage_pooled(self, x: np.ndarray) -> list[np.ndarray]:
        from ..nn.autograd import resolve_inference_dtype
        from ..nn.fused import pool_infer

        cfg = self.config
        dtype = resolve_inference_dtype()
        X = np.asarray(x, dtype=np.float64 if dtype is None else dtype)
        if X.ndim != 3:
            raise ValueError(
                f"expected (batch, minutes, features) input, got shape {X.shape}"
            )
        _batch, total_minutes, n_features = X.shape
        if n_features != cfg.n_features:
            raise ValueError(
                f"expected {cfg.n_features} features, got {n_features}"
            )
        if total_minutes < cfg.lookback_minutes:
            raise ValueError(
                f"input window of {total_minutes} min is shorter than the "
                f"required lookback of {cfg.lookback_minutes} min"
            )
        return [
            pool_infer(X[:, total_minutes - ts.minutes :, :], ts.window, cfg.pooling)
            for ts in cfg.timescales
        ]

    def _hazards_staged(self, staged: list[np.ndarray]) -> np.ndarray:
        from ..nn.fused import dense_infer, lstm_infer_batched

        cfg = self.config
        if len(staged) != len(cfg.timescales):
            raise ValueError(
                f"expected {len(cfg.timescales)} staged sequences, got {len(staged)}"
            )
        # Index selection matches forward(): positions are computed from the
        # original (unpooled) window length, which staging preserves.
        total_minutes = cfg.lookback_minutes
        batch = staged[0].shape[0]
        indices = self._scale_indices(total_minutes)
        projections: list[np.ndarray] = []
        for pooled, lstm, dense, idx in zip(
            staged, self.lstms, self.scale_dense, indices
        ):
            hidden = lstm_infer_batched(
                pooled, lstm.w_x.data, lstm.w_h.data, lstm.bias.data
            )
            selected = hidden[:, idx, :]
            projections.append(
                dense_infer(
                    selected, dense.weight.data, dense.bias.data, dense.activation
                )
            )
        combined = np.concatenate(projections, axis=-1)
        hazards = dense_infer(
            combined,
            self.combine.weight.data,
            self.combine.bias.data,
            self.combine.activation,
        )
        return hazards.reshape(batch, cfg.detect_window)
