"""Online detection: sliding survival windows over the test period.

At each minute the deployed Xatu computes the hazard ``lambda_t`` and the
survival probability over the current detection window; an alert fires when
``S_t`` drops below the calibrated threshold.  Operation is auto-regressive
(§5.3): Xatu's own alerts feed the A2/A4/A5 stores going forward, making
the test phase independent of the incumbent CDet.

For evaluation efficiency the detector runs one forward pass per
``detect_window`` minutes per customer (each pass yields hazards for all
minutes of the window), then applies the rolling-sum survival rule per
minute — numerically identical to a per-minute evaluation of ``S_t`` over
the trailing window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..scrub.center import DiversionWindow
from ..signals.features import FeatureExtractor, FeatureScaler
from ..signals.history import AlertRecord
from ..synth.scenario import Trace
from .model import XatuModel

__all__ = ["XatuAlert", "DetectorConfig", "XatuDetector", "match_event", "windows_from_hazards"]


def match_event(trace: Trace, customer_id: int, minute: int, window: int) -> int:
    """Ground-truth event matching an alert minute (-1 = none).

    An alert matches an event if it fires between (onset - window) and the
    event end — early detections shortly before onset count as hits on that
    event (exactly the "detect prior to the attack" behaviour the paper's
    survival formulation rewards).
    """
    best = -1
    best_onset = -1
    for event in trace.events:
        if event.customer_id != customer_id:
            continue
        if event.onset - window <= minute < event.end:
            if event.onset > best_onset:
                best = event.event_id
                best_onset = event.onset
    return best


def windows_from_hazards(
    trace: Trace,
    hazard_series: dict[int, np.ndarray],
    minute_range: tuple[int, int],
    detect_window: int,
    threshold: float,
    max_fp_diversion: int = 10,
) -> list[DiversionWindow]:
    """Apply the survival alert rule to stored hazards → diversion windows.

    The rule is the paper's: alert when the rolling survival over the
    trailing ``detect_window`` minutes drops below ``threshold``; a matched
    alert diverts until the event's mitigation end, an unmatched one for
    ``max_fp_diversion`` minutes.  This is the single shared implementation
    behind the pipeline, the headline sweep, and the ablation harness, so a
    threshold re-sweep never re-runs the expensive model forwards.
    """
    lo, hi = minute_range
    result: list[DiversionWindow] = []
    for cid, hazards in hazard_series.items():
        csum = np.concatenate([[0.0], np.cumsum(hazards)])
        minute = lo
        while minute < hi:
            i = minute - lo
            lo_idx = max(0, i + 1 - detect_window)
            s_t = float(np.exp(-(csum[i + 1] - csum[lo_idx])))
            if s_t < threshold:
                event_id = match_event(trace, cid, minute, detect_window)
                if event_id >= 0:
                    end = min(hi, max(trace.events[event_id].end, minute + 1))
                else:
                    end = min(hi, minute + max_fp_diversion)
                result.append(DiversionWindow(cid, minute, end))
                minute = end
            else:
                minute += 1
    return result


@dataclass(frozen=True, slots=True)
class XatuAlert:
    """One early-detection alert emitted by Xatu."""

    customer_id: int
    minute: int
    survival: float
    event_id: int  # matched ground-truth event, -1 for false positives


@dataclass
class DetectorConfig:
    """Online-operation knobs.

    ``thresholds_by_key`` overrides ``threshold`` per model key when the
    detector serves per-attack-type models (§5.3: each typed model gets its
    own validation-calibrated threshold); keys missing from the mapping
    fall back to ``threshold``.
    """

    threshold: float = 0.5
    max_fp_diversion: int = 10  # minutes a false-positive diversion lasts
    autoregressive: bool = True
    thresholds_by_key: dict[str, float] | None = None


@dataclass
class DetectionOutput:
    """Everything the evaluation needs from one detector run."""

    alerts: list[XatuAlert] = field(default_factory=list)
    windows: list[DiversionWindow] = field(default_factory=list)
    # per (customer, minute): hazard — used for ROC-style sweeps.
    hazard_series: dict[int, np.ndarray] = field(default_factory=dict)

    def survival_series(self, customer_id: int, detect_window: int) -> np.ndarray:
        """Rolling ``S_t`` over the trailing window, from stored hazards."""
        hazards = self.hazard_series[customer_id]
        csum = np.concatenate([[0.0], np.cumsum(hazards)])
        rolling = csum[detect_window:] - csum[:-detect_window]
        head = csum[1:detect_window]  # partial windows at the start
        return np.exp(-np.concatenate([head, rolling]))


class XatuDetector:
    """Runs trained models over a minute range of a trace."""

    def __init__(
        self,
        trace: Trace,
        extractor: FeatureExtractor,
        model: XatuModel | dict[str, XatuModel],
        scaler: FeatureScaler | dict[str, FeatureScaler],
        config: DetectorConfig | None = None,
    ) -> None:
        self.trace = trace
        self.extractor = extractor
        self.config = config or DetectorConfig()
        if isinstance(model, dict) != isinstance(scaler, dict):
            raise ValueError("model and scaler must both be single or per-type")
        self._models = model
        self._scalers = scaler

    # ------------------------------------------------------------------
    def serving_key(self, customer_id: int) -> str:
        """The model key serving a customer (its most recent attack type).

        With per-type models the deployed system runs all of them in
        parallel; for evaluation we use the model of the customer's most
        recent attack type, falling back to the pooled ``_default``.
        """
        if not isinstance(self._models, dict):
            return "_single"
        last_type: str | None = None
        for event in self.trace.events:
            if event.customer_id == customer_id:
                last_type = event.attack_type.value
        return last_type if last_type in self._models else "_default"

    def _model_for(self, customer_id: int) -> tuple[XatuModel, FeatureScaler]:
        """Pick the (model, scaler) pair for a customer."""
        if not isinstance(self._models, dict):
            return self._models, self._scalers  # type: ignore[return-value]
        key = self.serving_key(customer_id)
        return self._models[key], self._scalers[key]

    def threshold_for(self, customer_id: int) -> float:
        """The alert threshold applying to a customer's serving model."""
        overrides = self.config.thresholds_by_key
        if overrides:
            key = self.serving_key(customer_id)
            if key in overrides:
                return overrides[key]
        return self.config.threshold

    def _match_event(self, customer_id: int, minute: int) -> int:
        """Ground-truth event matching an alert minute (-1 = none)."""
        return match_event(self.trace, customer_id, minute, self._detect_window())

    def _detect_window(self) -> int:
        model = (
            self._models["_default"]
            if isinstance(self._models, dict)
            else self._models
        )
        return model.config.detect_window

    # ------------------------------------------------------------------
    def run(
        self,
        minute_range: tuple[int, int],
        customers: list[int] | None = None,
    ) -> DetectionOutput:
        """Detect over ``[lo, hi)`` for the given customers (default: all).

        Processing is chronological in blocks of ``detect_window`` minutes
        across all customers, so autoregressive alert feedback from one
        customer is visible to others' A5 features within the same run.
        """
        lo, hi = minute_range
        cfg = self.config
        window = self._detect_window()
        if customers is None:
            customers = [c.customer_id for c in self.trace.world.customers]

        hazard_series = {cid: np.zeros(hi - lo) for cid in customers}
        alerts: list[XatuAlert] = []
        windows: list[DiversionWindow] = []
        # Per customer: minute until which diversion is already active.
        diverted_until: dict[int, int] = {cid: -1 for cid in customers}

        for block_start in range(lo, hi, window):
            block_end = min(block_start + window, hi)
            for cid in customers:
                model, scaler = self._model_for(cid)
                feat_end = block_start + window  # model emits last `window` steps
                feat_start = feat_end - model.config.lookback_minutes
                if feat_start < 0:
                    continue
                raw = self.extractor.window(cid, feat_start, feat_end)
                x = scaler.transform(raw)[None, :, :]
                hazards = model.hazards_np(x)[0]
                n_keep = block_end - block_start
                hazard_series[cid][block_start - lo : block_end - lo] = hazards[:n_keep]

            # Alert pass for this block (after all hazards are in).
            for cid in customers:
                series = hazard_series[cid][: block_end - lo]
                csum = np.concatenate([[0.0], np.cumsum(series)])
                customer_threshold = self.threshold_for(cid)
                for minute in range(block_start, block_end):
                    i = minute - lo
                    if minute <= diverted_until[cid]:
                        continue
                    lo_idx = max(0, i + 1 - window)
                    s_t = float(np.exp(-(csum[i + 1] - csum[lo_idx])))
                    if s_t >= customer_threshold:
                        continue
                    event_id = self._match_event(cid, minute)
                    alerts.append(XatuAlert(cid, minute, s_t, event_id))
                    if event_id >= 0:
                        event = self.trace.events[event_id]
                        end = min(hi, event.end)
                        # Diversion runs until CScrub's mitigation end.
                        end = max(end, minute + 1)
                    else:
                        end = min(hi, minute + cfg.max_fp_diversion)
                    windows.append(DiversionWindow(cid, minute, end))
                    diverted_until[cid] = end - 1
                    if cfg.autoregressive and event_id >= 0:
                        event = self.trace.events[event_id]
                        self.extractor.add_alert(
                            AlertRecord(
                                customer_id=cid,
                                attack_type=event.attack_type,
                                detect_minute=minute,
                                end_minute=end,
                                peak_bytes=event.peak_bytes,
                                attackers=frozenset(event.attackers),
                            )
                        )
        output = DetectionOutput(alerts=alerts, windows=windows, hazard_series=hazard_series)
        return output
