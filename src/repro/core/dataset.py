"""Training/validation sample construction (§5.3).

"To form the training data, we select an equal number of attack and
non-attack time series based on CDet alerts" — each sample is a feature
window ending at (or just after) a CDet detection (attack series, label
``c=1`` at the detection step) or at a quiet minute (non-attack series,
``c=0``).  The survival label time ``t_i`` indexes into the model's
detection window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..detect.detectors import DetectionAlert
from ..signals.features import FeatureExtractor, FeatureScaler
from ..synth.scenario import Trace
from .model import XatuModelConfig

__all__ = ["SurvivalSample", "SampleSet", "DatasetBuilder"]


@dataclass
class SurvivalSample:
    """One (features, c, t) series for the SAFE loss."""

    features: np.ndarray  # (lookback, 273), already scaled if from SampleSet
    is_attack: bool
    label_time: int  # index within the detection window
    customer_id: int
    end_minute: int  # trace minute of the window's last step
    event_id: int  # ground-truth event (-1 for non-attack samples)
    attack_type: str | None = None


@dataclass
class SampleSet:
    """A batchable set of samples plus the scaler that normalized them."""

    samples: list[SurvivalSample]
    scaler: FeatureScaler

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = np.stack([s.features for s in self.samples])
        c = np.array([s.is_attack for s in self.samples], dtype=np.float64)
        t = np.array([s.label_time for s in self.samples], dtype=np.int64)
        return x, c, t

    def __len__(self) -> int:
        return len(self.samples)


class DatasetBuilder:
    """Builds balanced survival datasets from a trace + CDet alert stream."""

    def __init__(
        self,
        trace: Trace,
        extractor: FeatureExtractor,
        model_config: XatuModelConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.trace = trace
        self.extractor = extractor
        self.model_config = model_config
        self._rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------
    def _attack_sample(self, alert: DetectionAlert) -> SurvivalSample | None:
        """Window ending at the alert's detection minute; label = last step."""
        cfg = self.model_config
        lookback = cfg.lookback_minutes
        end = alert.detect_minute + 1
        start = end - lookback
        if start < 0 or end > self.trace.horizon:
            return None
        features = self.extractor.window(alert.customer_id, start, end)
        event = (
            self.trace.events[alert.event_id] if alert.event_id >= 0 else None
        )
        return SurvivalSample(
            features=features,
            is_attack=True,
            label_time=cfg.detect_window - 1,
            customer_id=alert.customer_id,
            end_minute=end - 1,
            event_id=alert.event_id,
            attack_type=event.attack_type.value if event else None,
        )

    def _quiet_minutes(self, customer_id: int, margin: int) -> np.ndarray:
        """Minutes with no attack on ``customer_id`` within ``margin``."""
        mask = np.ones(self.trace.horizon, dtype=bool)
        for event in self.trace.events:
            if event.customer_id != customer_id:
                continue
            lo = max(0, event.onset - margin)
            hi = min(self.trace.horizon, event.end + margin)
            mask[lo:hi] = False
        lookback = self.model_config.lookback_minutes
        mask[:lookback] = False
        return np.nonzero(mask)[0]

    def _non_attack_sample(
        self, customer_id: int, end_minute: int
    ) -> SurvivalSample:
        cfg = self.model_config
        start = end_minute + 1 - cfg.lookback_minutes
        features = self.extractor.window(customer_id, start, end_minute + 1)
        return SurvivalSample(
            features=features,
            is_attack=False,
            label_time=cfg.detect_window - 1,
            customer_id=customer_id,
            end_minute=end_minute,
            event_id=-1,
        )

    # ------------------------------------------------------------------
    def build(
        self,
        alerts: list[DetectionAlert],
        minute_range: tuple[int, int],
        attack_types: set[str] | None = None,
        scaler: FeatureScaler | None = None,
        negatives_per_positive: float = 1.0,
        quiet_margin: int = 30,
    ) -> SampleSet:
        """Assemble a balanced sample set over ``minute_range``.

        ``attack_types`` restricts positives (per-type models, §5.3); pass
        a pre-fit ``scaler`` to reuse training statistics on validation
        data.
        """
        lo, hi = minute_range
        positives: list[SurvivalSample] = []
        for alert in alerts:
            if not lo <= alert.detect_minute < hi:
                continue
            if alert.event_id < 0:
                continue
            event = self.trace.events[alert.event_id]
            if attack_types is not None and event.attack_type.value not in attack_types:
                continue
            sample = self._attack_sample(alert)
            if sample is not None:
                positives.append(sample)

        negatives: list[SurvivalSample] = []
        n_neg = max(1, int(round(negatives_per_positive * max(1, len(positives)))))
        customers = [c.customer_id for c in self.trace.world.customers]
        attempts = 0
        while len(negatives) < n_neg and attempts < 20 * n_neg:
            attempts += 1
            cid = int(self._rng.choice(customers))
            quiet = self._quiet_minutes(cid, margin=quiet_margin)
            quiet = quiet[(quiet >= lo) & (quiet < hi)]
            if len(quiet) == 0:
                continue
            minute = int(self._rng.choice(quiet))
            negatives.append(self._non_attack_sample(cid, minute))

        samples = positives + negatives
        if not samples:
            raise ValueError(
                "no samples in range; check the alert stream and split bounds"
            )
        if scaler is None:
            scaler = FeatureScaler().fit([s.features for s in samples])
        for sample in samples:
            sample.features = scaler.transform(sample.features)
        self._rng.shuffle(samples)
        return SampleSet(samples=samples, scaler=scaler)
