"""End-to-end pipeline: trace → CDet labels → train → calibrate → detect.

This reproduces the full experimental procedure of §6:

1. generate (or accept) a synthetic trace,
2. run the incumbent CDet (NetScout by default) to obtain the alert stream
   used as labels,
3. split the horizon chronologically 50/20/30 into training / validation /
   testing,
4. build balanced survival datasets and train the multi-timescale LSTM,
5. calibrate the alert threshold on validation under a scrubbing-overhead
   bound (75th percentile of customers ≤ bound),
6. run online detection over the test period (auto-regressive feature
   feedback) and account effectiveness / overhead / delay via CScrub.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..detect.detectors import DetectionAlert, NetScoutDetector, TraceDetector
from ..metrics.core import PercentileSummary, percentile_summary
from ..scrub.center import DiversionWindow, ScrubbingCenter, ScrubbingReport
from ..signals.features import FeatureExtractor, FeatureScaler
from ..signals.history import AlertRecord
from ..survival.calibration import CalibrationResult, ThresholdCalibrator
from ..synth.scenario import ScenarioConfig, Trace, TraceGenerator
from .dataset import DatasetBuilder, SampleSet
from .detector import DetectorConfig, DetectionOutput, XatuDetector
from .model import XatuModel, XatuModelConfig
from .trainer import TrainConfig, XatuTrainer

__all__ = ["SplitSpec", "PipelineConfig", "PipelineResult", "XatuPipeline", "alerts_to_records"]


@dataclass(frozen=True, slots=True)
class SplitSpec:
    """Chronological split fractions (paper: 50/20/30 days of 100)."""

    train: float = 0.5
    validation: float = 0.2
    test: float = 0.3

    def __post_init__(self) -> None:
        total = self.train + self.validation + self.test
        if abs(total - 1.0) > 1e-9:
            raise ValueError("split fractions must sum to 1")

    def bounds(self, horizon: int) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
        a = int(horizon * self.train)
        b = int(horizon * (self.train + self.validation))
        return (0, a), (a, b), (b, horizon)


@dataclass
class PipelineConfig:
    """Everything configurable about one pipeline run."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    model: XatuModelConfig = field(default_factory=XatuModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    split: SplitSpec = field(default_factory=SplitSpec)
    overhead_bound: float = 0.1  # fraction (0.1 = 10%); Fig 8 sweeps this
    enabled_groups: frozenset[str] | None = None  # feature ablation mask
    stabilization_fraction: float = 0.33  # head of test excluded from metrics
    autoregressive: bool = True
    # §5.3: "Xatu trains separate models for each attack type".  With
    # per_type=True, a XatuModelRegistry trains one model per type with at
    # least ``min_events_per_type`` labeled training events plus a pooled
    # fallback; each customer is served by its most recent attack type's
    # model at detection time.
    per_type: bool = False
    min_events_per_type: int = 4
    seed: int = 0


@dataclass
class PipelineResult:
    """Outputs of one full run."""

    trace: Trace
    cdet_alerts: list[DetectionAlert]
    calibration: CalibrationResult
    detection: DetectionOutput
    report: ScrubbingReport
    effectiveness: PercentileSummary
    overhead: PercentileSummary
    delay: PercentileSummary
    test_range: tuple[int, int]
    eval_range: tuple[int, int]
    train_losses: list[float]

    def summary(self) -> dict[str, float]:
        return {
            "effectiveness_median": self.effectiveness.median,
            "overhead_p75": self.overhead.high,
            "delay_median": self.delay.median,
            "threshold": self.calibration.threshold,
        }


def alerts_to_records(
    trace: Trace, alerts: list[DetectionAlert]
) -> list[AlertRecord]:
    """Convert CDet alerts into the records the feature stores consume."""
    records = []
    for alert in alerts:
        attackers: frozenset[int] = frozenset()
        if alert.event_id >= 0:
            attackers = frozenset(trace.events[alert.event_id].attackers)
        records.append(
            AlertRecord(
                customer_id=alert.customer_id,
                attack_type=alert.attack_type,
                detect_minute=alert.detect_minute,
                end_minute=alert.end_minute,
                peak_bytes=alert.peak_bytes,
                attackers=attackers,
            )
        )
    return records


class XatuPipeline:
    """Orchestrates the full §6 procedure."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        trace: Trace | None = None,
        cdet: TraceDetector | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.trace = trace or TraceGenerator(self.config.scenario).materialize()
        self.cdet = cdet or NetScoutDetector()
        self._rng = np.random.default_rng(self.config.seed)
        self._trained_model: XatuModel | None = None
        self._trained_scaler = None
        self._calibrated_threshold: float | None = None

    def save_artifacts(self, directory) -> None:
        """Persist the trained model(s), scaler(s), and threshold(s).

        Per-type runs save the whole registry; single-model runs save one
        ``_default`` entry in the same registry layout, so
        :meth:`XatuModelRegistry.load` restores either.
        """
        from .registry import TypedModelEntry, XatuModelRegistry

        if hasattr(self, "registry"):
            self.registry.save(directory)
            return
        if self._trained_model is None or self._calibrated_threshold is None:
            raise RuntimeError("run() the pipeline before saving artifacts")
        registry = XatuModelRegistry(self.config.model, self.config.train)
        registry.entries["_default"] = TypedModelEntry(
            model=self._trained_model,
            scaler=self._trained_scaler,
            threshold=self._calibrated_threshold,
        )
        registry.save(directory)

    # ------------------------------------------------------------------
    def _build_extractor(self, alerts: list[DetectionAlert]) -> FeatureExtractor:
        return FeatureExtractor(
            self.trace,
            alerts=alerts_to_records(self.trace, alerts),
            enabled_groups=self.config.enabled_groups,
        )

    def _evaluate_threshold(
        self,
        detector: XatuDetector,
        minute_range: tuple[int, int],
        threshold: float,
        customers: list[int] | None = None,
    ) -> tuple[float, np.ndarray]:
        """(median effectiveness, per-customer overheads) at a threshold.

        Re-running the full detector per candidate threshold would redo the
        expensive forward passes; instead the detector runs once per range
        (cached) and thresholds are applied to the stored hazard series.
        ``customers`` restricts the evaluation to a subset (per-type
        threshold calibration).
        """
        output = self._cached_run(detector, minute_range)
        hazard_series = output.hazard_series
        if customers is not None:
            wanted = set(customers)
            hazard_series = {
                cid: h for cid, h in hazard_series.items() if cid in wanted
            }
        from .detector import windows_from_hazards

        windows = windows_from_hazards(
            self.trace, hazard_series, minute_range,
            detector._detect_window(), threshold,
            detector.config.max_fp_diversion,
        )
        report = ScrubbingCenter(self.trace).account(windows)
        lo, hi = minute_range
        eff = [
            report.effectiveness(e.event_id)
            for e in self.trace.events
            if lo <= e.onset < hi
            and (customers is None or e.customer_id in set(customers))
        ]
        if customers is None:
            overheads = report.overhead_values()
        else:
            overheads = np.array([report.overhead(c) for c in customers])
        return (float(np.median(eff)) if eff else 0.0, overheads)

    def _cached_run(
        self, detector: XatuDetector, minute_range: tuple[int, int]
    ) -> DetectionOutput:
        key = minute_range
        if not hasattr(self, "_run_cache"):
            self._run_cache: dict[tuple[int, int], DetectionOutput] = {}
        if key not in self._run_cache:
            self._run_cache[key] = detector.run(minute_range)
        return self._run_cache[key]

    def _windows_from_hazards(
        self,
        detector: XatuDetector,
        output: DetectionOutput,
        minute_range: tuple[int, int],
        threshold: float,
    ) -> list[DiversionWindow]:
        """Apply an alert threshold to stored hazards, producing diversions."""
        from .detector import windows_from_hazards

        return windows_from_hazards(
            self.trace,
            output.hazard_series,
            minute_range,
            detector._detect_window(),
            threshold,
            detector.config.max_fp_diversion,
        )

    def _range_effectiveness(
        self, report: ScrubbingReport, minute_range: tuple[int, int]
    ) -> np.ndarray:
        lo, hi = minute_range
        values = [
            report.effectiveness(e.event_id)
            for e in self.trace.events
            if lo <= e.onset < hi
        ]
        return np.array(values)

    def _range_overheads(
        self, report: ScrubbingReport, minute_range: tuple[int, int]
    ) -> np.ndarray:
        return report.overhead_values()

    def _range_delays(
        self, report: ScrubbingReport, minute_range: tuple[int, int], missed: int
    ) -> np.ndarray:
        lo, hi = minute_range
        values = []
        for e in self.trace.events:
            if not lo <= e.onset < hi:
                continue
            delay = report.detection_delay.get(e.event_id)
            values.append(missed if delay is None else delay)
        return np.array(values, dtype=np.float64)

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Execute the full pipeline and return every artefact."""
        cfg = self.config
        trace = self.trace
        (train_lo, train_hi), (val_lo, val_hi), (test_lo, test_hi) = cfg.split.bounds(
            trace.horizon
        )

        # 1. Incumbent CDet labels.
        cdet_alerts = self.cdet.detect(trace)
        labeled = [a for a in cdet_alerts if a.event_id >= 0]
        n_train_labels = sum(
            1 for a in labeled if train_lo <= a.detect_minute < train_hi
        )
        if n_train_labels == 0:
            raise RuntimeError(
                "the CDet produced no labeled alerts in the training split — "
                "the scenario is too quiet (or the detector too conservative) "
                "to train on; increase attacks_per_campaign / campaigns, or "
                "lower the detector's thresholds"
            )

        # 2. Feature extractor fed by CDet alerts (train/val phases).
        extractor = self._build_extractor(labeled)

        # 3/4. Datasets and training: one pooled model, or the per-type
        # registry (§5.3).
        if cfg.per_type:
            from .registry import XatuModelRegistry

            registry = XatuModelRegistry(cfg.model, cfg.train)
            registry.train(
                trace, extractor, labeled,
                (train_lo, train_hi), (val_lo, val_hi),
                min_events_per_type=cfg.min_events_per_type,
                seed=cfg.seed,
            )
            model = registry.models_dict()
            scaler = registry.scalers_dict()
            default_entry = registry.entries["_default"]
            train_result = default_entry.train_result
            self.registry = registry
        else:
            builder = DatasetBuilder(trace, extractor, cfg.model, rng=self._rng)
            train_set = builder.build(labeled, (train_lo, train_hi))
            val_set = builder.build(
                labeled, (val_lo, val_hi), scaler=train_set.scaler
            )
            single_model = XatuModel(cfg.model)
            trainer = XatuTrainer(single_model, cfg.train)
            train_result = trainer.fit(train_set, validation=val_set)
            model = single_model
            scaler = train_set.scaler
            self._trained_model = single_model
            self._trained_scaler = scaler

        # 5. Calibrate on validation.
        det_cfg = DetectorConfig(autoregressive=False)
        cal_detector = XatuDetector(
            trace, extractor, model, scaler, det_cfg
        )
        calibrator = ThresholdCalibrator()
        calibration = calibrator.calibrate(
            lambda thr: self._evaluate_threshold(cal_detector, (val_lo, val_hi), thr),
            overhead_bound=cfg.overhead_bound,
        )
        self._calibrated_threshold = calibration.threshold
        thresholds_by_key: dict[str, float] | None = None
        if cfg.per_type:
            # Per-type thresholds (§5.3): each typed model is calibrated on
            # the validation customers it serves; keys with no validation
            # customers inherit the global threshold.
            thresholds_by_key = {}
            by_key: dict[str, list[int]] = {}
            for customer in trace.world.customers:
                key = cal_detector.serving_key(customer.customer_id)
                by_key.setdefault(key, []).append(customer.customer_id)
            for key, customer_ids in by_key.items():
                result_k = calibrator.calibrate(
                    lambda thr, ids=customer_ids: self._evaluate_threshold(
                        cal_detector, (val_lo, val_hi), thr, customers=ids
                    ),
                    overhead_bound=cfg.overhead_bound,
                )
                thresholds_by_key[key] = result_k.threshold
                self.registry.set_threshold(key, result_k.threshold)

        # 6. Test-phase detection: fresh extractor seeded with alerts known
        # before the test split; autoregressive from there (§5.3).
        test_extractor = self._build_extractor(
            [a for a in labeled if a.end_minute <= test_lo]
        )
        test_detector = XatuDetector(
            trace,
            test_extractor,
            model,
            scaler,
            DetectorConfig(
                threshold=calibration.threshold,
                autoregressive=cfg.autoregressive,
                thresholds_by_key=thresholds_by_key,
            ),
        )
        detection = test_detector.run((test_lo, test_hi))
        report = ScrubbingCenter(trace).account(detection.windows)

        # 7. Metrics after the stabilization period.
        stab = int((test_hi - test_lo) * cfg.stabilization_fraction)
        eval_range = (test_lo + stab, test_hi)
        eff = self._range_effectiveness(report, eval_range)
        overheads = self._range_overheads(report, eval_range)
        delays = self._range_delays(report, eval_range, missed=cfg.model.detect_window)

        return PipelineResult(
            trace=trace,
            cdet_alerts=cdet_alerts,
            calibration=calibration,
            detection=detection,
            report=report,
            effectiveness=percentile_summary(eff, 10, 90),
            overhead=percentile_summary(overheads, 25, 75),
            delay=percentile_summary(delays, 10, 90),
            test_range=(test_lo, test_hi),
            eval_range=eval_range,
            train_losses=train_result.train_losses,
        )
