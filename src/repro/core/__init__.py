"""Xatu core: the multi-timescale LSTM detector and its training pipeline."""

from .dataset import DatasetBuilder, SampleSet, SurvivalSample
from .detector import DetectorConfig, DetectionOutput, XatuAlert, XatuDetector
from .model import TimescaleSpec, XatuModel, XatuModelConfig
from .pipeline import (
    PipelineConfig,
    PipelineResult,
    SplitSpec,
    XatuPipeline,
    alerts_to_records,
)
from .online import OnlineAlert, OnlineConfig, OnlineXatu
from .registry import TypedModelEntry, XatuModelRegistry
from .trainer import TrainConfig, TrainResult, XatuTrainer

__all__ = [
    "TimescaleSpec", "XatuModelConfig", "XatuModel",
    "DatasetBuilder", "SampleSet", "SurvivalSample",
    "TrainConfig", "TrainResult", "XatuTrainer",
    "DetectorConfig", "DetectionOutput", "XatuAlert", "XatuDetector",
    "SplitSpec", "PipelineConfig", "PipelineResult", "XatuPipeline",
    "alerts_to_records",
    "TypedModelEntry", "XatuModelRegistry",
    "OnlineAlert", "OnlineConfig", "OnlineXatu",
]
