"""Training loop: Adam + SAFE survival loss (or BCE for the ablation).

§5.3: Adam optimizer, SAFE loss, learning rate 1e-4, batch size 64.  The
"Xatu w/o survival model" ablation (Figure 18d) swaps the SAFE loss for a
per-step binary cross-entropy on the instantaneous attack probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, Tensor, binary_cross_entropy, clip_grad_norm, safe_survival_loss
from .dataset import SampleSet
from .model import XatuModel

__all__ = ["TrainConfig", "TrainResult", "XatuTrainer"]


@dataclass
class TrainConfig:
    """Optimization hyper-parameters."""

    learning_rate: float = 1e-3  # paper: 1e-4 at full scale; higher for the
    # laptop-scale replica (fewer steps, smaller model)
    batch_size: int = 16
    epochs: int = 8
    grad_clip: float = 5.0
    loss: str = "survival"  # "survival" (SAFE) or "bce" (ablation)
    seed: int = 0
    early_stop_patience: int | None = None  # epochs without val improvement


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False


class XatuTrainer:
    """Fits a :class:`XatuModel` on a :class:`SampleSet`."""

    def __init__(self, model: XatuModel, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        if self.config.loss not in ("survival", "bce"):
            raise ValueError("loss must be 'survival' or 'bce'")
        self._optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _loss(self, x: np.ndarray, c: np.ndarray, t: np.ndarray) -> Tensor:
        hazards = self.model(Tensor(x))
        if self.config.loss == "survival":
            return safe_survival_loss(hazards, c, t)
        # BCE ablation: the instantaneous "attack probability" is
        # 1 - exp(-lambda_t); targets mark the label step of attack series.
        probs = 1.0 - (-hazards).exp()
        targets = np.zeros(hazards.shape)
        rows = np.arange(len(c))
        targets[rows[c > 0.5], t[c > 0.5]] = 1.0
        return binary_cross_entropy(probs, targets)

    def evaluate_loss(self, samples: SampleSet) -> float:
        """Mean loss over a sample set (no weight updates)."""
        from ..nn import no_grad

        x, c, t = samples.arrays()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                return self._loss(x, c, t).item()
        finally:
            self.model.train(was_training)

    def fit(
        self,
        train: SampleSet,
        validation: SampleSet | None = None,
    ) -> TrainResult:
        """Run the optimization; returns the loss trajectory."""
        cfg = self.config
        result = TrainResult()
        self.model.train()
        x_all, c_all, t_all = train.arrays()
        n = len(train)
        best_val = np.inf
        stale = 0
        for _epoch in range(cfg.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for lo in range(0, n, cfg.batch_size):
                idx = order[lo : lo + cfg.batch_size]
                self._optimizer.zero_grad()
                loss = self._loss(x_all[idx], c_all[idx], t_all[idx])
                loss.backward()
                clip_grad_norm(self._optimizer.parameters, cfg.grad_clip)
                self._optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            result.train_losses.append(epoch_loss / max(1, n_batches))
            result.epochs_run += 1
            if validation is not None:
                val_loss = self.evaluate_loss(validation)
                result.val_losses.append(val_loss)
                if cfg.early_stop_patience is not None:
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        stale = 0
                    else:
                        stale += 1
                        if stale >= cfg.early_stop_patience:
                            result.stopped_early = True
                            break
        return result
