"""Training loop: Adam + SAFE survival loss (or BCE for the ablation).

§5.3: Adam optimizer, SAFE loss, learning rate 1e-4, batch size 64.  The
"Xatu w/o survival model" ablation (Figure 18d) swaps the SAFE loss for a
per-step binary cross-entropy on the instantaneous attack probability.

When telemetry is enabled (``repro.obs``), the loop records loss,
pre-clip gradient norm, per-step wall time, and epoch throughput into the
global metrics registry, under ``train.fit`` / ``train.epoch`` spans; the
``train_epoch_obs`` bench case bounds the enabled-path overhead.  An
optional per-epoch :class:`EpochProgress` callback surfaces the same
numbers to callers (silent by default, so existing runs and golden traces
are untouched).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn import Adam, Tensor, binary_cross_entropy, clip_grad_norm, safe_survival_loss
from ..obs import get_registry, obs_enabled, trace
from .dataset import SampleSet
from .model import XatuModel

__all__ = ["TrainConfig", "TrainResult", "EpochProgress", "XatuTrainer"]


@dataclass
class TrainConfig:
    """Optimization hyper-parameters."""

    learning_rate: float = 1e-3  # paper: 1e-4 at full scale; higher for the
    # laptop-scale replica (fewer steps, smaller model)
    batch_size: int = 16
    epochs: int = 8
    grad_clip: float = 5.0
    loss: str = "survival"  # "survival" (SAFE) or "bce" (ablation)
    seed: int = 0
    early_stop_patience: int | None = None  # epochs without val improvement


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False


@dataclass(frozen=True, slots=True)
class EpochProgress:
    """One epoch's feedback, handed to the optional progress callback."""

    epoch: int  # 1-based
    epochs: int
    train_loss: float
    val_loss: float | None
    steps: int
    epoch_seconds: float
    mean_step_seconds: float


class XatuTrainer:
    """Fits a :class:`XatuModel` on a :class:`SampleSet`."""

    def __init__(self, model: XatuModel, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        if self.config.loss not in ("survival", "bce"):
            raise ValueError("loss must be 'survival' or 'bce'")
        self._optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _loss(self, x: np.ndarray, c: np.ndarray, t: np.ndarray) -> Tensor:
        hazards = self.model(Tensor(x))
        if self.config.loss == "survival":
            return safe_survival_loss(hazards, c, t)
        # BCE ablation: the instantaneous "attack probability" is
        # 1 - exp(-lambda_t); targets mark the label step of attack series.
        probs = 1.0 - (-hazards).exp()
        targets = np.zeros(hazards.shape)
        rows = np.arange(len(c))
        targets[rows[c > 0.5], t[c > 0.5]] = 1.0
        return binary_cross_entropy(probs, targets)

    def evaluate_loss(self, samples: SampleSet) -> float:
        """Mean loss over a sample set (no weight updates)."""
        from ..nn import no_grad

        x, c, t = samples.arrays()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                return self._loss(x, c, t).item()
        finally:
            self.model.train(was_training)

    def fit(
        self,
        train: SampleSet,
        validation: SampleSet | None = None,
        progress: Callable[[EpochProgress], None] | None = None,
    ) -> TrainResult:
        """Run the optimization; returns the loss trajectory.

        ``progress`` (optional) is called once per epoch with an
        :class:`EpochProgress`; when None (the default) the loop is
        silent, exactly as before.
        """
        cfg = self.config
        result = TrainResult()
        self.model.train()
        x_all, c_all, t_all = train.arrays()
        n = len(train)
        best_val = np.inf
        stale = 0
        telemetry_on = obs_enabled()
        want_timing = telemetry_on or progress is not None
        if telemetry_on:
            registry = get_registry()
            m_steps = registry.counter("train.steps", "optimizer steps taken")
            m_epochs = registry.counter("train.epochs", "training epochs completed")
            m_samples = registry.counter("train.samples", "training samples consumed")
            m_loss = registry.gauge("train.loss", "last batch loss")
            m_epoch_loss = registry.gauge("train.epoch_loss", "last epoch mean loss")
            m_val_loss = registry.gauge("train.val_loss", "last validation loss")
            m_grad = registry.gauge("train.grad_norm", "last pre-clip gradient norm")
            m_step_s = registry.histogram(
                "train.step_seconds", "wall time of one optimizer step"
            )
            m_epoch_s = registry.histogram(
                "train.epoch_seconds", "wall time of one training epoch"
            )
            m_rate = registry.ewma(
                "train.samples_per_second", "epoch training throughput"
            )
        with trace("train.fit"):
            for _epoch in range(cfg.epochs):
                order = self._rng.permutation(n)
                epoch_loss = 0.0
                n_batches = 0
                epoch_start = time.perf_counter() if want_timing else 0.0
                step_seconds = 0.0
                with trace("train.epoch"):
                    for lo in range(0, n, cfg.batch_size):
                        idx = order[lo : lo + cfg.batch_size]
                        step_start = time.perf_counter() if want_timing else 0.0
                        self._optimizer.zero_grad()
                        loss = self._loss(x_all[idx], c_all[idx], t_all[idx])
                        loss.backward()
                        grad_norm = clip_grad_norm(
                            self._optimizer.parameters, cfg.grad_clip
                        )
                        self._optimizer.step()
                        loss_value = loss.item()
                        epoch_loss += loss_value
                        n_batches += 1
                        if want_timing:
                            step_seconds += time.perf_counter() - step_start
                        if telemetry_on:
                            m_steps.inc()
                            m_samples.inc(len(idx))
                            m_loss.set(loss_value)
                            m_grad.set(grad_norm)
                            m_step_s.observe(time.perf_counter() - step_start)
                result.train_losses.append(epoch_loss / max(1, n_batches))
                result.epochs_run += 1
                val_loss: float | None = None
                if validation is not None:
                    val_loss = self.evaluate_loss(validation)
                    result.val_losses.append(val_loss)
                if telemetry_on:
                    epoch_seconds = time.perf_counter() - epoch_start
                    m_epochs.inc()
                    m_epoch_loss.set(result.train_losses[-1])
                    m_epoch_s.observe(epoch_seconds)
                    if epoch_seconds > 0:
                        m_rate.observe(n / epoch_seconds)
                    if val_loss is not None:
                        m_val_loss.set(val_loss)
                if progress is not None:
                    progress(EpochProgress(
                        epoch=result.epochs_run,
                        epochs=cfg.epochs,
                        train_loss=result.train_losses[-1],
                        val_loss=val_loss,
                        steps=n_batches,
                        epoch_seconds=time.perf_counter() - epoch_start,
                        mean_step_seconds=step_seconds / max(1, n_batches),
                    ))
                if validation is not None and cfg.early_stop_patience is not None:
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        stale = 0
                    else:
                        stale += 1
                        if stale >= cfg.early_stop_patience:
                            result.stopped_early = True
                            break
        return result
