"""Streaming deployment mode (§2.6): Xatu on live data feeds.

The offline pipeline consumes a fully-materialized :class:`Trace`; a real
deployment instead receives sampled NetFlow continuously, plus alert and
mitigation-end notices from the incumbent defense.  :class:`OnlineXatu`
implements that loop:

* ``observe_minute(flows)`` ingests one minute of sampled flows for all
  customers, tagging each flow's auxiliary source classes (blocklist
  membership, previous attackers, spoof check) and folding it into an
  internal :class:`~repro.netflow.TrafficMatrix`;
* ``ingest_cdet_alert`` / ``ingest_mitigation_end`` maintain the A2/A4/A5
  stores from the incumbent's feed (or from Xatu's own alerts);
* every minute, the survival score of each watched customer is refreshed
  and crossing alerts are emitted through ``poll_alerts()``.

Bounded memory: feature state older than the model lookback plus a safety
margin is discarded each minute.
"""

from __future__ import annotations

import time
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..detect.api import infer_minute
from ..netflow.matrix import (
    SOURCE_CLASS_BLOCKLIST,
    SOURCE_CLASS_PREV_ATTACKER,
    SOURCE_CLASS_SPOOFED,
    TrafficMatrix,
)
from ..netflow.records import FlowBatch, FlowRecord
from ..netflow.routing import RouteTable
from ..nn.serialization import state_from_bytes, state_to_bytes
from ..obs import get_registry, obs_enabled, trace
from ..signals.clustering import AttackerCustomerGraph
from ..signals.features import N_FEATURES, FeatureScaler, group_slices
from ..signals.history import AlertRecord, AttackHistoryStore, PreviousAttackerStore
from ..synth.attacks import AttackType
from .model import XatuModel

__all__ = ["OnlineAlert", "OnlineConfig", "OnlineXatu"]

_CLASS_OF_GROUP = {
    "V": "all",
    "A1": SOURCE_CLASS_BLOCKLIST,
    "A2": SOURCE_CLASS_PREV_ATTACKER,
    "A3": SOURCE_CLASS_SPOOFED,
}


@dataclass(frozen=True, slots=True)
class OnlineAlert:
    """An early-detection alert emitted by the streaming detector."""

    customer_id: int
    minute: int
    survival: float

    @property
    def score(self) -> float:
        """The unified :class:`repro.detect.Alert` score (survival)."""
        return self.survival

    @property
    def detector(self) -> str:
        return "xatu"


@dataclass(frozen=True, slots=True)
class OnlineConfig:
    """Streaming-behaviour knobs for :class:`OnlineXatu`.

    Consolidates the former constructor kwarg sprawl into one typed
    config (re-exported from ``repro``); the legacy keyword arguments
    still work and map onto these fields.

    Attributes
    ----------
    threshold:
        Survival threshold in (0, 1): a customer alerts when its survival
        drops below it.
    history_decay_minutes / clustering_window:
        A4 decay horizon and A5 sliding-window width.
    rearm_after:
        Minutes a customer stays suppressed after alerting, absent an
        explicit mitigation-end notice.
    start_minute:
        First minute the detector will observe (its clock starts one
        before).  Lets a restored or mid-trace detector resume without
        fake catch-up calls.
    evict_margin_minutes:
        Traffic-matrix state older than ``lookback + margin`` is evicted
        each minute, keeping long-running detectors' memory bounded.
        Negative disables eviction.
    watch_idle_minutes:
        When set, a watched customer that has received no flows for this
        many minutes is dropped from the per-minute scoring set (its
        hazard history goes with it); the next flow re-watches it.  With
        an analytic router over a huge address plan this is what keeps
        the watch set proportional to *active* customers instead of the
        universe.  ``None`` (default) keeps the historical
        watch-forever behaviour.
    """

    threshold: float = 0.5
    history_decay_minutes: float = 7 * 1440.0
    clustering_window: int = 60
    rearm_after: int = 10
    start_minute: int = 0
    evict_margin_minutes: int = 120
    watch_idle_minutes: int | None = None

    def validate(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.rearm_after < 0:
            raise ValueError("rearm_after must be >= 0")
        if self.watch_idle_minutes is not None and self.watch_idle_minutes < 1:
            raise ValueError("watch_idle_minutes must be >= 1 (or None)")


class OnlineXatu:
    """Minute-driven streaming detector around a trained model.

    Parameters
    ----------
    model / scaler / threshold:
        The trained artefacts (e.g. from a
        :class:`~repro.core.registry.XatuModelRegistry` entry).
    customer_of:
        Maps destination address → customer id for incoming flows.
        Either a plain dict or an analytic router such as
        :class:`~repro.serve.ContiguousCustomerRouter` (anything with
        ``get``/``__len__``/``route_batch``).  Routers with
        ``lazy_watch = True`` start with an *empty* watch set that grows
        with observed traffic, so million-customer universes don't score
        every customer every minute.
    blocklist:
        Object supporting ``addr in blocklist`` (A1 membership).
    route_table:
        Spoof classification source (A3).
    base_rate_of:
        Customer id → baseline bytes/minute, for A4 severity bucketing.

    Serving-lane knobs
    ------------------
    ``batched``, ``inference_dtype`` and ``batch_block`` are plain
    (class-level default) attributes, set per instance by the serving
    layer from :class:`~repro.serve.ServeConfig`.  They select *how* the
    per-minute hazards are computed — one fused pass over every watched
    customer versus one model call per customer — and are proven
    byte-identical in outcome by ``tests/test_batched_equivalence.py``.
    Deliberately **not** part of :class:`OnlineConfig` or
    :meth:`state_dict`: the lane must never change what a checkpoint
    looks like, so a restore may flip lanes freely.
    """

    name = "xatu"

    # Scoring-lane policy (see class docstring).  ``batched`` stacks every
    # watched customer's feature window into one fused inference call;
    # ``inference_dtype`` (None | np.float32 | np.float64) activates the
    # reduced-precision lane; ``batch_block`` caps customers per stacked
    # call to bound the (customers, lookback, 273) staging buffer.
    batched: bool = False
    inference_dtype = None
    batch_block: int = 256

    def __init__(
        self,
        model: XatuModel,
        scaler: FeatureScaler,
        threshold: float | None = None,
        customer_of: dict[int, int] | None = None,
        blocklist=None,
        route_table: RouteTable | None = None,
        base_rate_of: dict[int, float] | None = None,
        history_decay_minutes: float | None = None,
        clustering_window: int | None = None,
        rearm_after: int | None = None,
        config: OnlineConfig | None = None,
    ) -> None:
        if config is not None:
            legacy = {
                "threshold": threshold,
                "history_decay_minutes": history_decay_minutes,
                "clustering_window": clustering_window,
                "rearm_after": rearm_after,
            }
            passed = [name for name, value in legacy.items() if value is not None]
            if passed:
                raise ValueError(
                    "pass streaming knobs either via config=OnlineConfig(...) "
                    f"or as legacy keywords, not both: {passed}"
                )
        else:
            defaults = OnlineConfig()
            config = OnlineConfig(
                threshold=defaults.threshold if threshold is None else threshold,
                history_decay_minutes=(
                    defaults.history_decay_minutes
                    if history_decay_minutes is None
                    else history_decay_minutes
                ),
                clustering_window=(
                    defaults.clustering_window
                    if clustering_window is None
                    else clustering_window
                ),
                rearm_after=defaults.rearm_after if rearm_after is None else rearm_after,
            )
        config.validate()
        self.config_online = config
        self.model = model
        self.scaler = scaler
        self.threshold = config.threshold
        if customer_of is None or isinstance(customer_of, dict):
            self.customer_of = dict(customer_of or {})
        else:
            # Analytic router: kept by reference (it is immutable context,
            # and materializing it as a dict would defeat its purpose).
            self.customer_of = customer_of
        self.blocklist = set() if blocklist is None else blocklist
        self.route_table = route_table
        self.base_rate_of = base_rate_of or {}
        self.rearm_after = config.rearm_after
        self._slices = group_slices()
        self.reset()

    def reset(self) -> None:
        """Return to the post-construction state (clock, stores, alerts)."""
        config = self.config_online
        self.matrix = TrafficMatrix()
        self.prev_attackers = PreviousAttackerStore()
        self.history = AttackHistoryStore(decay_minutes=config.history_decay_minutes)
        self.graph = AttackerCustomerGraph(window_minutes=config.clustering_window)
        self._minute = config.start_minute - 1
        self._hazards: dict[int, list[float]] = defaultdict(list)
        self._suppressed_until: dict[int, int] = {}
        self._pending: list[OnlineAlert] = []
        self._spoof_cache: dict[int, bool] = {}
        if getattr(self.customer_of, "lazy_watch", False):
            # Router-backed routing over a huge universe: watch only the
            # customers that actually show up in traffic.
            self._watched: set[int] = set()
        else:
            self._watched = set(self.customer_of.values())
        self._last_seen: dict[int, int] = {}
        self._routing_cache: tuple | None = None
        self._blocklist_cache: tuple | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        attack_type: str | None,
        customer_of: dict[int, int],
        blocklist,
        route_table: RouteTable,
        **kwargs,
    ) -> "OnlineXatu":
        """Build a streaming detector from a trained
        :class:`~repro.core.registry.XatuModelRegistry` entry (its model,
        scaler, and calibrated threshold)."""
        entry = registry.entry_for(attack_type)
        return cls(
            model=entry.model,
            scaler=entry.scaler,
            threshold=entry.threshold,
            customer_of=customer_of,
            blocklist=blocklist,
            route_table=route_table,
            **kwargs,
        )

    @property
    def current_minute(self) -> int:
        return self._minute

    def ingest_cdet_alert(self, alert: AlertRecord) -> None:
        """Feed one incumbent-defense (or Xatu self-) alert into the stores."""
        self.prev_attackers.add_alert(alert)
        self.history.add_alert(
            alert, self.base_rate_of.get(alert.customer_id, 1.0)
        )
        self.graph.add_alert(alert.detect_minute, alert.customer_id, alert.attackers)

    def ingest_mitigation_end(self, customer_id: int, minute: int) -> None:
        """CScrub mitigation-end notice: re-arm detection for the customer."""
        self._suppressed_until[customer_id] = minute

    # ------------------------------------------------------------------
    def _classify(self, customer_id: int, flow: FlowRecord) -> list[str]:
        classes: list[str] = []
        if flow.src_addr in self.blocklist:
            classes.append(SOURCE_CLASS_BLOCKLIST)
        if self.prev_attackers.is_previous_attacker(
            customer_id, flow.src_addr, flow.timestamp
        ):
            classes.append(SOURCE_CLASS_PREV_ATTACKER)
        spoofed = self._spoof_cache.get(flow.src_addr)
        if spoofed is None:
            spoofed = self.route_table.is_spoofed(flow.src_addr)
            self._spoof_cache[flow.src_addr] = spoofed
        if spoofed:
            classes.append(SOURCE_CLASS_SPOOFED)
        return classes

    # ------------------------------------------------------------------
    # columnar ingest lane (FlowBatch inputs)
    # ------------------------------------------------------------------
    def _routing_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (dst address, customer id) lookup arrays for routing.

        ``customer_of`` is deployment context, fixed between restores; the
        cache key covers replacement (identity) and growth (length), the
        only mutations the serving layer performs.
        """
        cache = self._routing_cache
        if (
            cache is None
            or cache[0] is not self.customer_of
            or cache[1] != len(self.customer_of)
        ):
            n = len(self.customer_of)
            addrs = np.fromiter(self.customer_of.keys(), dtype=np.int64, count=n)
            cids = np.fromiter(self.customer_of.values(), dtype=np.int64, count=n)
            order = np.argsort(addrs, kind="stable")
            cache = (self.customer_of, n, addrs[order], cids[order])
            self._routing_cache = cache
        return cache[2], cache[3]

    def _blocklist_mask(self, src: np.ndarray) -> np.ndarray:
        """Vectorized A1 membership over a source-address column."""
        blocklist = self.blocklist
        if isinstance(blocklist, (set, frozenset)):
            if not blocklist:
                return np.zeros(len(src), dtype=bool)
            cache = self._blocklist_cache
            if (
                cache is None
                or cache[0] is not blocklist
                or cache[1] != len(blocklist)
            ):
                table = np.fromiter(
                    blocklist, dtype=np.int64, count=len(blocklist)
                )
                table.sort()
                cache = (blocklist, len(blocklist), table)
                self._blocklist_cache = cache
            table = cache[2]
            slot = np.minimum(np.searchsorted(table, src), len(table) - 1)
            return table[slot] == src
        # Custom membership object: one Python check per *unique* source.
        uniq, inverse = np.unique(src, return_inverse=True)
        hits = np.fromiter(
            (int(addr) in blocklist for addr in uniq.tolist()),
            dtype=bool,
            count=len(uniq),
        )
        return hits[inverse]

    def _spoof_mask(self, src: np.ndarray) -> np.ndarray:
        """A3 verdicts per flow, consulting the route table once per unique
        source and filling ``_spoof_cache`` with the same (python-int)
        keys and values the scalar path would."""
        uniq, inverse = np.unique(src, return_inverse=True)
        verdicts = np.empty(len(uniq), dtype=bool)
        for i, addr in enumerate(uniq.tolist()):
            spoofed = self._spoof_cache.get(addr)
            if spoofed is None:
                spoofed = self.route_table.is_spoofed(addr)
                self._spoof_cache[addr] = spoofed
            verdicts[i] = spoofed
        return verdicts[inverse]

    def _ingest_batch(self, batch: FlowBatch) -> tuple[int, int]:
        """Route, classify and aggregate one minute's batch columnar.

        Produces exactly the state the scalar per-flow loop would: routing
        by ``customer_of``, the three auxiliary class masks, and one
        :meth:`TrafficMatrix.add_batch` fold (bit-identical to the
        equivalent ``add_flow`` sequence — see ``tests/test_columnar.py``).
        Returns ``(ingested, unrouted)`` counts.
        """
        arr = batch.array
        if not len(arr):
            return 0, 0
        dst = arr["dst_addr"].astype(np.int64)
        if isinstance(self.customer_of, dict):
            addrs, cids = self._routing_arrays()
            if len(addrs):
                pos = np.minimum(np.searchsorted(addrs, dst), len(addrs) - 1)
                routed = addrs[pos] == dst
            else:
                routed = np.zeros(len(arr), dtype=bool)
            unrouted = int(len(arr) - np.count_nonzero(routed))
            if unrouted == len(arr):
                return 0, unrouted
            cust = cids[pos[routed]]
        else:
            all_cids = self.customer_of.route_batch(dst)
            routed = all_cids >= 0
            unrouted = int(len(arr) - np.count_nonzero(routed))
            if unrouted == len(arr):
                return 0, unrouted
            cust = all_cids[routed]
        arr = arr[routed]
        seen = map(int, np.unique(cust))
        if self.config_online.watch_idle_minutes is None:
            self._watched.update(seen)
        else:
            minute = self._minute
            for customer_id in seen:
                self._watched.add(customer_id)
                self._last_seen[customer_id] = minute
        src = arr["src_addr"].astype(np.int64)
        self.matrix.add_batch(
            cust,
            FlowBatch(arr),
            {
                SOURCE_CLASS_BLOCKLIST: self._blocklist_mask(src),
                SOURCE_CLASS_PREV_ATTACKER: self.prev_attackers.batch_mask(
                    cust, src, arr["timestamp"].astype(np.int64)
                ),
                SOURCE_CLASS_SPOOFED: self._spoof_mask(src),
            },
        )
        return int(len(arr)), unrouted

    def _feature_window(self, customer_id: int, end_minute: int) -> np.ndarray:
        lookback = self.model.config.lookback_minutes
        start = end_minute + 1 - lookback
        block = np.zeros((lookback, N_FEATURES))
        if start < 0:
            pad = -start
            start = 0
        else:
            pad = 0
        span = end_minute + 1 - start
        for group, cls in _CLASS_OF_GROUP.items():
            block[pad:, self._slices[group]] = self.matrix.feature_block(
                customer_id, start, end_minute + 1, cls
            )[:span]
        block[pad:, self._slices["A4"]] = self.history.feature_block(
            customer_id, start, end_minute + 1
        )[:span]
        block[pad:, self._slices["A5"]] = self.graph.feature_block(
            customer_id, start, end_minute + 1
        )[:span]
        return block

    def feature_windows(
        self, customer_ids: Sequence[int], end_minute: int
    ) -> np.ndarray:
        """Stack the per-minute feature windows of several customers.

        Returns ``(len(customer_ids), lookback_minutes, N_FEATURES)`` —
        row ``i`` is exactly ``_feature_window(customer_ids[i], end_minute)``.
        This is the staging step of the batched lane, but is public API:
        any batch scorer (offline eval, what-if replay) can use it.
        """
        lookback = self.model.config.lookback_minutes
        stack = np.empty((len(customer_ids), lookback, N_FEATURES))
        for row, customer_id in enumerate(customer_ids):
            stack[row] = self._feature_window(customer_id, end_minute)
        return stack

    def _survival(self, customer_id: int) -> float:
        window = self.model.config.detect_window
        recent = self._hazards[customer_id][-window:]
        return float(np.exp(-np.sum(recent))) if recent else 1.0

    # ------------------------------------------------------------------
    # per-minute scoring (two lanes, one decision step)
    # ------------------------------------------------------------------
    def _score_one(self, customer_id: int, minute: int) -> float:
        """Per-customer reference lane: one model call for one customer."""
        window = self._feature_window(customer_id, minute)
        x = self.scaler.transform(window)[None, :, :]
        hazards = self.model.hazards_np(x, dtype=self.inference_dtype)[0]
        return float(hazards[-1])

    def _score_batched(self, customers: Sequence[int], minute: int) -> list[float]:
        """Batched lane: fused inference over every watched customer.

        Chunked into ``batch_block``-customer stacks so the float64
        staging buffer stays bounded (1000 customers × 240 minutes × 273
        features would be ~0.5 GB in one piece).  Chunking cannot change
        results: every op in :meth:`XatuModel.hazards_np_batched` is
        per-item bitwise stable, so the block size is a pure memory knob.
        """
        out: list[float] = []
        block = max(1, int(self.batch_block))
        for lo in range(0, len(customers), block):
            chunk = customers[lo : lo + block]
            x = self.feature_windows(chunk, minute)
            self.scaler.transform(x, out=x)
            staged = self.model.stage_pooled(x, dtype=self.inference_dtype)
            hazards = self.model.hazards_np_staged(
                staged, dtype=self.inference_dtype
            )
            out.extend(float(h) for h in hazards[:, -1])
        return out

    def _push_hazard(self, customer_id: int, hazard: float) -> int:
        """Append one hazard sample; returns evicted-entry count."""
        history = self._hazards[customer_id]
        history.append(hazard)
        detect_window = self.model.config.detect_window
        # Keep bounded memory for the rolling survival computation.
        if len(history) > 4 * detect_window:
            evicted = len(history) - 2 * detect_window
            self._hazards[customer_id] = history[-2 * detect_window :]
            return evicted
        return 0

    def _decide(self, customer_id: int, minute: int) -> OnlineAlert | None:
        """Threshold/suppression decision — always per-customer, both lanes."""
        if minute < self._suppressed_until.get(customer_id, -1):
            return None
        survival = self._survival(customer_id)
        if survival < self.threshold:
            # Suppress re-alerting until re-armed (CScrub notice or
            # rearm_after minutes, whichever first).
            self._suppressed_until[customer_id] = minute + self.rearm_after
            return OnlineAlert(customer_id, minute, survival)
        return None

    # ------------------------------------------------------------------
    def observe_minute(
        self,
        minute_or_flows: int | Sequence[FlowRecord],
        flows: list[FlowRecord] | None = None,
    ) -> list[OnlineAlert] | None:
        """Ingest one minute of sampled flows.

        Protocol form (:class:`repro.detect.Detector`): pass just the flow
        batch — the internal clock advances one minute per call (or jumps
        to the newest flow timestamp) and alerts surface via
        :meth:`poll_alerts`.

        The legacy form ``observe_minute(minute, flows)`` still works and
        returns the minute's alerts directly, but is deprecated in favour
        of the protocol form (or :meth:`step` when the caller owns the
        clock).
        """
        if flows is not None or isinstance(minute_or_flows, (int, np.integer)):
            warnings.warn(
                "OnlineXatu.observe_minute(minute, flows) is deprecated; "
                "use observe_minute(flows) (protocol form) or "
                "step(minute, flows) (explicit clock)",
                DeprecationWarning,
                stacklevel=2,
            )
            if isinstance(flows, FlowBatch):
                return self.step(int(minute_or_flows), flows)
            return self.step(int(minute_or_flows), list(flows or []))
        if isinstance(minute_or_flows, FlowBatch):
            # infer_minute, without materializing records: advance one
            # minute, or jump to the newest flow timestamp in the batch.
            minute = self._minute + 1
            if len(minute_or_flows):
                newest = int(minute_or_flows.array["timestamp"].max())
                minute = max(minute, newest)
            self.step(minute, minute_or_flows)
            return None
        batch = list(minute_or_flows)
        self.step(infer_minute(self._minute, batch), batch)
        return None

    def step(
        self, minute: int, flows: "FlowBatch | list[FlowRecord]"
    ) -> list[OnlineAlert]:
        """Ingest one minute of flows and return any new alerts.

        ``minute`` must advance monotonically; quiet customers still get a
        hazard evaluation (absence of traffic is signal too).  A
        :class:`FlowBatch` input takes the columnar lane — vectorized
        routing, classification and aggregation — which is bit-identical
        in resulting state and alerts to the scalar per-record loop.
        """
        if minute <= self._minute:
            raise ValueError(
                f"minutes must advance: got {minute} after {self._minute}"
            )
        self._minute = minute
        telemetry_on = obs_enabled()
        if telemetry_on:
            registry = get_registry()
            minute_start = time.perf_counter()
        ingested = 0
        unrouted = 0
        with trace("online.observe_minute"):
            if isinstance(flows, FlowBatch):
                ingested, unrouted = self._ingest_batch(flows)
            else:
                for flow in flows:
                    customer_id = self.customer_of.get(flow.dst_addr)
                    if customer_id is None:
                        unrouted += 1
                        continue
                    ingested += 1
                    self._watched.add(customer_id)
                    if self.config_online.watch_idle_minutes is not None:
                        self._last_seen[customer_id] = minute
                    self.matrix.add_flow(
                        customer_id, flow, self._classify(customer_id, flow)
                    )

            idle = self.config_online.watch_idle_minutes
            if idle is not None:
                # Stop scoring customers that went quiet: their survival has
                # long recovered and keeping them watched makes every minute
                # O(universe) instead of O(active).
                cutoff = minute - idle
                stale = [
                    customer_id
                    for customer_id, last in self._last_seen.items()
                    if last < cutoff
                ]
                for customer_id in stale:
                    self._watched.discard(customer_id)
                    self._last_seen.pop(customer_id, None)
                    self._hazards.pop(customer_id, None)

            alerts: list[OnlineAlert] = []
            evicted = 0
            customers = sorted(self._watched)
            with trace("online.score_customers"):
                if self.batched and customers:
                    batch_start = time.perf_counter() if telemetry_on else 0.0
                    last_hazards = self._score_batched(customers, minute)
                    for customer_id, hazard in zip(customers, last_hazards):
                        evicted += self._push_hazard(customer_id, hazard)
                        alert = self._decide(customer_id, minute)
                        if alert is not None:
                            alerts.append(alert)
                    if telemetry_on:
                        registry.histogram(
                            "online.batch_score_seconds",
                            "batched-lane scoring latency (all customers, one minute)",
                        ).observe(time.perf_counter() - batch_start)
                else:
                    for customer_id in customers:
                        score_start = time.perf_counter() if telemetry_on else 0.0
                        hazard = self._score_one(customer_id, minute)
                        evicted += self._push_hazard(customer_id, hazard)
                        if telemetry_on:
                            registry.histogram(
                                "online.score_seconds",
                                "per-customer scoring latency (one minute refresh)",
                            ).observe(time.perf_counter() - score_start)
                        alert = self._decide(customer_id, minute)
                        if alert is not None:
                            alerts.append(alert)
        self._pending.extend(alerts)
        # Bounded memory: matrix cells older than the model lookback (plus
        # a safety margin) and expired clustering alerts are dead state.
        margin = self.config_online.evict_margin_minutes
        evicted_cells = 0
        if margin >= 0:
            lookback = self.model.config.lookback_minutes
            evicted_cells = self.matrix.evict_before(minute + 1 - lookback - margin)
            self.graph.prune_before(minute)
        if telemetry_on:
            registry.counter("online.minutes", "minutes observed").inc()
            registry.counter("online.flows", "flows ingested and attributed").inc(
                ingested
            )
            if unrouted:
                registry.counter(
                    "online.flows_unrouted", "flows dropped: unknown destination"
                ).inc(unrouted)
            if alerts:
                registry.counter("online.alerts", "early-detection alerts emitted").inc(
                    len(alerts)
                )
            if evicted:
                registry.counter(
                    "online.hazard_evictions", "hazard-history entries evicted"
                ).inc(evicted)
            if evicted_cells:
                registry.counter(
                    "online.matrix_evictions", "traffic-matrix cells evicted"
                ).inc(evicted_cells)
            registry.gauge(
                "online.watched_customers", "customers currently scored each minute"
            ).set(len(self._watched))
            registry.histogram(
                "online.minute_seconds", "wall time of one observe_minute call"
            ).observe(time.perf_counter() - minute_start)
            registry.ewma("online.flow_rate", "flows per observed minute").observe(
                float(len(flows))
            )
        return alerts

    def poll_alerts(self) -> list[OnlineAlert]:
        """Drain alerts accumulated since the last poll."""
        pending, self._pending = self._pending, []
        return pending

    # ------------------------------------------------------------------
    # durable state (repro.serve checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Canonical snapshot of the *complete* online state.

        Covers everything scoring depends on — traffic-matrix windows, the
        A2/A4/A5 stores, scaler statistics, model weights, the hazard and
        suppression trackers, and the clock — so a detector restored from
        this dict emits byte-identical alerts to one that never stopped.
        All collections are emitted in sorted order, making equal states
        serialize to equal bytes (the serve-layer crash-equivalence
        guarantee).

        The routing table is deployment context, not detector state, and
        must be re-supplied on restore; the spoof cache is carried so
        restored runs stay bitwise-faithful even if the table changed.
        """
        if not isinstance(self.blocklist, (set, frozenset)):
            raise TypeError(
                "state_dict() requires a set-like blocklist; custom "
                "membership objects must be re-supplied on restore"
            )
        if not isinstance(self.customer_of, dict):
            raise TypeError(
                "state_dict() requires a dict customer_of; analytic routers "
                "are deployment context and must be re-supplied on restore"
            )
        cfg = self.config_online
        model_cfg = self.model.config
        return {
            "minute": self._minute,
            "config": {
                "threshold": self.threshold,
                "history_decay_minutes": cfg.history_decay_minutes,
                "clustering_window": cfg.clustering_window,
                "rearm_after": self.rearm_after,
                "start_minute": cfg.start_minute,
                "evict_margin_minutes": cfg.evict_margin_minutes,
                "watch_idle_minutes": cfg.watch_idle_minutes,
            },
            "model": {
                "meta": {
                    "n_features": model_cfg.n_features,
                    "hidden_size": model_cfg.hidden_size,
                    "dense_size": model_cfg.dense_size,
                    "detect_window": model_cfg.detect_window,
                    "pooling": model_cfg.pooling,
                    "seed": model_cfg.seed,
                    "timescales": [
                        [ts.name, ts.window, ts.span] for ts in model_cfg.timescales
                    ],
                },
                "weights": state_to_bytes(self.model.state_dict()),
            },
            "scaler": (
                None
                if self.scaler.mean_ is None
                else state_to_bytes(self.scaler.state_dict())
            ),
            "matrix": self.matrix.state_dict(),
            "prev_attackers": self.prev_attackers.state_dict(),
            "history": self.history.state_dict(),
            "graph": self.graph.state_dict(),
            "hazards": [
                [customer, list(values)]
                for customer, values in sorted(self._hazards.items())
                if values
            ],
            "suppressed_until": sorted(
                (customer, until) for customer, until in self._suppressed_until.items()
            ),
            "pending": [
                [a.customer_id, a.minute, a.survival] for a in self._pending
            ],
            "watched": sorted(self._watched),
            "last_seen": sorted(self._last_seen.items()),
            "spoof_cache": sorted(
                (addr, bool(spoofed)) for addr, spoofed in self._spoof_cache.items()
            ),
            "customer_of": sorted(self.customer_of.items()),
            "base_rate_of": sorted(self.base_rate_of.items()),
            "blocklist": sorted(int(a) for a in self.blocklist),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the complete online state captured by :meth:`state_dict`.

        Model weights and scaler statistics are loaded back into the
        current model/scaler objects (architectures must match).
        """
        cfg = state["config"]
        self.config_online = OnlineConfig(
            threshold=float(cfg["threshold"]),
            history_decay_minutes=float(cfg["history_decay_minutes"]),
            clustering_window=int(cfg["clustering_window"]),
            rearm_after=int(cfg["rearm_after"]),
            start_minute=int(cfg["start_minute"]),
            evict_margin_minutes=int(cfg["evict_margin_minutes"]),
            watch_idle_minutes=(
                None
                if cfg.get("watch_idle_minutes") is None
                else int(cfg["watch_idle_minutes"])
            ),
        )
        self.threshold = self.config_online.threshold
        self.rearm_after = self.config_online.rearm_after
        self.model.load_state_dict(state_from_bytes(state["model"]["weights"]))
        if state["scaler"] is not None:
            self.scaler.load_state_dict(state_from_bytes(state["scaler"]))
        self.customer_of = {int(a): int(c) for a, c in state["customer_of"]}
        self.base_rate_of = {int(c): float(r) for c, r in state["base_rate_of"]}
        self.blocklist = set(int(a) for a in state["blocklist"])
        self.matrix = TrafficMatrix()
        self.matrix.load_state_dict(state["matrix"])
        self.prev_attackers = PreviousAttackerStore()
        self.prev_attackers.load_state_dict(state["prev_attackers"])
        self.history = AttackHistoryStore()
        self.history.load_state_dict(state["history"])
        self.graph = AttackerCustomerGraph()
        self.graph.load_state_dict(state["graph"])
        self._minute = int(state["minute"])
        self._hazards = defaultdict(list)
        for customer, values in state["hazards"]:
            self._hazards[int(customer)] = [float(v) for v in values]
        self._suppressed_until = {
            int(customer): int(until) for customer, until in state["suppressed_until"]
        }
        self._pending = [
            OnlineAlert(int(c), int(m), float(s)) for c, m, s in state["pending"]
        ]
        self._watched = set(int(c) for c in state["watched"])
        self._last_seen = {
            int(c): int(m) for c, m in state.get("last_seen", [])
        }
        self._spoof_cache = {
            int(addr): bool(spoofed) for addr, spoofed in state["spoof_cache"]
        }

    @classmethod
    def from_state_dict(
        cls, state: dict, route_table: RouteTable, model: XatuModel | None = None
    ) -> "OnlineXatu":
        """Rebuild a detector from a :meth:`state_dict` snapshot.

        ``model`` may be supplied to reuse an existing architecture object;
        otherwise one is rebuilt from the snapshot's model metadata.  The
        routing table is deployment context and always comes from the
        caller.
        """
        from .model import TimescaleSpec, XatuModelConfig

        if model is None:
            meta = state["model"]["meta"]
            model = XatuModel(
                XatuModelConfig(
                    n_features=int(meta["n_features"]),
                    hidden_size=int(meta["hidden_size"]),
                    dense_size=int(meta["dense_size"]),
                    detect_window=int(meta["detect_window"]),
                    pooling=str(meta["pooling"]),
                    seed=int(meta["seed"]),
                    timescales=tuple(
                        TimescaleSpec(name, int(window), int(span))
                        for name, window, span in meta["timescales"]
                    ),
                )
            )
        online = cls(
            model=model,
            scaler=FeatureScaler(),
            customer_of={},
            blocklist=set(),
            route_table=route_table,
            config=OnlineConfig(threshold=float(state["config"]["threshold"])),
        )
        online.load_state_dict(state)
        return online
