"""Streaming deployment mode (§2.6): Xatu on live data feeds.

The offline pipeline consumes a fully-materialized :class:`Trace`; a real
deployment instead receives sampled NetFlow continuously, plus alert and
mitigation-end notices from the incumbent defense.  :class:`OnlineXatu`
implements that loop:

* ``observe_minute(flows)`` ingests one minute of sampled flows for all
  customers, tagging each flow's auxiliary source classes (blocklist
  membership, previous attackers, spoof check) and folding it into an
  internal :class:`~repro.netflow.TrafficMatrix`;
* ``ingest_cdet_alert`` / ``ingest_mitigation_end`` maintain the A2/A4/A5
  stores from the incumbent's feed (or from Xatu's own alerts);
* every minute, the survival score of each watched customer is refreshed
  and crossing alerts are emitted through ``poll_alerts()``.

Bounded memory: feature state older than the model lookback plus a safety
margin is discarded each minute.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..netflow.matrix import (
    SOURCE_CLASS_BLOCKLIST,
    SOURCE_CLASS_PREV_ATTACKER,
    SOURCE_CLASS_SPOOFED,
    TrafficMatrix,
)
from ..netflow.records import FlowRecord
from ..netflow.routing import RouteTable
from ..obs import get_registry, obs_enabled, trace
from ..signals.clustering import AttackerCustomerGraph
from ..signals.features import N_FEATURES, FeatureScaler, group_slices
from ..signals.history import AlertRecord, AttackHistoryStore, PreviousAttackerStore
from ..synth.attacks import AttackType
from .model import XatuModel

__all__ = ["OnlineAlert", "OnlineXatu"]

_CLASS_OF_GROUP = {
    "V": "all",
    "A1": SOURCE_CLASS_BLOCKLIST,
    "A2": SOURCE_CLASS_PREV_ATTACKER,
    "A3": SOURCE_CLASS_SPOOFED,
}


@dataclass(frozen=True, slots=True)
class OnlineAlert:
    """An early-detection alert emitted by the streaming detector."""

    customer_id: int
    minute: int
    survival: float


class OnlineXatu:
    """Minute-driven streaming detector around a trained model.

    Parameters
    ----------
    model / scaler / threshold:
        The trained artefacts (e.g. from a
        :class:`~repro.core.registry.XatuModelRegistry` entry).
    customer_of:
        Maps destination address → customer id for incoming flows.
    blocklist:
        Object supporting ``addr in blocklist`` (A1 membership).
    route_table:
        Spoof classification source (A3).
    base_rate_of:
        Customer id → baseline bytes/minute, for A4 severity bucketing.
    """

    def __init__(
        self,
        model: XatuModel,
        scaler: FeatureScaler,
        threshold: float,
        customer_of: dict[int, int],
        blocklist,
        route_table: RouteTable,
        base_rate_of: dict[int, float] | None = None,
        history_decay_minutes: float = 7 * 1440.0,
        clustering_window: int = 60,
        rearm_after: int = 10,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.model = model
        self.scaler = scaler
        self.threshold = threshold
        self.customer_of = dict(customer_of)
        self.blocklist = blocklist
        self.route_table = route_table
        self.base_rate_of = base_rate_of or {}
        self.rearm_after = rearm_after

        self.matrix = TrafficMatrix()
        self.prev_attackers = PreviousAttackerStore()
        self.history = AttackHistoryStore(decay_minutes=history_decay_minutes)
        self.graph = AttackerCustomerGraph(window_minutes=clustering_window)
        self._slices = group_slices()
        self._minute = -1
        self._hazards: dict[int, list[float]] = defaultdict(list)
        self._suppressed_until: dict[int, int] = {}
        self._pending: list[OnlineAlert] = []
        self._spoof_cache: dict[int, bool] = {}
        self._watched: set[int] = set(self.customer_of.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        attack_type: str | None,
        customer_of: dict[int, int],
        blocklist,
        route_table: RouteTable,
        **kwargs,
    ) -> "OnlineXatu":
        """Build a streaming detector from a trained
        :class:`~repro.core.registry.XatuModelRegistry` entry (its model,
        scaler, and calibrated threshold)."""
        entry = registry.entry_for(attack_type)
        return cls(
            model=entry.model,
            scaler=entry.scaler,
            threshold=entry.threshold,
            customer_of=customer_of,
            blocklist=blocklist,
            route_table=route_table,
            **kwargs,
        )

    @property
    def current_minute(self) -> int:
        return self._minute

    def ingest_cdet_alert(self, alert: AlertRecord) -> None:
        """Feed one incumbent-defense (or Xatu self-) alert into the stores."""
        self.prev_attackers.add_alert(alert)
        self.history.add_alert(
            alert, self.base_rate_of.get(alert.customer_id, 1.0)
        )
        self.graph.add_alert(alert.detect_minute, alert.customer_id, alert.attackers)

    def ingest_mitigation_end(self, customer_id: int, minute: int) -> None:
        """CScrub mitigation-end notice: re-arm detection for the customer."""
        self._suppressed_until[customer_id] = minute

    # ------------------------------------------------------------------
    def _classify(self, customer_id: int, flow: FlowRecord) -> list[str]:
        classes: list[str] = []
        if flow.src_addr in self.blocklist:
            classes.append(SOURCE_CLASS_BLOCKLIST)
        if self.prev_attackers.is_previous_attacker(
            customer_id, flow.src_addr, flow.timestamp
        ):
            classes.append(SOURCE_CLASS_PREV_ATTACKER)
        spoofed = self._spoof_cache.get(flow.src_addr)
        if spoofed is None:
            spoofed = self.route_table.is_spoofed(flow.src_addr)
            self._spoof_cache[flow.src_addr] = spoofed
        if spoofed:
            classes.append(SOURCE_CLASS_SPOOFED)
        return classes

    def _feature_window(self, customer_id: int, end_minute: int) -> np.ndarray:
        lookback = self.model.config.lookback_minutes
        start = end_minute + 1 - lookback
        block = np.zeros((lookback, N_FEATURES))
        if start < 0:
            pad = -start
            start = 0
        else:
            pad = 0
        span = end_minute + 1 - start
        for group, cls in _CLASS_OF_GROUP.items():
            block[pad:, self._slices[group]] = self.matrix.feature_block(
                customer_id, start, end_minute + 1, cls
            )[:span]
        block[pad:, self._slices["A4"]] = self.history.feature_block(
            customer_id, start, end_minute + 1
        )[:span]
        block[pad:, self._slices["A5"]] = self.graph.feature_block(
            customer_id, start, end_minute + 1
        )[:span]
        return block

    def _survival(self, customer_id: int) -> float:
        window = self.model.config.detect_window
        recent = self._hazards[customer_id][-window:]
        return float(np.exp(-np.sum(recent))) if recent else 1.0

    # ------------------------------------------------------------------
    def observe_minute(
        self, minute: int, flows: list[FlowRecord]
    ) -> list[OnlineAlert]:
        """Ingest one minute of flows and return any new alerts.

        ``minute`` must advance monotonically; quiet customers still get a
        hazard evaluation (absence of traffic is signal too).
        """
        if minute <= self._minute:
            raise ValueError(
                f"minutes must advance: got {minute} after {self._minute}"
            )
        self._minute = minute
        telemetry_on = obs_enabled()
        if telemetry_on:
            registry = get_registry()
            minute_start = time.perf_counter()
        ingested = 0
        unrouted = 0
        with trace("online.observe_minute"):
            for flow in flows:
                customer_id = self.customer_of.get(flow.dst_addr)
                if customer_id is None:
                    unrouted += 1
                    continue
                ingested += 1
                self._watched.add(customer_id)
                self.matrix.add_flow(
                    customer_id, flow, self._classify(customer_id, flow)
                )

            alerts: list[OnlineAlert] = []
            evicted = 0
            detect_window = self.model.config.detect_window
            with trace("online.score_customers"):
                for customer_id in sorted(self._watched):
                    score_start = time.perf_counter() if telemetry_on else 0.0
                    window = self._feature_window(customer_id, minute)
                    x = self.scaler.transform(window)[None, :, :]
                    hazards = self.model.hazards_np(x)[0]
                    self._hazards[customer_id].append(float(hazards[-1]))
                    # Keep bounded memory for the rolling survival computation.
                    if len(self._hazards[customer_id]) > 4 * detect_window:
                        evicted += len(self._hazards[customer_id]) - 2 * detect_window
                        self._hazards[customer_id] = self._hazards[customer_id][-2 * detect_window:]
                    if telemetry_on:
                        registry.histogram(
                            "online.score_seconds",
                            "per-customer scoring latency (one minute refresh)",
                        ).observe(time.perf_counter() - score_start)
                    if minute < self._suppressed_until.get(customer_id, -1):
                        continue
                    survival = self._survival(customer_id)
                    if survival < self.threshold:
                        alerts.append(OnlineAlert(customer_id, minute, survival))
                        # Suppress re-alerting until re-armed (CScrub notice or
                        # rearm_after minutes, whichever first).
                        self._suppressed_until[customer_id] = minute + self.rearm_after
        self._pending.extend(alerts)
        if telemetry_on:
            registry.counter("online.minutes", "minutes observed").inc()
            registry.counter("online.flows", "flows ingested and attributed").inc(
                ingested
            )
            if unrouted:
                registry.counter(
                    "online.flows_unrouted", "flows dropped: unknown destination"
                ).inc(unrouted)
            if alerts:
                registry.counter("online.alerts", "early-detection alerts emitted").inc(
                    len(alerts)
                )
            if evicted:
                registry.counter(
                    "online.hazard_evictions", "hazard-history entries evicted"
                ).inc(evicted)
            registry.gauge(
                "online.watched_customers", "customers currently scored each minute"
            ).set(len(self._watched))
            registry.histogram(
                "online.minute_seconds", "wall time of one observe_minute call"
            ).observe(time.perf_counter() - minute_start)
            registry.ewma("online.flow_rate", "flows per observed minute").observe(
                float(len(flows))
            )
        return alerts

    def poll_alerts(self) -> list[OnlineAlert]:
        """Drain alerts accumulated since the last poll."""
        pending, self._pending = self._pending, []
        return pending
