"""Per-attack-type model registry (§5.3).

"Xatu trains separate models for each attack type and evaluates them
correspondingly."  The registry trains one model per attack type with
enough labeled events, plus a pooled ``_default`` model covering rare
types, and persists/restores the whole set (weights + scaler statistics +
calibrated thresholds) to a directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..detect.detectors import DetectionAlert
from ..nn.serialization import load_state, save_module
from ..signals.features import FeatureExtractor, FeatureScaler
from ..synth.attacks import AttackType
from ..synth.scenario import Trace
from .dataset import DatasetBuilder
from .model import TimescaleSpec, XatuModel, XatuModelConfig
from .trainer import TrainConfig, TrainResult, XatuTrainer

__all__ = ["TypedModelEntry", "XatuModelRegistry"]

DEFAULT_KEY = "_default"


@dataclass
class TypedModelEntry:
    """One trained model plus its scaler and calibrated threshold."""

    model: XatuModel
    scaler: FeatureScaler
    threshold: float = 0.5
    n_train_events: int = 0
    train_result: TrainResult | None = None


def _model_config_to_meta(cfg: XatuModelConfig) -> dict:
    return {
        "n_features": cfg.n_features,
        "hidden_size": cfg.hidden_size,
        "dense_size": cfg.dense_size,
        "detect_window": cfg.detect_window,
        "seed": cfg.seed,
        "timescales": [[ts.name, ts.window, ts.span] for ts in cfg.timescales],
    }


def _model_config_from_meta(meta: dict) -> XatuModelConfig:
    return XatuModelConfig(
        n_features=meta["n_features"],
        hidden_size=meta["hidden_size"],
        dense_size=meta["dense_size"],
        detect_window=meta["detect_window"],
        seed=meta.get("seed", 0),
        timescales=tuple(
            TimescaleSpec(name, window, span)
            for name, window, span in meta["timescales"]
        ),
    )


class XatuModelRegistry:
    """Trains, stores, and serves per-attack-type Xatu models."""

    def __init__(self, model_config: XatuModelConfig, train_config: TrainConfig) -> None:
        self.model_config = model_config
        self.train_config = train_config
        self.entries: dict[str, TypedModelEntry] = {}

    # ------------------------------------------------------------------
    def train(
        self,
        trace: Trace,
        extractor: FeatureExtractor,
        alerts: list[DetectionAlert],
        train_range: tuple[int, int],
        val_range: tuple[int, int] | None = None,
        min_events_per_type: int = 4,
        seed: int = 0,
    ) -> dict[str, TypedModelEntry]:
        """Fit one model per sufficiently-frequent type plus the pooled default.

        Types with fewer than ``min_events_per_type`` labeled training
        events fall through to the ``_default`` model at serving time.
        """
        lo, hi = train_range
        counts: dict[str, int] = {}
        for alert in alerts:
            if alert.event_id >= 0 and lo <= alert.detect_minute < hi:
                name = trace.events[alert.event_id].attack_type.value
                counts[name] = counts.get(name, 0) + 1

        builder = DatasetBuilder(
            trace, extractor, self.model_config, rng=np.random.default_rng(seed)
        )

        def fit(attack_types: set[str] | None, n_events: int) -> TypedModelEntry:
            train_set = builder.build(alerts, train_range, attack_types=attack_types)
            val_set = None
            if val_range is not None:
                try:
                    val_set = builder.build(
                        alerts, val_range, attack_types=attack_types,
                        scaler=train_set.scaler,
                    )
                except ValueError:
                    val_set = None
            model = XatuModel(self.model_config)
            result = XatuTrainer(model, self.train_config).fit(train_set, val_set)
            return TypedModelEntry(
                model=model,
                scaler=train_set.scaler,
                n_train_events=n_events,
                train_result=result,
            )

        self.entries = {DEFAULT_KEY: fit(None, sum(counts.values()))}
        for type_name, n in counts.items():
            if n >= min_events_per_type:
                self.entries[type_name] = fit({type_name}, n)
        return self.entries

    # ------------------------------------------------------------------
    def entry_for(self, attack_type: AttackType | str | None) -> TypedModelEntry:
        """The model serving a given attack type (pooled default fallback)."""
        if not self.entries:
            raise RuntimeError("registry has no trained models")
        key = (
            attack_type.value
            if isinstance(attack_type, AttackType)
            else (attack_type or DEFAULT_KEY)
        )
        return self.entries.get(key, self.entries[DEFAULT_KEY])

    def set_threshold(self, key: str, threshold: float) -> None:
        if key not in self.entries:
            raise KeyError(f"no model for {key!r}")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.entries[key].threshold = threshold

    def models_dict(self) -> dict[str, XatuModel]:
        """{key: model} in the shape `XatuDetector` accepts."""
        return {k: e.model for k, e in self.entries.items()}

    def scalers_dict(self) -> dict[str, FeatureScaler]:
        return {k: e.scaler for k, e in self.entries.items()}

    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist every entry (weights, scaler, threshold) under a directory."""
        if not self.entries:
            raise RuntimeError("nothing to save: registry is untrained")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "model_config": _model_config_to_meta(self.model_config),
            "entries": {},
        }
        for key, entry in self.entries.items():
            save_module(entry.model, directory / f"{key}.npz")
            np.savez(directory / f"{key}.scaler.npz", **entry.scaler.state_dict())
            manifest["entries"][key] = {
                "threshold": entry.threshold,
                "n_train_events": entry.n_train_events,
            }
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
        return directory

    @classmethod
    def load(
        cls, directory: str | Path, train_config: TrainConfig | None = None
    ) -> "XatuModelRegistry":
        """Restore a registry saved with :meth:`save`."""
        directory = Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        model_config = _model_config_from_meta(manifest["model_config"])
        registry = cls(model_config, train_config or TrainConfig())
        for key, meta in manifest["entries"].items():
            model = XatuModel(model_config)
            state, _ = load_state(directory / f"{key}.npz")
            model.load_state_dict(state)
            scaler = FeatureScaler()
            with np.load(directory / f"{key}.scaler.npz") as archive:
                scaler.load_state_dict({k: archive[k] for k in archive.files})
            registry.entries[key] = TypedModelEntry(
                model=model,
                scaler=scaler,
                threshold=meta["threshold"],
                n_train_events=meta["n_train_events"],
            )
        return registry
