"""Reverse-mode automatic differentiation over numpy arrays.

This is the substrate that replaces PyTorch for the Xatu reproduction: a
small, dependency-free tape-based autograd engine.  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations that produced it; calling
:meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients.

Only the operations needed by the multi-timescale LSTM, the dense heads, and
the survival/BCE losses are implemented, but each is implemented with full
broadcasting support so the engine is usable as a general library.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from ..analysis import sanitizer as _sanitizer

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "inference_dtype",
    "resolve_inference_dtype",
    "set_tape_hook",
    "get_tape_hook",
]


class _TensorMode(threading.local):
    """Per-thread autograd mode: the grad flag and active inference dtype.

    Thread-local, not a module global: concurrent scoring threads (e.g.
    repro.serve's thread-backed shards) enter ``no_grad()`` independently,
    and with a shared flag one worker's exit could restore the value
    another worker saved — leaving gradients disabled process-wide.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.inference_dtype: np.dtype | None = None


_MODE = _TensorMode()

# Optional profiling hook (see repro.obs.profiler): an object with
# ``record_forward(op, seconds)`` / ``record_backward(op, seconds)``.
# None (the default) keeps the tape's hot path to one extra branch.
_TAPE_HOOK = None


def set_tape_hook(hook):
    """Install (or clear, with None) the tape profiling hook.

    Returns the previous hook so callers can restore it.
    """
    global _TAPE_HOOK
    previous = _TAPE_HOOK
    _TAPE_HOOK = hook
    return previous


def get_tape_hook():
    """The currently installed tape profiling hook, or None."""
    return _TAPE_HOOK


class no_grad:
    """Disable graph construction (inference mode).

    Usable three ways, all exception-safe — the previous grad mode is
    restored even when the guarded body raises, and nesting works::

        with no_grad():
            model(x)

        @no_grad          # bare decorator
        def infer(x): ...

        @no_grad()        # called decorator (PyTorch style)
        def infer(x): ...
    """

    def __new__(cls, func: Callable | None = None):
        if func is not None:
            if not callable(func):
                raise TypeError("no_grad takes no arguments; use @no_grad or @no_grad()")

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with cls():
                    return func(*args, **kwargs)

            return wrapper
        return super().__new__(cls)

    def __enter__(self) -> "no_grad":
        self._prev = _MODE.grad_enabled
        _MODE.grad_enabled = False
        return self

    def __exit__(self, *exc) -> bool:
        # Always restore the saved flag — including when the body raised
        # (``exc`` is then the in-flight exception info) and under nesting.
        _MODE.grad_enabled = getattr(self, "_prev", True)
        return False  # never swallow the exception

    def __call__(self, func: Callable) -> Callable:
        """Support ``@no_grad()`` — decorate with a fresh guard per call."""

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with type(self)():
                return func(*args, **kwargs)

        return wrapper


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded on the autograd tape."""
    return _MODE.grad_enabled


class inference_dtype:
    """Run no-grad inference in a reduced-precision dtype (e.g. float32).

    While the context is active *and* gradients are disabled, new tensors
    and the fused kernels compute in ``dtype`` instead of float64.  Under
    grad mode the policy is ignored entirely, so training and gradcheck
    always stay float64::

        with no_grad(), inference_dtype(np.float32):
            hazards = model(Tensor(x))
    """

    def __init__(self, dtype) -> None:
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise TypeError(f"inference dtype must be a float dtype, got {dtype}")
        self.dtype = dtype

    def __enter__(self) -> "inference_dtype":
        self._prev = _MODE.inference_dtype
        _MODE.inference_dtype = self.dtype
        return self

    def __exit__(self, *exc) -> bool:
        _MODE.inference_dtype = getattr(self, "_prev", None)
        return False


def resolve_inference_dtype() -> np.dtype | None:
    """The active reduced-precision dtype, or None outside no-grad inference."""
    if _MODE.grad_enabled:
        return None
    return _MODE.inference_dtype


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default so that the
        gradient checks in the test suite are numerically tight.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        dtype = resolve_inference_dtype()
        self.data = np.asarray(data, dtype=np.float64 if dtype is None else dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _MODE.grad_enabled
        self._parents = _parents if _MODE.grad_enabled else ()
        self._backward = _backward if _MODE.grad_enabled else None
        self.name = name
        # Sanitizer (REPRO_SANITIZE=1): recorded-op outputs are frozen so
        # any in-place write between forward and backward raises at the
        # mutation site.  Leaves stay writable (optimizers, gradcheck).
        if self._parents and _sanitizer.sanitize_enabled():
            _sanitizer.freeze_tape_buffer(self.data)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_any(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a direct reference, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1.0 and must match this tensor's shape (or be a
        scalar broadcastable to it).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(np.asarray(grad, dtype=np.float64), self.data.shape)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        hook = _TAPE_HOOK
        grads: dict[int, np.ndarray] = {id(self): np.array(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is not None:
                if hook is None:
                    pairs = node._backward(node_grad)
                else:
                    start = time.perf_counter()
                    pairs = node._backward(node_grad)
                    hook.record_backward(
                        node.name or "anon", time.perf_counter() - start
                    )
                for parent, pgrad in pairs:
                    pgrad = _unbroadcast(
                        np.asarray(pgrad, dtype=np.float64), parent.data.shape
                    )
                    if id(parent) in grads:
                        grads[id(parent)] = grads[id(parent)] + pgrad
                    else:
                        grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def _binary(
        self,
        other,
        forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
        backward: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], tuple],
        op: str = "",
    ) -> "Tensor":
        other = Tensor.from_any(other)
        hook = _TAPE_HOOK
        if hook is None:
            out_data = forward(self.data, other.data)
            op = ""
        else:
            op = op or getattr(forward, "__name__", "binary")
            start = time.perf_counter()
            out_data = forward(self.data, other.data)
            hook.record_forward(op, time.perf_counter() - start)
        if not _MODE.grad_enabled or not (self.requires_grad or other.requires_grad or self._parents or other._parents):
            return Tensor(out_data, name=op)
        a, b = self, other

        def back(grad: np.ndarray):
            ga, gb = backward(grad, a.data, b.data, out_data)
            return ((a, ga), (b, gb))

        return Tensor(out_data, _parents=(a, b), _backward=back, name=op)

    def _unary(
        self,
        forward: Callable[[np.ndarray], np.ndarray],
        backward: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        op: str = "",
    ) -> "Tensor":
        hook = _TAPE_HOOK
        if hook is None:
            out_data = forward(self.data)
            op = ""
        else:
            op = op or getattr(forward, "__name__", "unary")
            start = time.perf_counter()
            out_data = forward(self.data)
            hook.record_forward(op, time.perf_counter() - start)
        if not _MODE.grad_enabled or not (self.requires_grad or self._parents):
            return Tensor(out_data, name=op)
        a = self

        def back(grad: np.ndarray):
            return ((a, backward(grad, a.data, out_data)),)

        return Tensor(out_data, _parents=(a,), _backward=back, name=op)

    def __add__(self, other) -> "Tensor":
        return self._binary(other, np.add, lambda g, a, b, o: (g, g))

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        return self._binary(other, np.subtract, lambda g, a, b, o: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.from_any(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return self._binary(other, np.multiply, lambda g, a, b, o: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return self._binary(
            other, np.divide, lambda g, a, b, o: (g / b, -g * a / (b * b))
        )

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.from_any(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self._unary(np.negative, lambda g, a, o: -g)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports python scalars")
        return self._unary(
            lambda a: np.power(a, exponent),
            lambda g, a, o: g * exponent * np.power(a, exponent - 1),
            op="pow",
        )

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return self._unary(np.exp, lambda g, a, o: g * o)

    def log(self) -> "Tensor":
        return self._unary(np.log, lambda g, a, o: g / a)

    def sigmoid(self) -> "Tensor":
        def fwd(a: np.ndarray) -> np.ndarray:
            out = np.empty_like(a)
            pos = a >= 0
            out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
            ea = np.exp(a[~pos])
            out[~pos] = ea / (1.0 + ea)
            return out

        return self._unary(fwd, lambda g, a, o: g * o * (1.0 - o), op="sigmoid")

    def tanh(self) -> "Tensor":
        return self._unary(np.tanh, lambda g, a, o: g * (1.0 - o * o))

    def relu(self) -> "Tensor":
        return self._unary(
            lambda a: np.maximum(a, 0.0), lambda g, a, o: g * (a > 0), op="relu"
        )

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))`` — used for hazard rates."""
        return self._unary(
            lambda a: np.logaddexp(0.0, a),
            lambda g, a, o: g * (1.0 / (1.0 + np.exp(-np.clip(a, -500, 500)))),
            op="softplus",
        )

    def clip(self, lo: float, hi: float) -> "Tensor":
        return self._unary(
            lambda a: np.clip(a, lo, hi),
            lambda g, a, o: g * ((a >= lo) & (a <= hi)),
            op="clip",
        )

    # ------------------------------------------------------------------
    # linear algebra & shaping
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        other = Tensor.from_any(other)

        def back(g, a, b, o):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            if b.ndim == 1:
                # (..., n, k) @ (k,) -> (..., n): the vector's gradient sums
                # the outer products over every leading/batch dimension.
                ga = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                gb = (
                    a.T @ g
                    if a.ndim == 2
                    else (a * g[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                )
                return (ga, gb)
            if a.ndim == 1:
                # (k,) @ (..., k, m) -> (..., m)
                ga = (b * g[..., None, :]).reshape(-1, b.shape[-2], b.shape[-1]).sum(axis=(0, 2)) if b.ndim > 2 else b @ g
                gb = a[:, None] * g[..., None, :]
                return (ga, gb)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (ga, gb)

        return self._binary(other, np.matmul, back, op="matmul")

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(order)
        return self._unary(
            lambda a: np.transpose(a, order),
            lambda g, a, o: np.transpose(g, inverse),
            op="transpose",
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        return self._unary(
            lambda a: a.reshape(shape), lambda g, a, o: g.reshape(original),
            op="reshape",
        )

    def __getitem__(self, key) -> "Tensor":
        def back(g, a, o):
            full = np.zeros_like(a)
            np.add.at(full, key, g)
            return full

        return self._unary(lambda a: a[key], back, op="getitem")

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def back(g, a, o):
            if axis is None:
                return np.broadcast_to(g, a.shape)
            g2 = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g2, a.shape)

        return self._unary(lambda a: a.sum(axis=axis, keepdims=keepdims), back, op="sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        def back(g, a, o):
            if axis is None:
                mask = (a == o).astype(np.float64)
                mask /= mask.sum()
                return g * mask
            o2 = o if keepdims else np.expand_dims(o, axis)
            g2 = g if keepdims else np.expand_dims(g, axis)
            mask = (a == o2).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return g2 * mask

        return self._unary(lambda a: a.max(axis=axis, keepdims=keepdims), back, op="max")

    def cumsum(self, axis: int = -1) -> "Tensor":
        return self._unary(
            lambda a: np.cumsum(a, axis=axis),
            lambda g, a, o: np.flip(np.cumsum(np.flip(g, axis=axis), axis=axis), axis=axis),
            op="cumsum",
        )

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor.from_any(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        needs_grad = _MODE.grad_enabled and any(
            t.requires_grad or t._parents for t in tensors
        )
        if not needs_grad:
            return Tensor(out_data)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def back(grad: np.ndarray):
            pieces = []
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                pieces.append((t, grad[tuple(index)]))
            return tuple(pieces)

        return Tensor(out_data, _parents=tuple(tensors), _backward=back)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.from_any(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)
        needs_grad = _MODE.grad_enabled and any(
            t.requires_grad or t._parents for t in tensors
        )
        if not needs_grad:
            return Tensor(out_data)

        def back(grad: np.ndarray):
            slabs = np.split(grad, len(tensors), axis=axis)
            return tuple(
                (t, np.squeeze(s, axis=axis)) for t, s in zip(tensors, slabs)
            )

        return Tensor(out_data, _parents=tuple(tensors), _backward=back)


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Iterable[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic gradients of ``func`` against central differences.

    ``func`` must return a scalar Tensor.  Raises ``AssertionError`` with a
    diagnostic message on mismatch; returns True on success.
    """
    inputs = list(inputs)
    for t in inputs:
        t.zero_grad()
    out = func(*inputs)
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        nflat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = func(*inputs).item()
            flat[i] = orig - eps
            lo = func(*inputs).item()
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs error {worst:.3e}"
            )
    return True
