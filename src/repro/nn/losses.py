"""Loss functions: binary cross-entropy and the SAFE survival loss.

The SAFE loss (Zheng, Yuan & Wu, AAAI 2019 — cited as [89] in the paper and
restated in the paper's Appendix C) trains a model that emits per-step hazard
rates ``lambda_t`` so that the survival probability

    S_t = exp(-sum_{k<=t} lambda_k)

is driven *low* before the labelled event for attack series (maximize the
likelihood of detecting at any time before ground-truth detection,
``P{T < t_i} = 1 - S_{t_i}``) and *high* throughout non-attack series
(``P{T >= t_i} = S_{t_i}``).  The per-series negative log likelihood is

    loss_i = -c_i * log(1 - S_{t_i}) - (1 - c_i) * log(S_{t_i})

where ``c_i`` flags an attack series and ``t_i`` is its label time (or the
series end for non-attack series).
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = [
    "binary_cross_entropy",
    "hazard_to_survival",
    "safe_survival_loss",
]

_EPS = 1e-12


def binary_cross_entropy(probs: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets.

    Used by the "Xatu w/o survival model" ablation (Figure 18d), where the
    instantaneous attack probability is trained as a plain classifier.
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets, dtype=np.float64)
    p = probs.clip(_EPS, 1.0 - _EPS)
    t = Tensor(targets)
    losses = -(t * p.log() + (1.0 - t) * (1.0 - p).log())
    return losses.mean()


def hazard_to_survival(hazards: Tensor) -> Tensor:
    """Convert per-step hazard rates into survival probabilities.

    ``hazards`` has shape ``(..., time)`` with non-negative entries; the
    result ``S`` has the same shape with ``S[..., t] = exp(-sum_{k<=t} h_k)``.
    """
    return (-hazards.cumsum(axis=-1)).exp()


def safe_survival_loss(
    hazards: Tensor,
    is_attack: np.ndarray,
    label_times: np.ndarray,
) -> Tensor:
    """SAFE negative log-likelihood over a batch of hazard sequences.

    Parameters
    ----------
    hazards:
        ``(batch, time)`` non-negative hazard rates ``lambda_t``.
    is_attack:
        ``(batch,)`` 0/1 flags ``c_i``.
    label_times:
        ``(batch,)`` integer indices ``t_i`` (0-based, inclusive): the
        ground-truth detection step for attack series, or the final step for
        non-attack series.

    Returns the mean loss over the batch.
    """
    is_attack = np.asarray(is_attack, dtype=np.float64).reshape(-1)
    label_times = np.asarray(label_times, dtype=np.int64).reshape(-1)
    batch, steps = hazards.shape
    if is_attack.shape[0] != batch or label_times.shape[0] != batch:
        raise ValueError("labels must match the hazard batch size")
    if (label_times < 0).any() or (label_times >= steps).any():
        raise ValueError("label_times out of range for hazard sequence")

    cumulative = hazards.cumsum(axis=-1)
    rows = np.arange(batch)
    total_hazard = cumulative[rows, label_times]  # H_i = sum_{k<=t_i} lambda_k
    survival = (-total_hazard).exp()  # S_{t_i}

    c = Tensor(is_attack)
    event_prob = (1.0 - survival).clip(_EPS, 1.0)
    censor_prob = survival.clip(_EPS, 1.0)
    losses = -(c * event_prob.log() + (1.0 - c) * censor_prob.log())
    return losses.mean()
