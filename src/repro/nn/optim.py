"""Optimizers for the numpy autograd engine.

The paper trains Xatu with Adam (learning rate 1e-4, batch size 64, §5.3);
SGD with momentum is included for the ablation/test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  LSTMs unrolled over hundreds of steps are
    prone to exploding gradients; the trainer clips every step.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for g in grads:
        total += float(np.sum(g * g))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer; holds the parameter list and zero_grad helper."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with bias correction.

    Defaults follow the paper's training setup: ``lr=1e-4``.
    """

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._step_count
        bc2 = 1.0 - b2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
