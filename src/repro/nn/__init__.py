"""A from-scratch numpy deep-learning substrate.

Replaces PyTorch for this reproduction: reverse-mode autograd, LSTM/dense
layers, Adam, and the SAFE survival loss used to train Xatu.
"""

from .autograd import Tensor, gradcheck, no_grad
from .layers import LSTM, AvgPool1D, Dense, Dropout, MaxPool1D, Module, Sequential
from .losses import binary_cross_entropy, hazard_to_survival, safe_survival_loss
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_module_into, load_state, save_module

__all__ = [
    "Tensor",
    "no_grad",
    "gradcheck",
    "Module",
    "Dense",
    "LSTM",
    "AvgPool1D",
    "MaxPool1D",
    "Dropout",
    "Sequential",
    "binary_cross_entropy",
    "hazard_to_survival",
    "safe_survival_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_module",
    "load_state",
    "load_module_into",
]
