"""A from-scratch numpy deep-learning substrate.

Replaces PyTorch for this reproduction: reverse-mode autograd, LSTM/dense
layers, Adam, and the SAFE survival loss used to train Xatu.
"""

from .autograd import (
    Tensor,
    gradcheck,
    inference_dtype,
    is_grad_enabled,
    no_grad,
    resolve_inference_dtype,
)
from .fused import avg_pool_1d, lstm_sequence, max_pool_1d
from .layers import (
    LSTM,
    AvgPool1D,
    Dense,
    Dropout,
    MaxPool1D,
    Module,
    Sequential,
    set_fused,
)
from .losses import binary_cross_entropy, hazard_to_survival, safe_survival_loss
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_module_into, load_state, save_module

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "inference_dtype",
    "resolve_inference_dtype",
    "gradcheck",
    "lstm_sequence",
    "avg_pool_1d",
    "max_pool_1d",
    "set_fused",
    "Module",
    "Dense",
    "LSTM",
    "AvgPool1D",
    "MaxPool1D",
    "Dropout",
    "Sequential",
    "binary_cross_entropy",
    "hazard_to_survival",
    "safe_survival_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_module",
    "load_state",
    "load_module_into",
]
