"""Persisting model weights to disk.

Models are saved as ``.npz`` archives of their ``state_dict()``; a tiny JSON
sidecar records arbitrary metadata (attack type, calibrated threshold, and
the hyper-parameters needed to rebuild the architecture).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_state", "load_module_into"]


def save_module(
    module: Module, path: str | Path, metadata: dict | None = None
) -> Path:
    """Write ``module.state_dict()`` (and optional metadata) to ``path``.

    ``path`` gets a ``.npz`` suffix if it has none; metadata goes to a
    sibling ``.json`` file.  Returns the weights path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **module.state_dict())
    if metadata is not None:
        meta_path = path.with_suffix(".json")
        meta_path.write_text(json.dumps(metadata, indent=2, sort_keys=True))
    return path


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a weights archive and its metadata sidecar (if present)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {key: archive[key].copy() for key in archive.files}
    meta_path = path.with_suffix(".json")
    metadata = json.loads(meta_path.read_text()) if meta_path.exists() else {}
    return state, metadata


def load_module_into(module: Module, path: str | Path) -> dict:
    """Load weights from ``path`` into an existing module; return metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state)
    return metadata
