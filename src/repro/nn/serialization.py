"""Persisting model weights to disk.

Models are saved as ``.npz`` archives of their ``state_dict()``; a tiny JSON
sidecar records arbitrary metadata (attack type, calibrated threshold, and
the hyper-parameters needed to rebuild the architecture).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = [
    "save_module",
    "load_state",
    "load_module_into",
    "state_to_bytes",
    "state_from_bytes",
]


def save_module(
    module: Module, path: str | Path, metadata: dict | None = None
) -> Path:
    """Write ``module.state_dict()`` (and optional metadata) to ``path``.

    ``path`` gets a ``.npz`` suffix if it has none; metadata goes to a
    sibling ``.json`` file.  Returns the weights path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **module.state_dict())
    if metadata is not None:
        meta_path = path.with_suffix(".json")
        meta_path.write_text(json.dumps(metadata, indent=2, sort_keys=True))
    return path


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a weights archive and its metadata sidecar (if present)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {key: archive[key].copy() for key in archive.files}
    meta_path = path.with_suffix(".json")
    metadata = json.loads(meta_path.read_text()) if meta_path.exists() else {}
    return state, metadata


_STATE_MAGIC = b"RSTATE1\n"


def state_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialize an array state dict to deterministic in-memory bytes.

    Unlike ``np.savez`` (whose zip entries embed wall-clock timestamps),
    this container is a pure function of the arrays: a JSON index of
    ``(key, dtype, shape)`` in sorted key order followed by the raw
    buffers.  The serving checkpoints rely on that determinism for their
    byte-identity crash-equivalence guarantee.
    """
    index = []
    buffer = io.BytesIO()
    for key in sorted(state):
        arr = np.ascontiguousarray(np.asarray(state[key]))
        index.append({"key": key, "dtype": str(arr.dtype), "shape": list(arr.shape)})
        buffer.write(arr.tobytes())
    header = json.dumps(index, sort_keys=True).encode("utf-8")
    return (
        _STATE_MAGIC
        + len(header).to_bytes(8, "little")
        + header
        + buffer.getvalue()
    )


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    if not blob.startswith(_STATE_MAGIC):
        raise ValueError("not a repro state blob (bad magic)")
    offset = len(_STATE_MAGIC)
    header_len = int.from_bytes(blob[offset : offset + 8], "little")
    offset += 8
    index = json.loads(blob[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    state: dict[str, np.ndarray] = {}
    for entry in index:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        nbytes = dtype.itemsize * count
        arr = np.frombuffer(blob[offset : offset + nbytes], dtype=dtype).reshape(shape)
        state[entry["key"]] = arr.copy()
        offset += nbytes
    return state


def load_module_into(module: Module, path: str | Path) -> dict:
    """Load weights from ``path`` into an existing module; return metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state)
    return metadata
