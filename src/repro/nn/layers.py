"""Neural network layers built on the :mod:`repro.nn.autograd` engine.

The layer zoo is exactly what the Xatu model needs (Figure 6 of the paper):

* :class:`Dense` — affine projection with optional activation,
* :class:`LSTM` — a batched single-layer LSTM unrolled over time,
* :class:`AvgPool1D` / :class:`MaxPool1D` — the temporal aggregation
  ("pooling") stages that downsample the 1-minute feature series to the
  medium (10-minute) and long (60-minute) timescales,
* :class:`Sequential` — a simple container.

All layers expose ``parameters()`` returning the trainable tensors, and a
``state_dict()`` / ``load_state_dict()`` pair for persistence.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .autograd import Tensor
from .fused import avg_pool_1d, lstm_sequence, max_pool_1d

__all__ = [
    "Module",
    "Dense",
    "LSTM",
    "AvgPool1D",
    "MaxPool1D",
    "Sequential",
    "Dropout",
    "set_fused",
]


class Module:
    """Base class for layers: parameter registry plus (de)serialization.

    Modules carry a ``training`` flag toggled recursively by
    :meth:`train` / :meth:`eval` (layers like :class:`Dropout` change
    behaviour based on it).
    """

    training: bool = True

    def modules(self) -> Iterable["Module"]:
        """Yield this module and every registered submodule, recursively."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        """Recursively set the ``training`` flag (PyTorch-style)."""
        for module in self.modules():
            module.training = bool(mode)
        return self

    def eval(self) -> "Module":
        """Switch this module tree to inference mode."""
        return self.train(False)

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                state[key] = value.data.copy()
            elif isinstance(value, Module):
                state.update(value.state_dict(prefix=f"{key}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        state.update(item.state_dict(prefix=f"{key}.{i}."))
                    elif isinstance(item, Tensor) and item.requires_grad:
                        state[f"{key}.{i}"] = item.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                if key not in state:
                    raise KeyError(f"missing parameter {key!r} in state dict")
                if state[key].shape != value.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{state[key].shape} vs {value.data.shape}"
                    )
                value.data[...] = state[key]
            elif isinstance(value, Module):
                value.load_state_dict(state, prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item.load_state_dict(state, prefix=f"{key}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        item.data[...] = state[f"{key}.{i}"]

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``y = act(x @ W + b)``.

    ``activation`` may be one of ``None``/"linear", "sigmoid", "tanh",
    "relu", or "softplus".
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation or "linear"
        self.weight = Tensor(_glorot(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight + self.bias
        if self.activation == "linear":
            return out
        if self.activation == "sigmoid":
            return out.sigmoid()
        if self.activation == "tanh":
            return out.tanh()
        if self.activation == "relu":
            return out.relu()
        if self.activation == "softplus":
            return out.softplus()
        raise ValueError(f"unknown activation {self.activation!r}")


class LSTM(Module):
    """Single-layer batched LSTM.

    Input shape ``(batch, time, features)``; returns the full hidden state
    sequence ``(batch, time, hidden)``.  Gates use the standard fused weight
    layout ``[i, f, g, o]``.  The forget-gate bias is initialised to 1.0,
    the usual trick to help gradient flow over long sequences (the paper's
    LSTM_long spans 240 hourly steps).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        self.w_x = Tensor(
            _glorot(rng, input_size, 4 * hidden_size), requires_grad=True
        )
        self.w_h = Tensor(
            _glorot(rng, hidden_size, 4 * hidden_size), requires_grad=True
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def forward(
        self,
        x: Tensor,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the LSTM over a sequence.

        Returns ``(outputs, (h_T, c_T))`` where outputs stacks every hidden
        state along the time axis.  Dispatches to the fused single-node
        kernel (:func:`repro.nn.fused.lstm_sequence`) unless ``self.fused``
        is False, in which case the generic per-op tape path is used; both
        paths are numerically interchangeable (see tests/test_fused_kernels).
        """
        if x.shape[-1] != self.input_size:
            raise ValueError(
                f"LSTM expected {self.input_size} input features, got {x.shape[-1]}"
            )
        if self.fused:
            return lstm_sequence(x, self.w_x, self.w_h, self.bias, state)
        return self.forward_unfused(x, state)

    def forward_unfused(
        self,
        x: Tensor,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Reference path: one generic tape op per gate per timestep."""
        batch, steps, features = x.shape
        h_size = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((batch, h_size)))
            c = Tensor(np.zeros((batch, h_size)))
        else:
            h, c = state

        # Precompute all input projections in one batched matmul; the
        # recurrent projection must stay inside the loop.
        x_proj = x.reshape(batch * steps, features) @ self.w_x + self.bias
        x_proj = x_proj.reshape(batch, steps, 4 * h_size)

        outputs: list[Tensor] = []
        for t in range(steps):
            gates = x_proj[:, t, :] + h @ self.w_h
            i = gates[:, 0:h_size].sigmoid()
            f = gates[:, h_size : 2 * h_size].sigmoid()
            g = gates[:, 2 * h_size : 3 * h_size].tanh()
            o = gates[:, 3 * h_size : 4 * h_size].sigmoid()
            c = f * c + i * g
            h = o * c.tanh()
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), (h, c)


def _pool_windows(length: int, window: int) -> int:
    """Number of non-overlapping pooling windows covering ``length`` steps.

    A trailing partial window is kept (pooled over fewer elements), so no
    data at the recent end of the series is dropped.
    """
    return (length + window - 1) // window


class AvgPool1D(Module):
    """Non-overlapping temporal average pooling over axis 1.

    Downsamples ``(batch, time, features)`` to
    ``(batch, ceil(time / window), features)``.  This is the aggregation
    stage of Figure 6 that produces TS_medium and TS_long.
    """

    def __init__(self, window: int, fused: bool = True) -> None:
        if window < 1:
            raise ValueError("pooling window must be >= 1")
        self.window = window
        self.fused = fused

    def forward(self, x: Tensor) -> Tensor:
        if self.window == 1:
            return x
        if self.fused:
            return avg_pool_1d(x, self.window)
        return self.forward_unfused(x)

    def forward_unfused(self, x: Tensor) -> Tensor:
        """Reference path: one slice + mean + stack chain per window."""
        batch, steps, features = x.shape
        nwin = _pool_windows(steps, self.window)
        pieces = []
        for w in range(nwin):
            lo = w * self.window
            hi = min(steps, lo + self.window)
            pieces.append(x[:, lo:hi, :].mean(axis=1))
        return Tensor.stack(pieces, axis=1)


class MaxPool1D(Module):
    """Non-overlapping temporal max pooling over axis 1."""

    def __init__(self, window: int, fused: bool = True) -> None:
        if window < 1:
            raise ValueError("pooling window must be >= 1")
        self.window = window
        self.fused = fused

    def forward(self, x: Tensor) -> Tensor:
        if self.window == 1:
            return x
        if self.fused:
            return max_pool_1d(x, self.window)
        return self.forward_unfused(x)

    def forward_unfused(self, x: Tensor) -> Tensor:
        """Reference path: one slice + max + stack chain per window."""
        batch, steps, features = x.shape
        nwin = _pool_windows(steps, self.window)
        pieces = []
        for w in range(nwin):
            lo = w * self.window
            hi = min(steps, lo + self.window)
            pieces.append(x[:, lo:hi, :].max(axis=1))
        return Tensor.stack(pieces, axis=1)


class Dropout(Module):
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.training = True
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = self._rng.binomial(1, keep, size=x.shape) / keep
        return x * Tensor(mask)


def set_fused(module: Module, enabled: bool) -> Module:
    """Toggle the fused fast path on every kernel-bearing submodule.

    Used by the benchmark harness to time the pre-fusion (generic tape)
    baseline against the fused kernels on the same model instance.
    """
    for sub in module.modules():
        if hasattr(sub, "fused"):
            sub.fused = bool(enabled)
    return module


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        # Named ``layers`` so the inherited ``modules()`` walker stays usable.
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.layers:
            x = module(x)
        return x

    def __iter__(self) -> Iterable[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
