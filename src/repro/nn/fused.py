"""Fused fast-path kernels for the hot layers of the Xatu model.

The generic tape in :mod:`repro.nn.autograd` records ~15 nodes (each with a
Python closure) for every LSTM timestep and one slice/stack node per pooling
window.  At the paper's scales (LSTM_long unrolls 240 steps) the tape
bookkeeping dominates the actual numpy arithmetic.  The kernels here collapse
those graphs:

* :func:`lstm_sequence` — the whole unrolled LSTM is **one tape node**.  The
  forward runs a plain numpy loop caching the gate activations; the backward
  is hand-derived backpropagation-through-time over that cache.
* :func:`avg_pool_1d` / :func:`max_pool_1d` — non-overlapping temporal
  pooling as a single reshape-based node (a ragged trailing window is pooled
  separately), instead of one slice + reduce + stack chain per window.

Every kernel mirrors the generic implementation's operation order so the
results agree with the unfused path (and the scalar kernels in
:mod:`repro.testing.reference`) to float64 round-off; the differential tests
in ``tests/test_fused_kernels.py`` enforce this.

When gradients are disabled the kernels skip the cache and the tape node
entirely (the graph-free inference lane), and honour the reduced-precision
policy installed via :class:`repro.nn.autograd.inference_dtype`.
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis.sanitizer import check_finite, sanitize_enabled
from ..obs.registry import get_registry, obs_enabled
from .autograd import Tensor, get_tape_hook, is_grad_enabled, resolve_inference_dtype

__all__ = [
    "lstm_sequence",
    "avg_pool_1d",
    "max_pool_1d",
    "pool_infer",
    "dense_infer",
    "lstm_infer_batched",
]


def _sigmoid(a: np.ndarray) -> np.ndarray:
    """Numerically stable logistic, element-for-element identical to
    ``Tensor.sigmoid`` but with a single exp over the whole array instead
    of the masked two-branch form (same IEEE results, fewer ufunc calls)."""
    e = np.exp(-np.abs(a))
    return np.where(a >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def _maybe_cast(*arrays: np.ndarray) -> tuple[np.ndarray, ...]:
    """Apply the no-grad reduced-precision policy, if one is active."""
    dtype = resolve_inference_dtype()
    if dtype is None:
        return arrays
    return tuple(np.asarray(a, dtype=dtype) for a in arrays)


# ----------------------------------------------------------------------
# fused LSTM
# ----------------------------------------------------------------------
def _lstm_infer(
    X: np.ndarray,
    Wx: np.ndarray,
    Wh: np.ndarray,
    x_proj: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    hidden: int,
) -> tuple[Tensor, tuple[Tensor, Tensor]]:
    """Graph-free inference lane: no cache, no tape, in-place scratch.

    Every elementwise expression matches the grad-mode loop IEEE-exactly
    (the sigmoid is applied to all four gate blocks at once — the candidate
    block's wasted lanes are discarded — and scratch buffers only change
    where results land, not their values), so inference output is
    byte-identical to the training-mode forward.
    """
    batch, steps, _ = X.shape
    if obs_enabled():
        registry = get_registry()
        registry.counter(
            "nn.lstm_infer_calls", "graph-free fused LSTM inference calls"
        ).inc()
        registry.counter(
            "nn.lstm_infer_steps", "timesteps scored by the inference lane"
        ).inc(batch * steps)
    outputs = np.empty((batch, steps, hidden), dtype=X.dtype)
    h = np.array(h0)
    c = np.array(c0)
    gates = np.empty((batch, 4 * hidden), dtype=X.dtype)
    e = np.empty_like(gates)
    g = np.empty((batch, hidden), dtype=X.dtype)
    tmp = np.empty((batch, hidden), dtype=X.dtype)
    for t in range(steps):
        np.matmul(h, Wh, out=gates)
        gates += x_proj[:, t]
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=g)
        # Stable sigmoid over the whole gate slab: e = exp(-|a|), then
        # where(a >= 0, 1, e) / (1 + e) — elementwise identical to _sigmoid.
        np.abs(gates, out=e)
        np.negative(e, out=e)
        np.exp(e, out=e)
        num = np.where(gates >= 0, 1.0, e)
        e += 1.0
        np.divide(num, e, out=num)
        i = num[:, :hidden]
        f = num[:, hidden : 2 * hidden]
        o = num[:, 3 * hidden :]
        np.multiply(f, c, out=c)
        np.multiply(i, g, out=tmp)
        c += tmp
        h = outputs[:, t]
        np.tanh(c, out=tmp)
        np.multiply(o, tmp, out=h)
    return Tensor(outputs), (Tensor(h), Tensor(c))


def lstm_infer_batched(
    X: np.ndarray,
    Wx: np.ndarray,
    Wh: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """Batch-first graph-free LSTM inference over stacked sequences.

    ``X`` is ``(batch, time, features)`` where each batch item is one
    independent sequence (one customer, in the serving lane).  Returns the
    hidden sequence ``(batch, time, hidden)``.

    Bitwise contract: row ``b`` of the result equals
    ``lstm_sequence(x[b:b+1], ...)`` under ``no_grad`` exactly, not just to
    round-off.  The per-item guarantee rests on keeping every matmul a
    *stacked* 3-D ``np.matmul`` whose per-item 2-D shape matches the
    single-sequence call — ``(B, 1, hidden) @ (hidden, 4*hidden)`` for the
    recurrent step and ``(B, time, features) @ (features, 4*hidden)`` for
    the input projection.  Flattening either into one big 2-D GEMM changes
    the BLAS kernel's blocking with the row count and is **not** row-stable;
    the differential tests in ``tests/test_batched_equivalence.py`` pin the
    stacked form.  All elementwise work reuses the exact expressions of
    :func:`_lstm_infer`.
    """
    X, Wx, Wh, b = _maybe_cast(
        np.asarray(X), np.asarray(Wx), np.asarray(Wh), np.asarray(bias)
    )
    if sanitize_enabled():
        check_finite("lstm_infer_batched.inputs", x=X, w_x=Wx, w_h=Wh, bias=b)
    batch, steps, _features = X.shape
    hidden = Wh.shape[0]
    if obs_enabled():
        registry = get_registry()
        registry.counter(
            "nn.lstm_infer_batched_calls", "batch-first fused LSTM inference calls"
        ).inc()
        registry.counter(
            "nn.lstm_infer_steps", "timesteps scored by the inference lane"
        ).inc(batch * steps)

    # Stacked input projection; per-item identical to the 2-D
    # ``(time, features) @ Wx`` the single-sequence path computes.
    x_proj = np.matmul(X, Wx) + b

    outputs = np.empty((batch, steps, hidden), dtype=X.dtype)
    h = np.zeros((batch, 1, hidden), dtype=X.dtype)
    c = np.zeros((batch, 1, hidden), dtype=X.dtype)
    gates = np.empty((batch, 1, 4 * hidden), dtype=X.dtype)
    e = np.empty_like(gates)
    num = np.empty_like(gates)
    neg = np.empty(gates.shape, dtype=bool)
    g = np.empty((batch, 1, hidden), dtype=X.dtype)
    tmp = np.empty((batch, 1, hidden), dtype=X.dtype)
    for t in range(steps):
        np.matmul(h, Wh, out=gates)
        gates += x_proj[:, t : t + 1]
        np.tanh(gates[..., 2 * hidden : 3 * hidden], out=g)
        np.abs(gates, out=e)
        np.negative(e, out=e)
        np.exp(e, out=e)
        # Selection (no arithmetic), so reusing buffers instead of
        # ``np.where`` keeps the serving loop allocation-free per step
        # while producing the same bits.
        np.less(gates, 0, out=neg)
        num.fill(1.0)
        np.copyto(num, e, where=neg)
        e += 1.0
        np.divide(num, e, out=num)
        i = num[..., :hidden]
        f = num[..., hidden : 2 * hidden]
        o = num[..., 3 * hidden :]
        np.multiply(f, c, out=c)
        np.multiply(i, g, out=tmp)
        c += tmp
        h = outputs[:, t : t + 1]
        np.tanh(c, out=tmp)
        np.multiply(o, tmp, out=h)
    if sanitize_enabled():
        check_finite("lstm_infer_batched.outputs", outputs=outputs, cell=c)
    return outputs


def dense_infer(
    X: np.ndarray,
    W: np.ndarray,
    b: np.ndarray,
    activation: str = "linear",
) -> np.ndarray:
    """Graph-free Dense forward, bitwise-faithful to the Tensor op chain.

    Under a reduced-precision policy the Tensor lane does *not* down-cast
    the float64 parameters before computing: each binary op promotes to the
    widest operand dtype and only the op's **result** is cast back to the
    policy dtype by ``Tensor.__init__``.  This mirror reproduces that
    cast-per-op dance (matmul → cast → add bias → cast → activation) so a
    float32 batched lane matches the per-item Tensor lane bit for bit.
    The leading dimensions of ``X`` are stacked batch axes, which keeps the
    matmul a per-item-stable stacked GEMM (see :func:`lstm_infer_batched`).
    """
    dtype = resolve_inference_dtype()
    out = np.matmul(X, W)
    if dtype is not None and out.dtype != dtype:
        out = out.astype(dtype)
    out = out + b
    if dtype is not None and out.dtype != dtype:
        out = out.astype(dtype)
    if activation in (None, "linear"):
        return out
    if activation == "tanh":
        return np.tanh(out)
    if activation == "softplus":
        return np.logaddexp(0.0, out)
    if activation == "sigmoid":
        return _sigmoid(out)
    if activation == "relu":
        return np.maximum(out, 0.0)
    raise ValueError(f"unknown activation {activation!r}")


def lstm_sequence(
    x: Tensor,
    w_x: Tensor,
    w_h: Tensor,
    bias: Tensor,
    state: tuple[Tensor, Tensor] | None = None,
) -> tuple[Tensor, tuple[Tensor, Tensor]]:
    """Fused LSTM over ``(batch, time, features)`` input.

    Semantics match :meth:`repro.nn.LSTM.forward_unfused` exactly (fused
    ``[i, f, g, o]`` gate layout): returns ``(outputs, (h_T, c_T))`` where
    ``outputs`` is ``(batch, time, hidden)``.  The entire sequence is one
    autograd node; ``c_T`` is a sibling node over the same cached
    activations so gradients may flow through a threaded state.
    """
    X, Wx, Wh, b = _maybe_cast(x.data, w_x.data, w_h.data, bias.data)
    if sanitize_enabled():
        check_finite("lstm_sequence.inputs", x=X, w_x=Wx, w_h=Wh, bias=b)
    batch, steps, _features = X.shape
    hidden = Wh.shape[0]
    if state is None:
        h0 = np.zeros((batch, hidden), dtype=X.dtype)
        c0 = np.zeros((batch, hidden), dtype=X.dtype)
    else:
        h0, c0 = _maybe_cast(state[0].data, state[1].data)

    parents: list[Tensor] = [x, w_x, w_h, bias]
    if state is not None:
        parents.extend(state)
    grad_mode = is_grad_enabled() and any(
        p.requires_grad or p._parents for p in parents
    )

    hook = get_tape_hook()
    start = time.perf_counter() if hook is not None else 0.0

    # One batched input projection for all timesteps (same op order as the
    # unfused path: matmul, broadcast bias add, reshape).
    x_proj = (X.reshape(batch * steps, -1) @ Wx + b).reshape(batch, steps, 4 * hidden)

    if not grad_mode:
        result = _lstm_infer(X, Wx, Wh, x_proj, h0, c0, hidden)
        if hook is not None:
            hook.record_forward("lstm_infer", time.perf_counter() - start)
        if sanitize_enabled():
            check_finite("lstm_sequence.infer_outputs", outputs=result[0].data)
        return result

    outputs = np.empty((batch, steps, hidden), dtype=X.dtype)
    # Activation cache for the hand-derived backward, time-major so each
    # step's slab is contiguous: sigmoided [i, f] and [o] gates, tanh'd
    # candidate [g], cell state and its tanh.
    if_all = np.empty((steps, batch, 2 * hidden), dtype=X.dtype)
    g_all = np.empty((steps, batch, hidden), dtype=X.dtype)
    o_all = np.empty((steps, batch, hidden), dtype=X.dtype)
    c_all = np.empty((steps, batch, hidden), dtype=X.dtype)
    tc_all = np.empty((steps, batch, hidden), dtype=X.dtype)

    h, c = h0, c0
    gates = np.empty((batch, 4 * hidden), dtype=X.dtype)
    for t in range(steps):
        np.matmul(h, Wh, out=gates)
        gates += x_proj[:, t]
        # [i|f] share one fused sigmoid call (same element math as two).
        i_f = _sigmoid(gates[:, : 2 * hidden])
        i = i_f[:, :hidden]
        f = i_f[:, hidden:]
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c_new = f * c + i * g
        tc = np.tanh(c_new)
        h = o * tc
        outputs[:, t] = h
        if_all[t] = i_f
        g_all[t] = g
        o_all[t] = o
        c_all[t] = c_new
        tc_all[t] = tc
        c = c_new

    if hook is not None:
        hook.record_forward("lstm_sequence", time.perf_counter() - start)
    if sanitize_enabled():
        check_finite("lstm_sequence.outputs", outputs=outputs, cell=c)

    def bptt(
        d_out: np.ndarray | None,
        d_cT: np.ndarray | None,
    ) -> tuple[tuple[Tensor, np.ndarray], ...]:
        """Hand-derived BPTT over the cached gate activations.

        ``d_out`` is the incoming gradient on the full hidden sequence (or
        None), ``d_cT`` the gradient on the final cell state (or None).
        Mirrors the generic tape's accumulation order so both paths agree
        to round-off.
        """
        d_xproj = np.empty_like(x_proj)
        d_wh = np.zeros_like(Wh)
        dh_carry = np.zeros((batch, hidden), dtype=X.dtype)
        dc_carry = (
            np.array(d_cT, dtype=X.dtype)
            if d_cT is not None
            else np.zeros((batch, hidden), dtype=X.dtype)
        )
        for t in range(steps - 1, -1, -1):
            dh = d_out[:, t] + dh_carry if d_out is not None else dh_carry
            o = o_all[t]
            tc = tc_all[t]
            dtc = dh * o
            dc = dc_carry + dtc * (1.0 - tc * tc)
            i_f = if_all[t]
            i = i_f[:, :hidden]
            f = i_f[:, hidden:]
            g = g_all[t]
            c_prev = c_all[t - 1] if t > 0 else c0
            h_prev = outputs[:, t - 1] if t > 0 else h0
            # d(pre-activation gates), fused [i, f, g, o] layout.
            d_gates = np.empty((batch, 4 * hidden), dtype=X.dtype)
            d_gates[:, :hidden] = (dc * g) * i * (1.0 - i)
            d_gates[:, hidden : 2 * hidden] = (dc * c_prev) * f * (1.0 - f)
            d_gates[:, 2 * hidden : 3 * hidden] = (dc * i) * (1.0 - g * g)
            d_gates[:, 3 * hidden :] = (dh * tc) * o * (1.0 - o)
            d_xproj[:, t] = d_gates
            d_wh += h_prev.T @ d_gates
            dh_carry = d_gates @ Wh.T
            dc_carry = dc * f
        flat = d_xproj.reshape(batch * steps, 4 * hidden)
        d_bias = flat.sum(axis=0)
        d_wx = X.reshape(batch * steps, -1).T @ flat
        d_x = (flat @ Wx.T).reshape(X.shape)
        pairs = [(x, d_x), (w_x, d_wx), (w_h, d_wh), (bias, d_bias)]
        if state is not None:
            pairs.append((state[0], dh_carry))
            pairs.append((state[1], dc_carry))
        return tuple(pairs)

    out_t = Tensor(
        outputs,
        _parents=tuple(parents),
        _backward=lambda grad: bptt(grad, None),
        name="lstm_sequence",
    )
    c_t = Tensor(
        c,
        _parents=tuple(parents),
        _backward=lambda grad: bptt(None, grad),
        name="lstm_sequence.cell",
    )
    # h_T as a slice keeps its gradient flowing through the sequence node.
    h_t = out_t[:, steps - 1, :]
    return out_t, (h_t, c_t)


# ----------------------------------------------------------------------
# fused pooling
# ----------------------------------------------------------------------
def _pool_split(X: np.ndarray, window: int):
    """Split ``(batch, time, feat)`` into full windows and a ragged tail."""
    batch, steps, feat = X.shape
    nfull, rem = divmod(steps, window)
    full = X[:, : nfull * window].reshape(batch, nfull, window, feat)
    tail = X[:, nfull * window :] if rem else None
    return full, tail, nfull, rem


def _avg_pool_forward(X: np.ndarray, window: int):
    """Shared avg-pool forward; returns ``(out, full, tail, nfull, rem)``."""
    full, tail, nfull, rem = _pool_split(X, window)
    pieces = []
    if nfull:
        pieces.append(full.sum(axis=2) * (1.0 / window))
    if rem:
        pieces.append(tail.sum(axis=1, keepdims=True) * (1.0 / rem))
    out = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=1)
    return out, full, tail, nfull, rem


def _max_pool_forward(X: np.ndarray, window: int):
    """Shared max-pool forward; returns ``(out, full, tail, nfull, rem)``."""
    full, tail, nfull, rem = _pool_split(X, window)
    pieces = []
    if nfull:
        pieces.append(full.max(axis=2))
    if rem:
        pieces.append(tail.max(axis=1, keepdims=True))
    out = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=1)
    return out, full, tail, nfull, rem


def pool_infer(X: np.ndarray, window: int, mode: str) -> np.ndarray:
    """Graph-free pooling forward over ``(batch, time, features)``.

    Runs the *same* reduction expressions as the tape kernels below, so
    each batch row is bitwise identical to pooling that row alone (the
    window-axis reductions are independent per batch item).  ``window == 1``
    is the identity, matching ``AvgPool1D.forward`` / ``MaxPool1D.forward``
    which skip the kernel entirely in that case.
    """
    if window == 1:
        return X
    if mode == "avg":
        return _avg_pool_forward(X, window)[0]
    if mode == "max":
        return _max_pool_forward(X, window)[0]
    raise ValueError(f"unknown pooling mode {mode!r}")


def avg_pool_1d(x: Tensor, window: int) -> Tensor:
    """Non-overlapping temporal average pooling as one tape node.

    Equivalent to :meth:`repro.nn.AvgPool1D.forward_unfused`: a trailing
    partial window is averaged over its own (shorter) length.
    """
    hook = get_tape_hook()
    start = time.perf_counter() if hook is not None else 0.0
    (X,) = _maybe_cast(x.data)
    out, full, tail, nfull, rem = _avg_pool_forward(X, window)
    if hook is not None:
        hook.record_forward("avg_pool_1d", time.perf_counter() - start)
    if sanitize_enabled():
        check_finite("avg_pool_1d", x=X, out=out)

    if not (is_grad_enabled() and (x.requires_grad or x._parents)):
        return Tensor(out)

    def back(grad: np.ndarray):
        d_x = np.empty_like(X)
        if nfull:
            d_full = (grad[:, :nfull] * (1.0 / window))[:, :, None, :]
            d_x[:, : nfull * window] = np.broadcast_to(d_full, full.shape).reshape(
                X.shape[0], nfull * window, X.shape[2]
            )
        if rem:
            d_tail = grad[:, nfull:] * (1.0 / rem)
            d_x[:, nfull * window :] = np.broadcast_to(d_tail, tail.shape)
        return ((x, d_x),)

    return Tensor(out, _parents=(x,), _backward=back, name="avg_pool_1d")


def max_pool_1d(x: Tensor, window: int) -> Tensor:
    """Non-overlapping temporal max pooling as one tape node.

    Backward splits the gradient evenly among tied maxima within a window,
    matching the generic ``Tensor.max`` semantics.
    """
    hook = get_tape_hook()
    start = time.perf_counter() if hook is not None else 0.0
    (X,) = _maybe_cast(x.data)
    out, full, tail, nfull, rem = _max_pool_forward(X, window)
    if hook is not None:
        hook.record_forward("max_pool_1d", time.perf_counter() - start)
    if sanitize_enabled():
        check_finite("max_pool_1d", x=X, out=out)

    if not (is_grad_enabled() and (x.requires_grad or x._parents)):
        return Tensor(out)

    def back(grad: np.ndarray):
        d_x = np.empty_like(X)
        if nfull:
            mask = (full == out[:, :nfull, None, :]).astype(X.dtype)
            mask /= mask.sum(axis=2, keepdims=True)
            d_full = grad[:, :nfull, None, :] * mask
            d_x[:, : nfull * window] = d_full.reshape(
                X.shape[0], nfull * window, X.shape[2]
            )
        if rem:
            tmask = (tail == out[:, nfull:]).astype(X.dtype)
            tmask /= tmask.sum(axis=1, keepdims=True)
            d_x[:, nfull * window :] = grad[:, nfull:] * tmask
        return ((x, d_x),)

    return Tensor(out, _parents=(x,), _backward=back, name="max_pool_1d")
