"""Dependency-free metrics registry: counters, gauges, histograms, EWMAs.

The registry is the core of ``repro.obs``: every instrumented hot path
(trainer steps, online scoring minutes, datagram collection, scrubbing
accounting, the fused inference lane) records into one of four metric
kinds:

* :class:`Counter`   — monotonically increasing totals,
* :class:`Gauge`     — last-write-wins point values,
* :class:`Histogram` — bucketed distributions with configurable upper
  bounds (a ``+Inf`` overflow bucket is always appended),
* :class:`Ewma`      — exponentially-weighted moving averages for rates.

All metrics support labels (keyword arguments; each distinct label set is
an independent sample series) and are thread-safe: one lock per metric
guards every mutation, so the online loop and a trainer thread can share
one registry.  :meth:`MetricsRegistry.snapshot` returns an immutable
point-in-time copy (later mutations never leak into an earlier snapshot)
and :meth:`MetricsRegistry.reset` zeroes every series while keeping the
registrations.

Telemetry is **disabled by default**: instrumentation sites guard on
:func:`obs_enabled`, so a run that never calls :func:`set_enabled` (or
enters the :class:`telemetry` context) pays only an attribute load and a
branch per hot-path call.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Ewma",
    "MetricsRegistry",
    "MetricSnapshot",
    "MetricsSnapshot",
    "get_registry",
    "obs_enabled",
    "set_enabled",
    "telemetry",
]

# Log-spaced seconds buckets: 1 ms up to 10 s, then +Inf.  Suits both a
# train step (tens of ms at bench scale) and a full online scoring minute.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name, help text, per-label-set sample map."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, object] = {}

    def _sample(self, labels: dict[str, str]):
        """Get-or-create the per-label-set state (caller holds the lock)."""
        key = _label_key(labels)
        state = self._samples.get(key)
        if state is None:
            state = self._new_state()
            self._samples[key] = state
        return state

    def _new_state(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labeled_values(self) -> list[tuple[LabelKey, object]]:
        with self._lock:
            return [(k, self._copy_state(v)) for k, v in sorted(self._samples.items())]

    @staticmethod
    def _copy_state(state):
        return state

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_state(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._sample(labels)[0] += amount

    def value(self, **labels: str) -> float:
        with self._lock:
            state = self._samples.get(_label_key(labels))
            return state[0] if state else 0.0

    @staticmethod
    def _copy_state(state):
        return state[0]


class Gauge(_Metric):
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def _new_state(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._sample(labels)[0] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        with self._lock:
            self._sample(labels)[0] += amount

    def value(self, **labels: str) -> float:
        with self._lock:
            state = self._samples.get(_label_key(labels))
            return state[0] if state else 0.0

    @staticmethod
    def _copy_state(state):
        return state[0]


@dataclass
class _HistogramState:
    counts: list[int]
    sum: float = 0.0
    count: int = 0


@dataclass(frozen=True)
class HistogramValue:
    """Immutable histogram sample: per-bucket (non-cumulative) counts."""

    buckets: tuple[float, ...]  # upper bounds; last is +Inf
    counts: tuple[int, ...]
    sum: float
    count: int

    def quantile(self, q: float) -> float:
        """Crude bucket-midpoint quantile estimate (for the console view)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        lo = 0.0
        for bound, n in zip(self.buckets, self.counts):
            seen += n
            if seen >= target and n > 0:
                if bound == _INF:
                    return lo
                return (lo + bound) / 2.0
            if bound != _INF:
                lo = bound
        return lo


class Histogram(_Metric):
    """A bucketed distribution.

    ``buckets`` are *upper* bounds (``value <= bound`` lands in that
    bucket, matching Prometheus ``le`` semantics); they are sorted and a
    ``+Inf`` bucket is appended automatically.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        if bounds[-1] != _INF:
            bounds = bounds + (_INF,)
        self.buckets = bounds

    def _new_state(self) -> _HistogramState:
        return _HistogramState(counts=[0] * len(self.buckets))

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        # bisect_left over the bounds: first bucket with bound >= value,
        # i.e. the smallest ``le`` that admits the value — values exactly
        # on a boundary land in that boundary's bucket.
        idx = bisect_left(self.buckets, value)
        with self._lock:
            state = self._sample(labels)
            state.counts[idx] += 1
            state.sum += value
            state.count += 1

    def value(self, **labels: str) -> HistogramValue:
        with self._lock:
            state = self._samples.get(_label_key(labels))
            if state is None:
                return HistogramValue(self.buckets, (0,) * len(self.buckets), 0.0, 0)
            return self._copy_state(state)

    def _copy_state(self, state: _HistogramState) -> HistogramValue:
        return HistogramValue(
            self.buckets, tuple(state.counts), state.sum, state.count
        )


@dataclass
class _EwmaState:
    value: float = 0.0
    count: int = 0


@dataclass(frozen=True)
class EwmaValue:
    """Immutable EWMA sample."""

    value: float
    alpha: float
    count: int


class Ewma(_Metric):
    """Exponentially-weighted moving average (rate meter).

    ``observe(x)`` folds a new observation in with weight ``alpha``; the
    first observation seeds the average directly.  Feed it per-interval
    rates (flows/minute, examples/second) to get a smoothed gauge.
    """

    kind = "ewma"

    def __init__(self, name: str, help: str = "", alpha: float = 0.3) -> None:
        super().__init__(name, help)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def _new_state(self) -> _EwmaState:
        return _EwmaState()

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        with self._lock:
            state = self._sample(labels)
            if state.count == 0:
                state.value = value
            else:
                state.value = self.alpha * value + (1.0 - self.alpha) * state.value
            state.count += 1

    def value(self, **labels: str) -> float:
        with self._lock:
            state = self._samples.get(_label_key(labels))
            return state.value if state else 0.0

    def _copy_state(self, state: _EwmaState) -> EwmaValue:
        return EwmaValue(state.value, self.alpha, state.count)


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSnapshot:
    """One metric's frozen series: name, kind, and per-label-set values."""

    name: str
    kind: str
    help: str
    samples: tuple[tuple[LabelKey, object], ...]

    def value(self, **labels: str):
        key = _label_key(labels)
        for k, v in self.samples:
            if k == key:
                return v
        return None


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen point-in-time copy of a whole registry."""

    metrics: tuple[MetricSnapshot, ...] = ()

    def __iter__(self):
        return iter(self.metrics)

    def __len__(self) -> int:
        return len(self.metrics)

    def get(self, name: str) -> MetricSnapshot | None:
        for m in self.metrics:
            if m.name == name:
                return m
        return None

    def names(self) -> list[str]:
        return [m.name for m in self.metrics]


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Re-requesting a name returns the existing metric; requesting it as a
    different kind (or a histogram with different buckets) raises, so two
    instrumentation sites cannot silently fight over one series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
                return metric
        if type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        if cls is Histogram and "buckets" in kwargs:
            wanted = tuple(sorted(float(b) for b in kwargs["buckets"]))
            if wanted[-1] != _INF:
                wanted = wanted + (_INF,)
            if wanted != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with different buckets"
                )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def ewma(self, name: str, help: str = "", alpha: float = 0.3) -> Ewma:
        return self._get_or_create(Ewma, name, help, alpha=alpha)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        """Deep-copied, immutable view; later mutations never affect it."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return MetricsSnapshot(
            metrics=tuple(
                MetricSnapshot(
                    name=name,
                    kind=m.kind,
                    help=m.help,
                    samples=tuple(m.labeled_values()),
                )
                for name, m in metrics
            )
        )

    def reset(self) -> None:
        """Zero every series; registrations (and bucket layouts) survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()


# ----------------------------------------------------------------------
# the global switch and registry
# ----------------------------------------------------------------------
_ENABLED = False
_REGISTRY = MetricsRegistry()


def obs_enabled() -> bool:
    """Whether instrumentation sites should record telemetry."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the global telemetry switch; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation site records into."""
    return _REGISTRY


class telemetry:
    """Enable (or explicitly disable) telemetry within a ``with`` block::

        with telemetry():
            trainer.fit(samples)

    The previous switch state is restored on exit, raising included.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled

    def __enter__(self) -> MetricsRegistry:
        self._prev = set_enabled(self._enabled)
        return _REGISTRY

    def __exit__(self, *exc) -> bool:
        set_enabled(self._prev)
        return False
