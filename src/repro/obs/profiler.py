"""Sampling profiler for the nn autograd tape.

:class:`TapeProfiler` implements the hook protocol that
:mod:`repro.nn.autograd` (and the fused kernels) call around every tape
node when a hook is installed: per-op-type forward time, backward time,
and node counts.  Install it with the :func:`profile_tape` context
manager::

    with profile_tape() as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.snapshot().render())

``sample_every=k`` keeps node *counts* exact but only accumulates wall
time on every k-th forward/backward of each op (scaled by ``k`` so the
totals stay estimates of the true time) — useful when the per-node
``perf_counter`` pair itself would distort a very hot tape.

No hook installed (the default) costs the tape a single ``is None``
branch per node; the profiler is strictly opt-in and independent of the
metrics switch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["OpStats", "TapeProfile", "TapeProfiler", "profile_tape"]


@dataclass
class OpStats:
    """Aggregated timings for one tape op type."""

    op: str
    nodes: int = 0
    forward_s: float = 0.0
    backward_calls: int = 0
    backward_s: float = 0.0


@dataclass(frozen=True)
class TapeProfile:
    """Immutable profiler snapshot."""

    ops: tuple[OpStats, ...] = ()
    sample_every: int = 1

    def get(self, op: str) -> OpStats | None:
        for stats in self.ops:
            if stats.op == op:
                return stats
        return None

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes for s in self.ops)

    def render(self) -> str:
        header = (
            f"{'op':<20} {'nodes':>8} {'fwd ms':>10} {'bwd calls':>10} {'bwd ms':>10}"
        )
        lines = [header, "-" * len(header)]
        for s in sorted(self.ops, key=lambda s: -(s.forward_s + s.backward_s)):
            lines.append(
                f"{s.op:<20} {s.nodes:>8} {s.forward_s * 1e3:>10.2f} "
                f"{s.backward_calls:>10} {s.backward_s * 1e3:>10.2f}"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "sample_every": self.sample_every,
            "ops": {
                s.op: {
                    "nodes": s.nodes,
                    "forward_s": s.forward_s,
                    "backward_calls": s.backward_calls,
                    "backward_s": s.backward_s,
                }
                for s in self.ops
            },
        }


class TapeProfiler:
    """Accumulates per-op-type tape statistics (thread-safe)."""

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self._lock = threading.Lock()
        self._ops: dict[str, OpStats] = {}

    def _stats(self, op: str) -> OpStats:
        stats = self._ops.get(op)
        if stats is None:
            stats = OpStats(op=op)
            self._ops[op] = stats
        return stats

    # -- hook protocol (called from the autograd tape) ------------------
    def record_forward(self, op: str, seconds: float) -> None:
        with self._lock:
            stats = self._stats(op)
            stats.nodes += 1
            if stats.nodes % self.sample_every == 0:
                stats.forward_s += seconds * self.sample_every

    def record_backward(self, op: str, seconds: float) -> None:
        with self._lock:
            stats = self._stats(op)
            stats.backward_calls += 1
            if stats.backward_calls % self.sample_every == 0:
                stats.backward_s += seconds * self.sample_every

    # ------------------------------------------------------------------
    def snapshot(self) -> TapeProfile:
        with self._lock:
            ops = tuple(
                OpStats(s.op, s.nodes, s.forward_s, s.backward_calls, s.backward_s)
                for s in self._ops.values()
            )
        return TapeProfile(ops=ops, sample_every=self.sample_every)

    def reset(self) -> None:
        with self._lock:
            self._ops.clear()


class profile_tape:
    """Install a :class:`TapeProfiler` on the nn tape within a block."""

    def __init__(self, profiler: TapeProfiler | None = None, sample_every: int = 1):
        self.profiler = profiler or TapeProfiler(sample_every=sample_every)

    def __enter__(self) -> TapeProfiler:
        from ..nn.autograd import set_tape_hook

        self._prev = set_tape_hook(self.profiler)
        return self.profiler

    def __exit__(self, *exc) -> bool:
        from ..nn.autograd import set_tape_hook

        set_tape_hook(self._prev)
        return False
