"""Telemetry exporters: Prometheus text exposition, JSON, console table.

Three renderings of one :class:`~repro.obs.registry.MetricsSnapshot`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_total`` suffix on counters,
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` for
  histograms).  Metric names are mangled ``train.step_seconds`` →
  ``repro_train_step_seconds``.
* :func:`to_json` / :func:`snapshot_from_json` — a loss-free, versioned
  JSON document (the ``--telemetry <path>`` file format), optionally
  carrying the span-trace tree, a tape profile, and host metadata.
  ``snapshot → json → snapshot → json`` is the identity; the
  ``cli metrics --selftest`` round-trip enforces it.
* :func:`render_top` — a human ``top``-style console table (what
  ``cli metrics <path>`` prints).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from .registry import (
    EwmaValue,
    HistogramValue,
    MetricSnapshot,
    MetricsSnapshot,
)
from .tracing import SpanNode

__all__ = [
    "TELEMETRY_FORMAT_VERSION",
    "host_metadata",
    "to_prometheus",
    "to_json",
    "snapshot_from_json",
    "write_telemetry",
    "load_telemetry",
    "render_top",
    "selftest",
]

TELEMETRY_FORMAT_VERSION = 1

_INF = float("inf")


def host_metadata() -> dict:
    """Provenance for telemetry/benchmark files: interpreter + machine."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, kind: str, prefix: str = "repro") -> str:
    base = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


def _prom_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _prom_number(value: float) -> str:
    if value == _INF:
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in snapshot:
        name = _prom_name(metric.name, metric.kind, prefix)
        prom_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "histogram",
            "ewma": "gauge",
        }[metric.kind]
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {prom_type}")
        for labels, value in metric.samples:
            if isinstance(value, HistogramValue):
                cumulative = 0
                for bound, count in zip(value.buckets, value.counts):
                    cumulative += count
                    label_str = _prom_labels(labels, (("le", _prom_number(bound)),))
                    lines.append(f"{name}_bucket{label_str} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} {_prom_number(value.sum)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {value.count}"
                )
            elif isinstance(value, EwmaValue):
                lines.append(
                    f"{name}{_prom_labels(labels)} {_prom_number(value.value)}"
                )
            else:
                lines.append(
                    f"{name}{_prom_labels(labels)} {_prom_number(float(value))}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def _sample_to_json(kind: str, labels, value) -> dict:
    out: dict = {"labels": {k: v for k, v in labels}}
    if isinstance(value, HistogramValue):
        out["buckets"] = [
            "+Inf" if b == _INF else b for b in value.buckets
        ]
        out["counts"] = list(value.counts)
        out["sum"] = value.sum
        out["count"] = value.count
    elif isinstance(value, EwmaValue):
        out["value"] = value.value
        out["alpha"] = value.alpha
        out["count"] = value.count
    else:
        out["value"] = float(value)
    return out


def to_json(
    snapshot: MetricsSnapshot,
    trace: SpanNode | None = None,
    profile=None,
    host: dict | None = None,
) -> dict:
    """Serialize a snapshot (plus optional trace/profile/host) to a dict."""
    return {
        "format_version": TELEMETRY_FORMAT_VERSION,
        "host": host if host is not None else host_metadata(),
        "metrics": [
            {
                "name": m.name,
                "kind": m.kind,
                "help": m.help,
                "samples": [
                    _sample_to_json(m.kind, labels, value)
                    for labels, value in m.samples
                ],
            }
            for m in snapshot
        ],
        "trace": trace.to_json() if trace is not None else None,
        "profile": profile.to_json() if profile is not None else None,
    }


def _sample_from_json(kind: str, payload: dict):
    labels = tuple(sorted((str(k), str(v)) for k, v in payload["labels"].items()))
    if kind == "histogram":
        buckets = tuple(
            _INF if b == "+Inf" else float(b) for b in payload["buckets"]
        )
        value = HistogramValue(
            buckets=buckets,
            counts=tuple(int(c) for c in payload["counts"]),
            sum=float(payload["sum"]),
            count=int(payload["count"]),
        )
    elif kind == "ewma":
        value = EwmaValue(
            value=float(payload["value"]),
            alpha=float(payload["alpha"]),
            count=int(payload["count"]),
        )
    else:
        value = float(payload["value"])
    return labels, value


def snapshot_from_json(payload: dict) -> MetricsSnapshot:
    """Rebuild a :class:`MetricsSnapshot` from :func:`to_json` output."""
    version = payload.get("format_version")
    if version != TELEMETRY_FORMAT_VERSION:
        raise ValueError(
            f"telemetry format_version {version!r} not understood "
            f"(this code reads {TELEMETRY_FORMAT_VERSION})"
        )
    metrics = tuple(
        MetricSnapshot(
            name=m["name"],
            kind=m["kind"],
            help=m.get("help", ""),
            samples=tuple(
                _sample_from_json(m["kind"], s) for s in m["samples"]
            ),
        )
        for m in payload["metrics"]
    )
    return MetricsSnapshot(metrics=metrics)


def write_telemetry(
    path: str | Path,
    snapshot: MetricsSnapshot,
    trace: SpanNode | None = None,
    profile=None,
) -> Path:
    """Write one telemetry JSON document; returns the path written."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_json(snapshot, trace, profile), indent=2) + "\n")
    return path


def load_telemetry(path: str | Path) -> dict:
    """Load and version-check a telemetry JSON document."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != TELEMETRY_FORMAT_VERSION:
        raise ValueError(
            f"telemetry file {path} has format_version {version!r}; this "
            f"code understands {TELEMETRY_FORMAT_VERSION}"
        )
    return payload


# ----------------------------------------------------------------------
# console rendering
# ----------------------------------------------------------------------
def _labels_text(labels) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def render_top(
    snapshot: MetricsSnapshot,
    trace: SpanNode | None = None,
    host: dict | None = None,
) -> str:
    """Human ``top``-style view: metrics table + span tree."""
    lines: list[str] = []
    if host:
        lines.append(
            "host: python {python} · numpy {numpy} · {machine} · "
            "{cpu_count} cpus".format(**{
                "python": host.get("python", "?"),
                "numpy": host.get("numpy", "?"),
                "machine": host.get("machine", "?"),
                "cpu_count": host.get("cpu_count", "?"),
            })
        )
        lines.append("")
    header = f"{'metric':<42} {'kind':<9} {'value':>14}  detail"
    lines.append(header)
    lines.append("-" * len(header))
    for metric in snapshot:
        for labels, value in metric.samples:
            name = metric.name + _labels_text(labels)
            if isinstance(value, HistogramValue):
                mean = value.sum / value.count if value.count else 0.0
                detail = (
                    f"mean {mean * 1e3:.2f} ms · p50 {value.quantile(0.5) * 1e3:.2f} ms"
                    f" · p90 {value.quantile(0.9) * 1e3:.2f} ms"
                )
                lines.append(
                    f"{name:<42} {metric.kind:<9} {value.count:>14}  {detail}"
                )
            elif isinstance(value, EwmaValue):
                lines.append(
                    f"{name:<42} {metric.kind:<9} {value.value:>14.4g}  "
                    f"alpha {value.alpha:g} over {value.count} obs"
                )
            else:
                lines.append(f"{name:<42} {metric.kind:<9} {float(value):>14.6g}")
    if not len(snapshot):
        lines.append("(no metrics recorded)")
    if trace is not None and trace.children:
        lines.append("")
        span_header = f"{'span':<40} {'calls':>6}  {'total ms':>10}  {'excl ms':>10}"
        lines.append(span_header)
        lines.append("-" * len(span_header))
        lines.append(trace.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# exporter selftest (``cli metrics --selftest``)
# ----------------------------------------------------------------------
def selftest() -> list[str]:
    """Exercise every exporter on a synthetic registry; returns problems.

    Builds one metric of each kind (labelled and unlabelled, boundary
    values included), then checks (a) the JSON round-trip is the
    identity, (b) the Prometheus exposition contains the expected series,
    (c) the console renderer handles every kind.  An empty return means
    the exporters are healthy.
    """
    from .registry import MetricsRegistry

    problems: list[str] = []
    registry = MetricsRegistry()
    counter = registry.counter("selftest.events", "synthetic events")
    counter.inc(3)
    counter.inc(2, kind="alert")
    registry.gauge("selftest.level", "synthetic level").set(-1.5)
    hist = registry.histogram(
        "selftest.latency_seconds", "synthetic latency", buckets=(0.1, 1.0)
    )
    for v in (0.05, 0.1, 0.5, 1.0, 7.0):  # boundaries land in their bucket
        hist.observe(v)
    registry.ewma("selftest.rate", "synthetic rate", alpha=0.5).observe(10.0)

    snapshot = registry.snapshot()
    doc = to_json(snapshot)
    try:
        rebuilt = snapshot_from_json(json.loads(json.dumps(doc)))
    except Exception as err:  # pragma: no cover - defensive
        return [f"json round-trip raised: {err!r}"]
    if to_json(rebuilt, host=doc["host"])["metrics"] != doc["metrics"]:
        problems.append("json round-trip is not the identity")

    text = to_prometheus(snapshot)
    expected_lines = (
        "# TYPE repro_selftest_events_total counter",
        "repro_selftest_events_total 3",
        'repro_selftest_events_total{kind="alert"} 2',
        "repro_selftest_level -1.5",
        'repro_selftest_latency_seconds_bucket{le="0.1"} 2',
        'repro_selftest_latency_seconds_bucket{le="1"} 4',
        'repro_selftest_latency_seconds_bucket{le="+Inf"} 5',
        "repro_selftest_latency_seconds_count 5",
        "repro_selftest_rate 10",
    )
    for line in expected_lines:
        if line not in text.splitlines():
            problems.append(f"prometheus exposition missing: {line}")

    rendered = render_top(snapshot, host=doc["host"])
    for needle in ("selftest.events", "selftest.latency_seconds", "p90"):
        if needle not in rendered:
            problems.append(f"console rendering missing: {needle}")
    return problems
