"""repro.obs — metrics, tracing, and profiling telemetry.

The observability layer for the train/serve stack (see
docs/OBSERVABILITY.md for the metric catalog and conventions):

* :mod:`repro.obs.registry` — a dependency-free, thread-safe metrics
  registry (counters, gauges, histograms, EWMA rates) behind a global
  switch that is **off by default**;
* :mod:`repro.obs.tracing` — span-based hierarchical wall-clock tracing
  (``with trace("train.step"):`` or decorator form);
* :mod:`repro.obs.profiler` — a sampling profiler hooked into the nn
  autograd tape (per-op-type forward/backward time and node counts);
* :mod:`repro.obs.export` — Prometheus text exposition, JSON dump/load,
  and a ``top``-style console table, wired to ``cli metrics`` and the
  ``--telemetry <path>`` flag on ``cli train|pipeline|bench``.

Instrumented hot paths (trainer, ``OnlineXatu``, ``SequenceTracker`` /
``FlowCollector``, ``ScrubbingCenter``, the fused LSTM inference lane)
guard on :func:`obs_enabled`, so a run that never enables telemetry pays
one branch per call site; the ``train_epoch_obs`` bench case tracks the
enabled-path overhead (<3% of a train step).
"""

from .export import (
    TELEMETRY_FORMAT_VERSION,
    host_metadata,
    load_telemetry,
    render_top,
    selftest,
    snapshot_from_json,
    to_json,
    to_prometheus,
    write_telemetry,
)
from .profiler import TapeProfile, TapeProfiler, profile_tape
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Ewma,
    Gauge,
    Histogram,
    MetricSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    obs_enabled,
    set_enabled,
    telemetry,
)
from .tracing import SpanNode, Tracer, get_tracer, trace

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "TELEMETRY_FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Ewma",
    "MetricsRegistry",
    "MetricSnapshot",
    "MetricsSnapshot",
    "SpanNode",
    "TapeProfile",
    "TapeProfiler",
    "Tracer",
    "get_registry",
    "get_tracer",
    "host_metadata",
    "load_telemetry",
    "obs_enabled",
    "profile_tape",
    "render_top",
    "selftest",
    "set_enabled",
    "snapshot_from_json",
    "telemetry",
    "to_json",
    "to_prometheus",
    "trace",
    "write_telemetry",
]
