"""Span-based tracing: a hierarchical wall-clock timing tree.

``with trace("train.step"):`` (or ``@trace("train.step")`` as a
decorator) opens a *span*.  Spans nest: each distinct call path gets its
own node in a tree keyed by span name, aggregating call count and total
wall time; exclusive time (total minus the time spent in child spans) is
derived at snapshot time.  Re-entrancy is natural — a recursive span
simply appears as its own child.

Spans are exception-safe (the span is closed and accounted even when the
body raises) and honour the global telemetry switch: when telemetry is
disabled, entering a span is a no-op costing one branch.

Each thread tracks its own span stack; the aggregated tree is shared and
lock-guarded, so multi-threaded tracing composes.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass
from typing import Callable

from .registry import obs_enabled

__all__ = ["SpanNode", "Tracer", "get_tracer", "trace"]


class _Node:
    __slots__ = ("name", "calls", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.children: dict[str, _Node] = {}


@dataclass(frozen=True)
class SpanNode:
    """Immutable snapshot of one span-tree node."""

    name: str
    calls: int
    total_s: float
    children: tuple["SpanNode", ...] = ()

    @property
    def child_s(self) -> float:
        return sum(c.total_s for c in self.children)

    @property
    def exclusive_s(self) -> float:
        """Wall time spent in this span but not in any child span."""
        return max(0.0, self.total_s - self.child_s)

    def find(self, name: str) -> "SpanNode | None":
        """Depth-first lookup of the first node with ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def render(self, indent: int = 0) -> str:
        lines = []
        if self.name:
            lines.append(
                f"{'  ' * indent}{self.name:<{max(1, 40 - 2 * indent)}} "
                f"{self.calls:>6}  {self.total_s * 1e3:>10.2f}  "
                f"{self.exclusive_s * 1e3:>10.2f}"
            )
            indent += 1
        for child in sorted(self.children, key=lambda c: -c.total_s):
            lines.append(child.render(indent))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "exclusive_s": self.exclusive_s,
            "children": [c.to_json() for c in self.children],
        }

    @staticmethod
    def from_json(payload: dict) -> "SpanNode":
        return SpanNode(
            name=payload["name"],
            calls=int(payload["calls"]),
            total_s=float(payload["total_s"]),
            children=tuple(
                SpanNode.from_json(c) for c in payload.get("children", ())
            ),
        )


class Tracer:
    """Aggregating span tracer with per-thread stacks and a shared tree."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._root = _Node("")
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[_Node]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self._root]
            self._local.stack = stack
        return stack

    def _enter(self, name: str) -> _Node:
        stack = self._stack()
        parent = stack[-1]
        with self._lock:
            node = parent.children.get(name)
            if node is None:
                node = _Node(name)
                parent.children[name] = node
        stack.append(node)
        return node

    def _exit(self, node: _Node, elapsed: float) -> None:
        stack = self._stack()
        # Pop back to (and including) our node even if an inner span leaked.
        while len(stack) > 1:
            popped = stack.pop()
            if popped is node:
                break
        with self._lock:
            node.calls += 1
            node.total_s += elapsed

    # ------------------------------------------------------------------
    def span(self, name: str) -> "_SpanContext":
        return _SpanContext(self, name)

    def snapshot(self) -> SpanNode:
        """Frozen copy of the aggregated tree (root has an empty name)."""
        with self._lock:
            return _freeze(self._root)

    def reset(self) -> None:
        with self._lock:
            self._root = _Node("")
        # Dangling per-thread stacks would mutate the old tree harmlessly;
        # fresh stacks are rebuilt rooted at the new tree on first use.
        self._local = threading.local()


def _freeze(node: _Node) -> SpanNode:
    return SpanNode(
        name=node.name,
        calls=node.calls,
        total_s=node.total_s,
        children=tuple(_freeze(c) for c in node.children.values()),
    )


class _SpanContext:
    """Context manager *and* decorator for one named span."""

    __slots__ = ("_tracer", "_name", "_node", "_start")

    def __init__(self, tracer: Tracer, name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._node: _Node | None = None

    def __enter__(self) -> "_SpanContext":
        if obs_enabled():
            self._node = self._tracer._enter(self._name)
            self._start = time.perf_counter()
        else:
            self._node = None
        return self

    def __exit__(self, *exc) -> bool:
        # Close the span even when the body raised (``exc`` is non-empty).
        if self._node is not None:
            elapsed = time.perf_counter() - self._start
            self._tracer._exit(self._node, elapsed)
            self._node = None
        return False

    def __call__(self, func: Callable) -> Callable:
        tracer, name = self._tracer, self._name

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with _SpanContext(tracer, name):
                return func(*args, **kwargs)

        return wrapper


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by :func:`trace`."""
    return _TRACER


def trace(name: str) -> _SpanContext:
    """Open a span on the global tracer (context manager or decorator)."""
    return _TRACER.span(name)
