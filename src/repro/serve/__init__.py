"""repro.serve — the sharded, checkpointable online serving engine.

Wraps the streaming detector (:class:`~repro.core.OnlineXatu`) in a
deployment runtime: N worker shards partition the customer universe, a
:class:`~repro.netflow.FlowCollector`-backed ingest loop feeds them
minute batches, per-shard alerts merge into one ordered stream, and the
complete online state checkpoints to a versioned on-disk format so a
killed-and-restored run emits the same alerts as one that never stopped.
See docs/SERVING.md.
"""

from .config import BACKENDS, DEGRADATION_POLICIES, ServeConfig
from .engine import ServeEngine
from .routing import ContiguousCustomerRouter
from .shard import ShardFailure, ShardWorker
from .state import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointFormatError,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "ServeConfig",
    "ServeEngine",
    "ContiguousCustomerRouter",
    "ShardWorker",
    "ShardFailure",
    "BACKENDS",
    "DEGRADATION_POLICIES",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointFormatError",
    "write_checkpoint",
    "read_checkpoint",
    "list_checkpoints",
    "latest_checkpoint",
]
