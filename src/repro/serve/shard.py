"""One serving shard: an :class:`~repro.core.OnlineXatu` partition plus an
execution backend.

The worker speaks a tiny command protocol (``step`` / ``state`` / ``load``
/ ``reset`` / ``stop``) over a connection-like object, so the same loop
serves all three backends:

* ``inline``  — commands execute synchronously in the caller's thread;
* ``thread``  — a daemon thread runs the loop over a queue pair;
* ``process`` — a forked child runs the loop over a ``multiprocessing``
  pipe (the only backend that escapes the GIL for the numpy scoring
  work).

``submit_step`` / ``collect`` split each minute into a dispatch and a
join, so the engine can fan a minute out to every shard before waiting on
any of them — that overlap is the whole point of the thread/process
backends.  A worker that raises is marked unhealthy and stops scoring
(the engine degrades gracefully instead of crashing the feed).

Shared-memory transport
-----------------------
With ``transport="shm"`` the process backend stops pickling flow payloads
through the pipe: a :class:`FlowBatch` step payload is staged in a
per-shard :class:`~repro.serve.shm.ShmRing` and the pipe carries only the
``("shm", name, offset, length)`` control tuple.  The child decodes the
block as a zero-copy view and replies after the detector has consumed it,
which is what makes the lock-free ring correct.  Hosts without a usable
shared-memory filesystem fall back to the pipe transport with a warning;
the transports are interchangeable — same state, same alerts, same
checkpoints.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import warnings
from typing import Callable, Sequence

from ..core.online import OnlineAlert, OnlineXatu
from ..netflow.records import FLOW_WIRE_SIZE, FlowBatch, FlowRecord
from ..signals.history import AlertRecord
from .shm import ShmReader, ShmRing

__all__ = ["ShardWorker", "ShardFailure"]


class ShardFailure(RuntimeError):
    """A shard worker raised (or died) while executing a command."""


class _QueuePairConn:
    """``Connection``-shaped wrapper over two queues (thread backend)."""

    def __init__(self, send_q: queue.Queue, recv_q: queue.Queue) -> None:
        self._send_q = send_q
        self._recv_q = recv_q

    def send(self, obj) -> None:
        self._send_q.put(obj)

    def recv(self):
        return self._recv_q.get()


def _decode_payload(flows, reader: ShmReader):
    """Resolve a step payload: shm control tuples become zero-copy batches."""
    if type(flows) is tuple and flows and flows[0] == "shm":
        _, name, offset, length = flows
        return FlowBatch.from_buffer(
            reader.view(name, offset, length), count=length // FLOW_WIRE_SIZE
        )
    return flows


def _worker_loop(detector: OnlineXatu, conn) -> None:
    """Serve commands until ``stop``; exceptions become error replies."""
    reader = ShmReader()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        if op == "stop":
            reader.close()
            conn.send(("ok", None))
            return
        try:
            if op == "step":
                _, minute, flows, cdet_alerts, mitigation_ends = message
                flows = _decode_payload(flows, reader)
                for record in cdet_alerts:
                    detector.ingest_cdet_alert(record)
                for customer_id, end_minute in mitigation_ends:
                    detector.ingest_mitigation_end(customer_id, end_minute)
                result = detector.step(minute, flows)
                # Release the zero-copy view before replying: the parent
                # may rewrite (or unlink, on growth) the ring slot as soon
                # as it sees the reply.
                flows = None
            elif op == "state":
                result = detector.state_dict()
            elif op == "load":
                detector.load_state_dict(message[1])
                result = None
            elif op == "reset":
                detector.reset()
                result = None
            else:
                raise ValueError(f"unknown shard command {op!r}")
            conn.send(("ok", result))
        except Exception as exc:  # surfaced to the engine as ShardFailure
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class ShardWorker:
    """Owns one detector partition behind a chosen execution backend."""

    def __init__(
        self,
        index: int,
        detector_factory: Callable[[], OnlineXatu],
        backend: str = "inline",
        transport: str = "pipe",
        shm_ring_bytes: int = 1 << 20,
    ) -> None:
        self.index = index
        self.backend = backend
        # The worker loop never touches `self` — it owns only the detector
        # and its connection end.  Liveness/dispatch bookkeeping is written
        # exclusively by the engine thread driving submit()/collect().
        self.healthy = True  # owner: engine thread
        self._pending = 0  # owner: engine thread
        self._ring: ShmRing | None = None
        self.transport = "pipe"
        if backend == "process" and transport == "shm":
            try:
                self._ring = ShmRing(shm_ring_bytes)
                self.transport = "shm"
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"shared-memory transport unavailable ({exc}); "
                    "shard falling back to pipe transport",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if backend == "inline":
            self._detector = detector_factory()
            self._inline_result = None  # owner: engine thread
        elif backend == "thread":
            to_worker: queue.Queue = queue.Queue()
            to_engine: queue.Queue = queue.Queue()
            self._conn = _QueuePairConn(to_worker, to_engine)
            worker_conn = _QueuePairConn(to_engine, to_worker)
            self._thread = threading.Thread(
                target=_worker_loop,
                args=(detector_factory(), worker_conn),
                name=f"serve-shard-{index}",
                daemon=True,
            )
            self._thread.start()
        elif backend == "process":
            ctx = multiprocessing.get_context()
            self._conn, child_conn = ctx.Pipe()
            # The detector is built in the parent and inherited by the
            # fork; all live state then belongs to the child (the parent
            # reads it back via the ``state`` command).
            self._process = ctx.Process(
                target=_worker_loop,
                args=(detector_factory(), child_conn),
                name=f"serve-shard-{index}",
                daemon=True,
            )
            self._process.start()
        else:
            raise ValueError(f"unknown shard backend {backend!r}")

    # ------------------------------------------------------------------
    def _call(self, *message):
        """Synchronous command round-trip."""
        self.submit(*message)
        return self.collect()

    def submit(self, *message) -> None:
        """Dispatch one command without waiting for its reply."""
        if not self.healthy:
            raise ShardFailure(f"shard {self.index} is unhealthy")
        if self._pending:
            raise ShardFailure(f"shard {self.index} already has a pending command")
        self._pending = 1
        if self.backend == "inline":
            # Execute immediately with the same semantics as _worker_loop.
            op = message[0]
            try:
                if op == "step":
                    _, minute, flows, cdet_alerts, mitigation_ends = message
                    for record in cdet_alerts:
                        self._detector.ingest_cdet_alert(record)
                    for customer_id, end_minute in mitigation_ends:
                        self._detector.ingest_mitigation_end(customer_id, end_minute)
                    self._inline_result = ("ok", self._detector.step(minute, flows))
                elif op == "state":
                    self._inline_result = ("ok", self._detector.state_dict())
                elif op == "load":
                    self._detector.load_state_dict(message[1])
                    self._inline_result = ("ok", None)
                elif op == "reset":
                    self._detector.reset()
                    self._inline_result = ("ok", None)
                elif op == "stop":
                    self._inline_result = ("ok", None)
                else:
                    raise ValueError(f"unknown shard command {op!r}")
            except Exception as exc:
                self._inline_result = ("error", f"{type(exc).__name__}: {exc}")
        else:
            self._conn.send(message)

    def collect(self):
        """Wait for and unwrap the pending command's reply."""
        if not self._pending:
            raise ShardFailure(f"shard {self.index} has no pending command")
        self._pending = 0
        if self.backend == "inline":
            status, payload = self._inline_result
            self._inline_result = None
        else:
            try:
                status, payload = self._conn.recv()
            except (EOFError, OSError) as exc:
                self.healthy = False
                raise ShardFailure(f"shard {self.index} died: {exc}") from exc
        if status != "ok":
            self.healthy = False
            raise ShardFailure(f"shard {self.index} failed: {payload}")
        return payload

    # ------------------------------------------------------------------
    def submit_step(
        self,
        minute: int,
        flows: "FlowBatch | Sequence[FlowRecord]",
        cdet_alerts: Sequence[AlertRecord] = (),
        mitigation_ends: Sequence[tuple[int, int]] = (),
    ) -> None:
        if isinstance(flows, FlowBatch):
            if self._ring is not None:
                # Stage the batch bytes in shared memory; the pipe carries
                # only the control tuple.  Safe to reuse the ring slot on
                # the next submit: the child replies only after the
                # detector fully consumed this payload.
                payload = ("shm", *self._ring.write(flows.to_bytes()))
            else:
                payload = flows
        else:
            payload = list(flows)
        self.submit("step", minute, payload, list(cdet_alerts), list(mitigation_ends))

    def step(
        self,
        minute: int,
        flows: "FlowBatch | Sequence[FlowRecord]",
        cdet_alerts: Sequence[AlertRecord] = (),
        mitigation_ends: Sequence[tuple[int, int]] = (),
    ) -> list[OnlineAlert]:
        self.submit_step(minute, flows, cdet_alerts, mitigation_ends)
        return self.collect()

    def state_dict(self) -> dict:
        return self._call("state")

    def load_state_dict(self, state: dict) -> None:
        self._call("load", state)

    def reset(self) -> None:
        self._call("reset")

    def close(self) -> None:
        """Stop the backend (idempotent; tolerates a dead worker)."""
        if self.backend == "inline":
            return
        try:
            if self.healthy and not self._pending:
                self._conn.send(("stop",))
                self._conn.recv()
        except (EOFError, OSError, ShardFailure):
            pass
        if self.backend == "process":
            self._process.join(timeout=5)
            if self._process.is_alive():
                self._process.terminate()
        elif self.backend == "thread":
            self._thread.join(timeout=5)
        if self._ring is not None:
            self._ring.close()
            self._ring = None  # owner: engine thread
