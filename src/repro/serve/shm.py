"""Shared-memory payload transport for process-backend shards.

The process backend's pipe used to carry every minute's flow payload as a
pickled record list — one serialize/copy/deserialize round trip per shard
per minute.  :class:`ShmRing` moves the payload bytes into one
``multiprocessing.shared_memory`` segment per shard: the parent writes the
encoded :class:`~repro.netflow.records.FlowBatch` block into the ring and
ships only a ``("shm", name, offset, length)`` control tuple through the
pipe; the child maps the segment once (:class:`ShmReader`) and decodes the
block as a zero-copy ``np.frombuffer`` view.

The shard protocol is strict request/reply — one in-flight command per
shard, and the child replies only after the detector has fully consumed
the batch — so a single segment with sequential offsets is a correct ring:
by the time the writer wraps (or grows the segment), the previous payload
is guaranteed dead.  No locks, no copies, no reader/writer races.
"""

from __future__ import annotations

from multiprocessing import shared_memory

__all__ = ["ShmRing", "ShmReader", "MIN_RING_BYTES"]

MIN_RING_BYTES = 4096


class ShmRing:
    """Single-producer payload channel over one shared-memory segment.

    ``write`` returns the ``(segment name, offset, length)`` control tuple
    to ship over the pipe.  Payloads larger than the segment trigger a
    growth: a fresh, bigger segment is allocated under a new name (the
    reader re-attaches when the name in the control tuple changes) and the
    old one is unlinked — safe even while the child still has it mapped.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(int(capacity), MIN_RING_BYTES)
        )
        self._write = 0
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._shm.size

    def write(self, payload: bytes) -> tuple[str, int, int]:
        """Stage one payload; returns its ``(name, offset, length)``."""
        n = len(payload)
        if n > self._shm.size:
            self._grow(n)
        if self._write + n > self._shm.size:
            self._write = 0  # wrap: the previous payload is already consumed
        offset = self._write
        self._shm.buf[offset : offset + n] = payload
        self._write = offset + n
        return self._shm.name, offset, n

    def _grow(self, need: int) -> None:
        old = self._shm
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(old.size * 2, need)
        )
        self._write = 0
        old.close()
        old.unlink()

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
            self._shm.unlink()
        except (BufferError, FileNotFoundError, OSError):
            pass


class ShmReader:
    """Consumer-side cache of the producer's current segment.

    Re-attaches only when the control tuple names a new segment (ring
    growth); otherwise each ``view`` call is a constant-time buffer slice.
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None

    def view(self, name: str, offset: int, length: int) -> memoryview:
        if self._shm is None or self._shm.name != name:
            if self._shm is not None:
                try:
                    self._shm.close()
                except BufferError:
                    # A numpy view of the old segment is still alive; leave
                    # the mapping for the GC rather than crash the worker.
                    pass
            # The forked child shares the parent's resource-tracker
            # process, so this attach re-registers a name the tracker
            # already holds (a set — idempotent).  Unregistering here
            # would strip the *parent's* registration; the parent is the
            # sole owner and unlinks once on close.
            self._shm = shared_memory.SharedMemory(name=name)
        return self._shm.buf[offset : offset + length]

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass
            self._shm = None
