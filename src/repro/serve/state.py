"""Durable, versioned on-disk checkpoints for the serving engine.

A checkpoint is a directory::

    <root>/
      LATEST                  -> name of the newest ckpt-* subdirectory
      ckpt-00000419/
        MANIFEST.json         {"format_version": 1, "minute": 419, ...}
        engine.pkl            engine-level state (collector, counters)
        shard-00.pkl          one OnlineXatu state_dict per shard
        shard-01.pkl
        ...

Every payload is a *canonical* state dict (sorted collections only, see
``OnlineXatu.state_dict``) pickled at a pinned protocol, and the manifest
is sorted-key JSON with no wall-clock content — so equal states produce
byte-identical checkpoints, the property the crash-equivalence tests
assert.  Writes are atomic (staged to a temp directory, then renamed) so
a crash mid-snapshot never corrupts the latest good checkpoint.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from pathlib import Path

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointFormatError",
    "write_checkpoint",
    "read_checkpoint",
    "list_checkpoints",
    "latest_checkpoint",
]

CHECKPOINT_FORMAT_VERSION = 1

# Pinned: newer pickle protocols could serialize the same state to
# different bytes, silently breaking checkpoint byte-identity.
_PICKLE_PROTOCOL = 4


class CheckpointFormatError(ValueError):
    """Raised for unreadable or incompatibly-versioned checkpoints."""


def _dump(obj, path: Path) -> None:
    with open(path, "wb") as fh:
        pickle.dump(obj, fh, protocol=_PICKLE_PROTOCOL)


def _load(path: Path):
    with open(path, "rb") as fh:
        return pickle.load(fh)


def write_checkpoint(
    root: str | Path,
    minute: int,
    shard_states: list[dict],
    engine_state: dict,
) -> Path:
    """Atomically write one checkpoint; returns the ``ckpt-*`` directory."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    name = f"ckpt-{minute:08d}"
    staging = root / f".tmp-{name}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "minute": int(minute),
        "shards": len(shard_states),
        "files": ["engine.pkl"]
        + [f"shard-{i:02d}.pkl" for i in range(len(shard_states))],
    }
    (staging / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    _dump(engine_state, staging / "engine.pkl")
    for i, state in enumerate(shard_states):
        _dump(state, staging / f"shard-{i:02d}.pkl")
    final = root / name
    if final.exists():
        shutil.rmtree(final)
    os.replace(staging, final)
    # The LATEST pointer is advisory (readers fall back to sorting the
    # ckpt-* names), so a torn write here is harmless.
    latest_tmp = root / ".LATEST.tmp"
    latest_tmp.write_text(name + "\n")
    os.replace(latest_tmp, root / "LATEST")
    return final


def list_checkpoints(root: str | Path) -> list[Path]:
    """All checkpoint directories under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir() and p.name.startswith("ckpt-"))


def latest_checkpoint(root: str | Path) -> Path | None:
    """The newest checkpoint directory, or None if there is none."""
    root = Path(root)
    pointer = root / "LATEST"
    if pointer.is_file():
        candidate = root / pointer.read_text().strip()
        if candidate.is_dir():
            return candidate
    checkpoints = list_checkpoints(root)
    return checkpoints[-1] if checkpoints else None


def read_checkpoint(path: str | Path) -> tuple[int, list[dict], dict]:
    """Load ``(minute, shard_states, engine_state)`` from one checkpoint.

    ``path`` may be a ``ckpt-*`` directory or a checkpoint root (the
    newest checkpoint is used).  Raises :class:`CheckpointFormatError` on
    missing manifests or a format version this code does not understand.
    """
    path = Path(path)
    if not (path / "MANIFEST.json").is_file():
        newest = latest_checkpoint(path)
        if newest is None:
            raise CheckpointFormatError(f"no checkpoint found under {path}")
        path = newest
    try:
        manifest = json.loads((path / "MANIFEST.json").read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointFormatError(f"unreadable manifest in {path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointFormatError(
            f"checkpoint {path} has format_version={version!r}; "
            f"this build reads version {CHECKPOINT_FORMAT_VERSION}"
        )
    n_shards = int(manifest["shards"])
    engine_state = _load(path / "engine.pkl")
    shard_states = [_load(path / f"shard-{i:02d}.pkl") for i in range(n_shards)]
    return int(manifest["minute"]), shard_states, engine_state
