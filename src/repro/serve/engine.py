"""The sharded, checkpointable serving engine.

:class:`ServeEngine` is the deployment loop from §2.6 made durable: a
:class:`~repro.netflow.FlowCollector` receives export datagrams, each
minute ``tick()`` partitions the arrived flows across N shard workers
(``customer_id % shards``), and the per-shard alerts are merged into one
``(minute, customer_id)``-ordered stream.

Shard-count invariance
----------------------
The A4/A5 signals (attack history, bipartite clustering) couple customers
*across* shards: a clustering feature of customer ``c`` depends on alerts
of other customers in the window.  The engine therefore broadcasts every
incumbent-defense alert to **all** shards — each shard's history/graph
stores are global, only its traffic matrix is partition-local — so the
merged alert stream is byte-identical for any shard count.  Tests assert
this.

Batched inference lane
----------------------
With ``ServeConfig.batched`` (the default) each shard's detector scores
all its watched customers in **one** stacked fused-inference pass per
minute (:meth:`~repro.core.XatuModel.hazards_np_batched`) instead of one
model call per customer; threshold/suppression decisions stay
per-customer.  The lanes are byte-identical in alerts and checkpoints —
differential tests prove it — so the per-customer lane survives purely
as the reference oracle and the slow path for debugging.

Durability
----------
``checkpoint()`` snapshots the collector plus every shard's complete
online state into a versioned on-disk format
(:mod:`repro.serve.state`); ``restore()`` loads one back, after which
replaying the same minutes produces the same merged stream as a run that
never stopped (the crash-equivalence guarantee).

Degradation
-----------
``tick()`` consults :meth:`~repro.netflow.FlowCollector.feed_health`
every minute: when the export-feed loss rate exceeds
``ServeConfig.degraded_loss_rate`` the minute counts as degraded —
flagged in the obs metrics, and (under the ``suppress`` policy) its
alerts are withheld.  An unhealthy shard (worker raised or died) stops
scoring its partition while the rest of the feed continues.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.online import OnlineAlert, OnlineXatu
from ..netflow.records import FlowBatch, FlowRecord
from ..netflow.sampler import FeedHealth, FlowCollector
from ..obs import get_registry, obs_enabled, trace
from ..signals.history import AlertRecord
from .config import ServeConfig
from .shard import ShardFailure, ShardWorker
from .state import read_checkpoint, write_checkpoint

__all__ = ["ServeEngine"]

DetectorFactory = Callable[[dict[int, int]], OnlineXatu]


def _merge_key(alert: OnlineAlert) -> tuple[int, int]:
    return (alert.minute, alert.customer_id)


class ServeEngine:
    """Drive a sharded fleet of :class:`~repro.core.OnlineXatu` partitions.

    Parameters
    ----------
    detector_factory:
        ``factory(partition_customer_of) -> OnlineXatu`` — builds one
        shard's detector from its slice of the address→customer map.  The
        factory must give every shard the same model/threshold/stores
        configuration, otherwise shard-count invariance is forfeit.
    customer_of:
        The full destination-address → customer-id map; the engine routes
        flows to shards with it.  Either a plain dict or an analytic
        router such as :class:`~repro.serve.ContiguousCustomerRouter` —
        with a router, routing and shard partitioning are arithmetic
        (O(batch) work, O(1) memory) and each shard's factory receives a
        :meth:`~repro.serve.ContiguousCustomerRouter.shard_view` instead
        of a dict slice, so million-customer universes never materialize
        a routing table.
    config:
        A validated :class:`~repro.serve.ServeConfig`.
    """

    name = "serve"

    def __init__(
        self,
        detector_factory: DetectorFactory,
        customer_of: dict[int, int],
        config: ServeConfig | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        if isinstance(customer_of, dict):
            self.customer_of = dict(customer_of)
        else:
            self.customer_of = customer_of
        self._factory = detector_factory
        self.collector = FlowCollector()
        self.shards = [
            ShardWorker(
                index,
                self._shard_factory(index),
                backend=self.config.backend,
                transport=self.config.transport,
                shm_ring_bytes=self.config.shm_ring_bytes,
            )
            for index in range(self.config.shards)
        ]
        self._routing_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._minute = -1
        self._pending: list[OnlineAlert] = []
        self._pending_cdet: list[AlertRecord] = []
        self._pending_ends: list[tuple[int, int]] = []
        self._alerts_emitted = 0
        self._alerts_suppressed = 0
        self._degraded_minutes = 0
        self._minutes_observed = 0
        self._checkpoints_written = 0
        self._closed = False

    def _shard_factory(self, index: int) -> Callable[[], OnlineXatu]:
        n = self.config.shards
        if isinstance(self.customer_of, dict):
            partition = {
                addr: cid for addr, cid in self.customer_of.items() if cid % n == index
            }
        else:
            partition = self.customer_of.shard_view(index, n)
        factory = self._factory
        batched = self.config.batched
        inference_dtype = self.config.inference_dtype

        def build() -> OnlineXatu:
            detector = factory(partition)
            # Lane knobs are engine policy, not detector state: applied on
            # every (re)build, never serialized — so checkpoints are
            # lane-independent and a restore may flip lanes freely.
            if isinstance(detector, OnlineXatu):
                detector.batched = batched
                detector.inference_dtype = (
                    None if inference_dtype is None else np.dtype(inference_dtype)
                )
            return detector

        return build

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest_datagram(self, blob: bytes) -> int:
        """Receive one headered export datagram; returns its record count."""
        return len(self.collector.ingest_datagram(blob))

    def ingest_flows(self, flows: "FlowBatch | Sequence[FlowRecord]") -> int:
        """Receive already-decoded flows (bypasses the wire codec)."""
        return self.collector.add_flows(flows)

    def ingest_cdet_alert(self, record: AlertRecord) -> None:
        """Queue one incumbent-defense alert for broadcast to every shard
        on the next ``tick`` (A2/A4/A5 stores are global signals)."""
        self._pending_cdet.append(record)

    def ingest_mitigation_end(self, customer_id: int, minute: int) -> None:
        """Queue one mitigation-end notice (re-arms the customer)."""
        self._pending_ends.append((customer_id, minute))

    # ------------------------------------------------------------------
    # the minute loop
    # ------------------------------------------------------------------
    def _routing_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (dst address, customer id) arrays for columnar routing."""
        if self._routing_cache is None:
            n = len(self.customer_of)
            addrs = np.fromiter(self.customer_of.keys(), dtype=np.int64, count=n)
            cids = np.fromiter(self.customer_of.values(), dtype=np.int64, count=n)
            order = np.argsort(addrs, kind="stable")
            self._routing_cache = (addrs[order], cids[order])
        return self._routing_cache

    def _partition(self, batch: FlowBatch) -> tuple[list[FlowBatch], int]:
        """Split one minute's batch into per-shard batches, columnar.

        Routing (``customer_of`` lookup) and shard assignment
        (``customer_id % shards``) happen as two vectorized passes; order
        within each shard's batch is arrival order, exactly what the old
        per-record append loop produced.
        """
        n = self.config.shards
        arr = batch.array
        if not len(arr):
            return [FlowBatch.empty() for _ in range(n)], 0
        dst = arr["dst_addr"].astype(np.int64)
        if not isinstance(self.customer_of, dict):
            cids = self.customer_of.route_batch(dst)
            routed = cids >= 0
            shard_of = np.where(routed, cids % n, -1)
        else:
            addrs, cids = self._routing_arrays()
            if len(addrs):
                pos = np.minimum(np.searchsorted(addrs, dst), len(addrs) - 1)
                routed = addrs[pos] == dst
                shard_of = np.where(routed, cids[pos] % n, -1)
            else:
                routed = np.zeros(len(arr), dtype=bool)
                shard_of = np.full(len(arr), -1, dtype=np.int64)
        unrouted = int(len(arr) - np.count_nonzero(routed))
        return (
            [FlowBatch(arr[shard_of == index]) for index in range(n)],
            unrouted,
        )

    def tick(self, minute: int) -> list[OnlineAlert]:
        """Score one minute: drain the collector, fan out, merge alerts.

        Must be called once per minute, monotonically — quiet minutes too
        (absence of traffic is signal).  Returns the minute's merged
        alerts (also available via :meth:`poll_alerts`).
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if minute <= self._minute:
            raise ValueError(f"minutes must advance: got {minute} after {self._minute}")
        self._minute = minute
        self._minutes_observed += 1
        telemetry_on = obs_enabled()

        batch = self.collector.drain_batch()
        by_shard, unrouted = self._partition(batch)

        cdet_alerts, self._pending_cdet = self._pending_cdet, []
        ends, self._pending_ends = self._pending_ends, []

        health = self.collector.feed_health()
        degraded = health.loss_rate > self.config.degraded_loss_rate
        if degraded:
            self._degraded_minutes += 1

        minute_alerts: list[OnlineAlert] = []
        with trace("serve.tick"):
            # Fan out before joining anything: with thread/process
            # backends the shards score this minute concurrently.
            dispatched = []
            for shard, shard_flows in zip(self.shards, by_shard):
                if not shard.healthy:
                    continue
                start = time.perf_counter()
                try:
                    shard.submit_step(minute, shard_flows, cdet_alerts, ends)
                except ShardFailure:
                    continue
                dispatched.append((shard, start))
            for shard, start in dispatched:
                try:
                    minute_alerts.extend(shard.collect())
                except ShardFailure:
                    pass
                if telemetry_on:
                    get_registry().histogram(
                        "serve.shard_minute_seconds",
                        "per-shard wall time for one minute",
                    ).observe(time.perf_counter() - start, shard=str(shard.index))

        minute_alerts.sort(key=_merge_key)
        suppressed = degraded and self.config.degradation_policy == "suppress"
        if suppressed:
            self._alerts_suppressed += len(minute_alerts)
            minute_alerts = []
        self._pending.extend(minute_alerts)
        self._alerts_emitted += len(minute_alerts)

        if telemetry_on:
            registry = get_registry()
            registry.counter("serve.minutes", "minutes served").inc()
            if minute_alerts:
                registry.counter("serve.alerts", "merged alerts emitted").inc(
                    len(minute_alerts)
                )
            if unrouted:
                registry.counter(
                    "serve.flows_unrouted", "flows dropped: unknown destination"
                ).inc(unrouted)
            if suppressed:
                registry.counter(
                    "serve.alerts_suppressed", "alerts withheld while degraded"
                ).inc(self._alerts_suppressed)
            registry.gauge(
                "serve.feed_loss_rate", "collector-observed export loss rate"
            ).set(health.loss_rate)
            registry.gauge(
                "serve.feed_degraded", "1 while the export feed is degraded"
            ).set(1.0 if degraded else 0.0)
            for shard in self.shards:
                registry.gauge(
                    "serve.shard_healthy", "1 while the shard worker is live"
                ).set(1.0 if shard.healthy else 0.0, shard=str(shard.index))

        if (
            self.config.checkpoint_every
            and self.config.checkpoint_dir is not None
            and self._minutes_observed % self.config.checkpoint_every == 0
        ):
            self.checkpoint()
        return minute_alerts

    def poll_alerts(self) -> list[OnlineAlert]:
        """Drain the merged alert stream accumulated since the last poll."""
        pending, self._pending = self._pending, []
        return pending

    def run(
        self, minutes: Iterable[tuple[int, Sequence[bytes]]]
    ) -> list[OnlineAlert]:
        """Convenience loop: ``(minute, datagrams)`` batches → merged alerts."""
        alerts: list[OnlineAlert] = []
        for minute, datagrams in minutes:
            for blob in datagrams:
                self.ingest_datagram(blob)
            alerts.extend(self.tick(minute))
        return alerts

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    @property
    def current_minute(self) -> int:
        return self._minute

    def feed_health(self) -> FeedHealth:
        return self.collector.feed_health()

    def shard_health(self) -> dict[int, bool]:
        """Liveness of every shard worker."""
        return {shard.index: shard.healthy for shard in self.shards}

    def stats(self) -> dict:
        """Engine-level counters (the checkpointed subset plus health)."""
        return {
            "minute": self._minute,
            "minutes_observed": self._minutes_observed,
            "alerts_emitted": self._alerts_emitted,
            "alerts_suppressed": self._alerts_suppressed,
            "degraded_minutes": self._degraded_minutes,
            "checkpoints_written": self._checkpoints_written,
            "healthy_shards": sum(1 for s in self.shards if s.healthy),
            "shards": self.config.shards,
        }

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _engine_state(self) -> dict:
        return {
            "minute": self._minute,
            "minutes_observed": self._minutes_observed,
            "alerts_emitted": self._alerts_emitted,
            "alerts_suppressed": self._alerts_suppressed,
            "degraded_minutes": self._degraded_minutes,
            "collector": self.collector.state_dict(),
            "pending": [
                [a.customer_id, a.minute, a.survival] for a in self._pending
            ],
            "pending_cdet": [
                [
                    r.customer_id,
                    r.attack_type.value,
                    r.detect_minute,
                    r.end_minute,
                    r.peak_bytes,
                    sorted(int(a) for a in r.attackers),
                ]
                for r in self._pending_cdet
            ],
            "pending_ends": [list(pair) for pair in self._pending_ends],
            "shards": self.config.shards,
        }

    def checkpoint(self, root: str | Path | None = None) -> Path:
        """Snapshot the full engine + shard state to disk; returns the
        checkpoint directory."""
        root = root if root is not None else self.config.checkpoint_dir
        if root is None:
            raise ValueError("no checkpoint directory configured")
        shard_states = [shard.state_dict() for shard in self.shards]
        path = write_checkpoint(root, self._minute, shard_states, self._engine_state())
        self._checkpoints_written += 1
        if obs_enabled():
            get_registry().counter(
                "serve.checkpoints", "checkpoints written"
            ).inc()
        return path

    def restore(self, path: str | Path | None = None) -> int:
        """Load a checkpoint (default: the newest under the configured
        directory) into this engine; returns the restored minute.

        The engine must have been built with the same shard count the
        checkpoint was written with.
        """
        from ..synth.attacks import AttackType

        root = path if path is not None else self.config.checkpoint_dir
        if root is None:
            raise ValueError("no checkpoint directory configured")
        minute, shard_states, engine_state = read_checkpoint(root)
        if len(shard_states) != len(self.shards):
            raise ValueError(
                f"checkpoint has {len(shard_states)} shards, engine has "
                f"{len(self.shards)}"
            )
        for shard, state in zip(self.shards, shard_states):
            shard.load_state_dict(state)
        self._minute = int(engine_state["minute"])
        self._minutes_observed = int(engine_state["minutes_observed"])
        self._alerts_emitted = int(engine_state["alerts_emitted"])
        self._alerts_suppressed = int(engine_state["alerts_suppressed"])
        self._degraded_minutes = int(engine_state["degraded_minutes"])
        self.collector = FlowCollector()
        self.collector.load_state_dict(engine_state["collector"])
        self._pending = [
            OnlineAlert(int(c), int(m), float(s))
            for c, m, s in engine_state["pending"]
        ]
        self._pending_cdet = [
            AlertRecord(
                customer_id=int(c),
                attack_type=AttackType(t),
                detect_minute=int(d),
                end_minute=int(e),
                peak_bytes=float(p),
                attackers=frozenset(int(a) for a in attackers),
            )
            for c, t, d, e, p, attackers in engine_state["pending_cdet"]
        ]
        self._pending_ends = [
            (int(c), int(m)) for c, m in engine_state["pending_ends"]
        ]
        return minute

    def close(self) -> None:
        """Stop every shard worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
