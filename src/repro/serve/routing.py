"""Analytic destination→customer routing for stride-allocated universes.

The serving engine historically routed flows through an explicit
``{dst_addr: customer_id}`` dict — O(n_customers) memory and O(n) build
time, which caps the engine far below the lazy million-customer worlds
:mod:`repro.synth` can now stream.  Synthetic customer addresses are
allocated analytically (``base + customer_id * stride``), so routing can
be arithmetic instead of a table: :class:`ContiguousCustomerRouter` maps
any address batch to customer ids in O(batch) time and O(1) memory, and
hands the engine per-shard *views* instead of per-shard dict partitions.

The router quacks like the read side of the dict the detectors expect
(``get`` / ``in`` / ``len``), so :class:`~repro.core.OnlineXatu` accepts
either; it deliberately does not support iteration over all customers —
that is exactly the O(n) behaviour the lazy path exists to avoid.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ContiguousCustomerRouter"]


class ContiguousCustomerRouter:
    """Routes ``base + i * stride`` addresses to customer id ``i``.

    ``shard_index`` / ``shards`` restrict the view to customers with
    ``customer_id % shards == shard_index`` (the same partition rule the
    dict-based engine uses), so one router instance describes the full
    universe and :meth:`shard_view` derives each shard's slice for free.
    """

    __slots__ = ("base", "n_customers", "stride", "shard_index", "shards")

    # OnlineXatu checks this to start with an empty watch set that grows
    # with observed traffic instead of pre-watching every customer.
    lazy_watch = True

    def __init__(
        self,
        base: int,
        n_customers: int,
        stride: int = 256,
        shard_index: int | None = None,
        shards: int = 1,
    ) -> None:
        if n_customers < 1:
            raise ValueError("n_customers must be >= 1")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shard_index is not None and not 0 <= shard_index < shards:
            raise ValueError("shard_index must be in [0, shards)")
        self.base = int(base)
        self.n_customers = int(n_customers)
        self.stride = int(stride)
        self.shard_index = shard_index
        self.shards = int(shards)

    @classmethod
    def for_world(cls, world) -> "ContiguousCustomerRouter":
        """The router covering an :class:`~repro.synth.IspWorld`'s customers."""
        return cls(world._CUSTOMER_BASE, world.config.n_customers)

    # ------------------------------------------------------------------
    def _in_view(self, cid: np.ndarray) -> np.ndarray:
        if self.shard_index is None:
            return np.ones(len(cid), dtype=bool)
        return cid % self.shards == self.shard_index

    def route_batch(self, dst: np.ndarray) -> np.ndarray:
        """Customer ids for an address batch (-1 = unrouted / other shard)."""
        dst = np.asarray(dst, dtype=np.int64)
        offset = dst - self.base
        cid = offset // self.stride
        valid = (
            (offset >= 0)
            & (cid < self.n_customers)
            & (offset == cid * self.stride)  # exact service addresses only
        )
        valid &= self._in_view(cid)
        return np.where(valid, cid, np.int64(-1))

    # -- dict-shaped read API ------------------------------------------
    def get(self, addr: int, default=None):
        offset = int(addr) - self.base
        cid, rem = divmod(offset, self.stride)
        if rem != 0 or not 0 <= cid < self.n_customers:
            return default
        if self.shard_index is not None and cid % self.shards != self.shard_index:
            return default
        return cid

    def __contains__(self, addr: int) -> bool:
        return self.get(addr) is not None

    def __len__(self) -> int:
        if self.shard_index is None:
            return self.n_customers
        full, rem = divmod(self.n_customers, self.shards)
        return full + (1 if self.shard_index < rem else 0)

    # ------------------------------------------------------------------
    def shard_view(self, index: int, shards: int) -> "ContiguousCustomerRouter":
        """The partition of this router owned by shard ``index`` of ``shards``."""
        if self.shard_index is not None:
            raise ValueError("cannot re-shard an already-sharded router view")
        return ContiguousCustomerRouter(
            self.base, self.n_customers, self.stride, shard_index=index, shards=shards
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        view = (
            "" if self.shard_index is None
            else f", shard {self.shard_index}/{self.shards}"
        )
        return (
            f"ContiguousCustomerRouter(base={self.base}, "
            f"n={self.n_customers}, stride={self.stride}{view})"
        )
