"""Typed configuration for the serving engine."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ServeConfig", "BACKENDS", "DEGRADATION_POLICIES", "TRANSPORTS"]

BACKENDS = ("inline", "thread", "process")
DEGRADATION_POLICIES = ("flag", "suppress")
TRANSPORTS = ("pipe", "shm")


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs for :class:`~repro.serve.ServeEngine`.

    Attributes
    ----------
    shards:
        Number of worker shards the customer universe is partitioned
        across (``customer_id % shards``).  The merged alert stream is
        identical for any shard count; sharding only changes who does the
        scoring work.
    backend:
        ``inline`` scores shards sequentially in the caller's thread (the
        deterministic reference, and the right choice for tests);
        ``thread`` / ``process`` run one worker per shard so shards score
        concurrently on multi-core hosts.
    checkpoint_dir / checkpoint_every:
        Where and how often (in observed minutes) to snapshot the full
        online state.  ``checkpoint_every=0`` disables periodic snapshots
        (explicit :meth:`~repro.serve.ServeEngine.checkpoint` calls still
        work).
    degraded_loss_rate:
        Export-feed loss rate (from
        :meth:`~repro.netflow.FlowCollector.feed_health`) above which the
        feed counts as degraded.
    degradation_policy:
        ``flag`` keeps alerting and records the degradation in the obs
        metrics; ``suppress`` additionally withholds alerts emitted during
        degraded minutes (state still advances, so recovery is seamless).
    batched:
        When True (the default) each shard scores all its watched
        customers in one stacked fused-inference pass per minute instead
        of one model call per customer.  The two lanes are byte-identical
        in alerts *and* checkpoints (``tests/test_batched_equivalence.py``
        proves it differentially), so this is purely a speed knob; the
        per-customer lane is retained as the reference oracle.
    inference_dtype:
        ``None`` (full float64), ``"float32"`` or ``"float64"``; selects
        the reduced-precision inference policy applied to every
        :class:`~repro.core.OnlineXatu` the engine builds.  Like
        ``batched``, this is engine policy, never checkpointed state: a
        restore may change it freely.
    transport:
        How the process backend moves each minute's flow payload to its
        workers: ``shm`` (the default) stages the encoded batch in a
        per-shard shared-memory ring and pipes only a control tuple;
        ``pipe`` pickles the payload through the pipe.  The transports
        are interchangeable — same alerts, same checkpoints — and hosts
        without a usable shared-memory filesystem fall back to ``pipe``
        automatically (with a warning).  Ignored by the inline/thread
        backends, which pass batches by reference.
    shm_ring_bytes:
        Initial capacity of each shard's shared-memory ring.  Rings grow
        automatically when a minute's payload outgrows them; this knob
        just sets the starting footprint.
    """

    shards: int = 1
    backend: str = "inline"
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int = 0
    degraded_loss_rate: float = 0.05
    degradation_policy: str = "flag"
    batched: bool = True
    inference_dtype: str | None = None
    transport: str = "shm"
    shm_ring_bytes: int = 1 << 20

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if self.shm_ring_bytes < 1:
            raise ValueError("shm_ring_bytes must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if not 0.0 <= self.degraded_loss_rate <= 1.0:
            raise ValueError("degraded_loss_rate must be in [0, 1]")
        if self.degradation_policy not in DEGRADATION_POLICIES:
            raise ValueError(
                f"degradation_policy must be one of {DEGRADATION_POLICIES}"
            )
        if self.inference_dtype not in (None, "float32", "float64"):
            raise ValueError(
                "inference_dtype must be None, 'float32' or 'float64'"
            )
