"""Typed configuration for the serving engine."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ServeConfig", "BACKENDS", "DEGRADATION_POLICIES"]

BACKENDS = ("inline", "thread", "process")
DEGRADATION_POLICIES = ("flag", "suppress")


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs for :class:`~repro.serve.ServeEngine`.

    Attributes
    ----------
    shards:
        Number of worker shards the customer universe is partitioned
        across (``customer_id % shards``).  The merged alert stream is
        identical for any shard count; sharding only changes who does the
        scoring work.
    backend:
        ``inline`` scores shards sequentially in the caller's thread (the
        deterministic reference, and the right choice for tests);
        ``thread`` / ``process`` run one worker per shard so shards score
        concurrently on multi-core hosts.
    checkpoint_dir / checkpoint_every:
        Where and how often (in observed minutes) to snapshot the full
        online state.  ``checkpoint_every=0`` disables periodic snapshots
        (explicit :meth:`~repro.serve.ServeEngine.checkpoint` calls still
        work).
    degraded_loss_rate:
        Export-feed loss rate (from
        :meth:`~repro.netflow.FlowCollector.feed_health`) above which the
        feed counts as degraded.
    degradation_policy:
        ``flag`` keeps alerting and records the degradation in the obs
        metrics; ``suppress`` additionally withholds alerts emitted during
        degraded minutes (state still advances, so recovery is seamless).
    """

    shards: int = 1
    backend: str = "inline"
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int = 0
    degraded_loss_rate: float = 0.05
    degradation_policy: str = "flag"

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if not 0.0 <= self.degraded_loss_rate <= 1.0:
            raise ValueError("degraded_loss_rate must be in [0, 1]")
        if self.degradation_policy not in DEGRADATION_POLICIES:
            raise ValueError(
                f"degradation_policy must be one of {DEGRADATION_POLICIES}"
            )
