"""Attack-history stores: the A2/A4 signal state.

These stores are fed from an *alert timeline* — in training/validation that
timeline comes from CDet (NetScout) alerts, and in Xatu's autoregressive
test mode from Xatu's own detections (§5.3).  They answer two questions:

* :class:`PreviousAttackerStore` (A2): which sources have attacked this
  customer before minute ``t``?
* :class:`AttackHistoryStore` (A4): what attack types, of what severity,
  has this customer suffered, recency-weighted?  This yields the 18
  "attack severity (low, medium, high) for each attack type" features of
  Table 1.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from ..synth.attacks import AttackType

__all__ = [
    "SEVERITIES",
    "AlertRecord",
    "PreviousAttackerStore",
    "AttackHistoryStore",
    "severity_of",
]

SEVERITIES: tuple[str, ...] = ("low", "medium", "high")
_TYPE_ORDER: tuple[AttackType, ...] = tuple(AttackType)
_TYPE_INDEX = {t: i for i, t in enumerate(_TYPE_ORDER)}


@dataclass(frozen=True, slots=True)
class AlertRecord:
    """One detection alert on the timeline driving the history stores."""

    customer_id: int
    attack_type: AttackType
    detect_minute: int
    end_minute: int
    peak_bytes: float
    attackers: frozenset[int]


def severity_of(peak_bytes: float, base_rate: float) -> str:
    """Bucket an attack's severity by its peak relative to the baseline."""
    if base_rate <= 0:
        return "high"
    ratio = peak_bytes / base_rate
    if ratio < 5.0:
        return "low"
    if ratio < 20.0:
        return "medium"
    return "high"


class PreviousAttackerStore:
    """Time-aware per-customer attacker sets (the A2 membership).

    ``add_alert`` records attackers effective *after* the alert's end minute
    (you only learn who attacked once the event completes).  ``members_at``
    returns the union of attacker sets from alerts that ended by ``minute``.
    """

    def __init__(self) -> None:
        # per customer: sorted list of (effective_minute, attacker frozenset)
        self._timeline: dict[int, list[tuple[int, frozenset[int]]]] = {}

    def add_alert(self, alert: AlertRecord) -> None:
        entries = self._timeline.setdefault(alert.customer_id, [])
        entries.append((alert.end_minute, alert.attackers))
        entries.sort(key=lambda pair: pair[0])

    def members_at(self, customer_id: int, minute: int) -> set[int]:
        """All sources known (by ``minute``) to have attacked the customer."""
        members: set[int] = set()
        for effective, attackers in self._timeline.get(customer_id, []):
            if effective > minute:
                break
            members |= attackers
        return members

    def is_previous_attacker(self, customer_id: int, addr: int, minute: int) -> bool:
        for effective, attackers in self._timeline.get(customer_id, []):
            if effective > minute:
                break
            if addr in attackers:
                return True
        return False

    def batch_mask(
        self,
        customer_ids: np.ndarray,
        addrs: np.ndarray,
        minutes: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`is_previous_attacker` over aligned arrays.

        Loops only over the (customer, minute) pairs that actually have
        timeline entries — the all-quiet common case costs one dict check —
        and resolves membership per pair with one sorted ``searchsorted``
        pass, so a whole minute's flow batch classifies without a
        per-record Python call.
        """
        out = np.zeros(len(addrs), dtype=bool)
        if not self._timeline:
            return out
        for customer in np.unique(customer_ids).tolist():
            if not self._timeline.get(int(customer)):
                continue
            rows = np.flatnonzero(customer_ids == customer)
            for minute in np.unique(minutes[rows]).tolist():
                members = self.members_at(int(customer), int(minute))
                if not members:
                    continue
                sub = rows[minutes[rows] == minute]
                table = np.fromiter(members, dtype=np.int64, count=len(members))
                table.sort()
                slot = np.minimum(np.searchsorted(table, addrs[sub]), len(table) - 1)
                out[sub] = table[slot] == addrs[sub]
        return out

    def state_dict(self) -> dict:
        """Canonical snapshot (customers and attacker sets sorted)."""
        return {
            "timeline": [
                [customer, [[eff, sorted(attackers)] for eff, attackers in entries]]
                for customer, entries in sorted(self._timeline.items())
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        self._timeline = {
            int(customer): [
                (int(eff), frozenset(int(a) for a in attackers))
                for eff, attackers in entries
            ]
            for customer, entries in state["timeline"]
        }


class AttackHistoryStore:
    """Recency-weighted (type, severity) history per customer — 18 features.

    ``features_at`` returns, per (attack type, severity) pair, the
    exponentially decayed count of prior alerts:

        f = sum over past alerts of  exp(-(t - t_alert) / tau)

    with ``tau`` the decay horizon in minutes.  Decayed counts rather than a
    raw indicator give the LSTM the "how recently and how often" view that
    makes the A4 signal predictive of serial same-type attacks (Fig 4b).
    """

    N_FEATURES = len(_TYPE_ORDER) * len(SEVERITIES)

    def __init__(self, decay_minutes: float = 7 * 1440.0) -> None:
        if decay_minutes <= 0:
            raise ValueError("decay_minutes must be positive")
        self.decay_minutes = decay_minutes
        # per customer: list of (end_minute, type_idx, severity_idx)
        self._alerts: dict[int, list[tuple[int, int, int]]] = {}

    def add_alert(self, alert: AlertRecord, base_rate: float) -> None:
        severity = severity_of(alert.peak_bytes, base_rate)
        self._alerts.setdefault(alert.customer_id, []).append(
            (alert.end_minute, _TYPE_INDEX[alert.attack_type], SEVERITIES.index(severity))
        )
        self._alerts[alert.customer_id].sort(key=lambda rec: rec[0])

    def features_at(self, customer_id: int, minute: int) -> np.ndarray:
        """The 18-wide A4 vector at ``minute``."""
        features = np.zeros(self.N_FEATURES)
        for end_minute, type_idx, sev_idx in self._alerts.get(customer_id, []):
            if end_minute > minute:
                break
            age = minute - end_minute
            features[type_idx * len(SEVERITIES) + sev_idx] += np.exp(
                -age / self.decay_minutes
            )
        return features

    def feature_block(
        self, customer_id: int, start_minute: int, end_minute: int
    ) -> np.ndarray:
        """Dense ``(minutes, 18)`` A4 block over a range.

        Computed incrementally (decay is multiplicative per step) so a
        10-day window does not cost 10 days × alerts work.
        """
        steps = end_minute - start_minute
        block = np.zeros((steps, self.N_FEATURES))
        alerts = self._alerts.get(customer_id, [])
        if not alerts:
            return block
        decay_step = np.exp(-1.0 / self.decay_minutes)
        current = self.features_at(customer_id, start_minute)
        idx = bisect_left([a[0] for a in alerts], start_minute + 1)
        for t in range(steps):
            minute = start_minute + t
            if t > 0:
                current = current * decay_step
                while idx < len(alerts) and alerts[idx][0] <= minute:
                    _end, type_idx, sev_idx = alerts[idx]
                    age = minute - alerts[idx][0]
                    current[type_idx * len(SEVERITIES) + sev_idx] += np.exp(
                        -age / self.decay_minutes
                    )
                    idx += 1
            block[t] = current
        return block

    def alerts_before(self, customer_id: int, minute: int) -> int:
        return sum(1 for end, *_ in self._alerts.get(customer_id, []) if end <= minute)

    def state_dict(self) -> dict:
        """Canonical snapshot of the per-customer alert tuples."""
        return {
            "decay_minutes": self.decay_minutes,
            "alerts": [
                [customer, [list(rec) for rec in records]]
                for customer, records in sorted(self._alerts.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.decay_minutes = float(state["decay_minutes"])
        self._alerts = {
            int(customer): [tuple(int(v) for v in rec) for rec in records]
            for customer, records in state["alerts"]
        }
