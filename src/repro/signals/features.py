"""Assembly of the 273-feature input of Table 1.

Feature layout (columns of the per-minute matrix):

====== ======= ============================================================
offset width   group
====== ======= ============================================================
0      63      V   — volumetric counters over *all* traffic
63     63      A1  — the same counters restricted to blocklisted sources
126    63      A2  — restricted to previous attackers of this customer
189    63      A3  — restricted to spoofed sources
252    18      A4  — recency-weighted (attack type × severity) history
270    3       A5  — bipartite clustering coefficients (dot / min / max)
====== ======= ============================================================

:class:`FeatureExtractor` materializes ``(window, 273)`` blocks from a
:class:`~repro.synth.Trace` plus an alert timeline; :class:`FeatureScaler`
learns a log1p + standardize transform on training data (the raw counters
span ten orders of magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netflow.matrix import (
    N_VOLUMETRIC,
    SOURCE_CLASS_ALL,
    SOURCE_CLASS_BLOCKLIST,
    SOURCE_CLASS_PREV_ATTACKER,
    SOURCE_CLASS_SPOOFED,
    VOLUMETRIC_FEATURE_NAMES,
)
from ..synth.scenario import Trace
from .clustering import AttackerCustomerGraph
from .history import AlertRecord, AttackHistoryStore

__all__ = [
    "N_FEATURES",
    "FEATURE_GROUPS",
    "feature_names",
    "group_slices",
    "FeatureExtractor",
    "FeatureScaler",
]

FEATURE_GROUPS: tuple[tuple[str, int], ...] = (
    ("V", N_VOLUMETRIC),
    ("A1", N_VOLUMETRIC),
    ("A2", N_VOLUMETRIC),
    ("A3", N_VOLUMETRIC),
    ("A4", AttackHistoryStore.N_FEATURES),
    ("A5", AttackerCustomerGraph.N_FEATURES),
)
N_FEATURES = sum(width for _name, width in FEATURE_GROUPS)
assert N_FEATURES == 273, "Table 1 specifies 273 features"


def group_slices() -> dict[str, slice]:
    """Column slice of each feature group inside the 273-wide matrix."""
    slices: dict[str, slice] = {}
    offset = 0
    for name, width in FEATURE_GROUPS:
        slices[name] = slice(offset, offset + width)
        offset += width
    return slices


def feature_names() -> list[str]:
    """All 273 column names, prefixed by group."""
    names: list[str] = []
    for group, width in FEATURE_GROUPS:
        if width == N_VOLUMETRIC:
            names.extend(f"{group}.{n}" for n in VOLUMETRIC_FEATURE_NAMES)
        elif group == "A4":
            from .history import SEVERITIES
            from ..synth.attacks import AttackType

            names.extend(
                f"A4.{t.value}.{s}" for t in AttackType for s in SEVERITIES
            )
        else:
            names.extend(f"A5.cc_{kind}" for kind in ("dot", "min", "max"))
    return names


_CLASS_OF_GROUP = {
    "V": SOURCE_CLASS_ALL,
    "A1": SOURCE_CLASS_BLOCKLIST,
    "A2": SOURCE_CLASS_PREV_ATTACKER,
    "A3": SOURCE_CLASS_SPOOFED,
}


class FeatureExtractor:
    """Builds model inputs from a trace and an alert timeline.

    The alert timeline drives the A4 and A5 groups (and, in the deployed
    system, the A2 membership — here A2 splits were tagged during trace
    generation from completed attacks, a faithful proxy for any detector
    whose alerts carry the correct signature; see DESIGN.md).

    ``enabled_groups`` masks feature groups to zero — this powers the
    Figure 12 / Figure 13 ablations ("Xatu w/o aux signals" keeps only V).
    """

    def __init__(
        self,
        trace: Trace,
        alerts: list[AlertRecord] | None = None,
        history_decay_minutes: float | None = None,
        clustering_window: int | None = None,
        enabled_groups: frozenset[str] | None = None,
    ) -> None:
        self.trace = trace
        cfg = trace.config
        self.enabled_groups = (
            frozenset(g for g, _w in FEATURE_GROUPS)
            if enabled_groups is None
            else frozenset(enabled_groups)
        )
        unknown = self.enabled_groups - {g for g, _w in FEATURE_GROUPS}
        if unknown:
            raise ValueError(f"unknown feature groups: {sorted(unknown)}")
        self._slices = group_slices()

        decay = history_decay_minutes or 7.0 * cfg.minutes_per_day
        window = clustering_window or max(30, cfg.minutes_per_day // 4)
        self.history = AttackHistoryStore(decay_minutes=decay)
        self.graph = AttackerCustomerGraph(window_minutes=window)
        self._base_rate = {
            c.customer_id: c.base_rate_bytes for c in trace.world.customers
        }
        for alert in alerts or []:
            self.add_alert(alert)

    def add_alert(self, alert: AlertRecord) -> None:
        """Feed one detection alert into the history/graph stores.

        In training the timeline comes from CDet; in Xatu's autoregressive
        test mode (§5.3) the caller feeds Xatu's own alerts here as they
        are emitted.
        """
        self.history.add_alert(alert, self._base_rate.get(alert.customer_id, 1.0))
        self.graph.add_alert(alert.detect_minute, alert.customer_id, alert.attackers)

    # ------------------------------------------------------------------
    def window(
        self, customer_id: int, start_minute: int, end_minute: int
    ) -> np.ndarray:
        """Materialize the ``(end-start, 273)`` feature block."""
        if end_minute <= start_minute:
            raise ValueError("feature window must be non-empty")
        steps = end_minute - start_minute
        block = np.zeros((steps, N_FEATURES))
        matrix = self.trace.matrix
        for group in ("V", "A1", "A2", "A3"):
            if group not in self.enabled_groups:
                continue
            block[:, self._slices[group]] = matrix.feature_block(
                customer_id, start_minute, end_minute, _CLASS_OF_GROUP[group]
            )
        if "A4" in self.enabled_groups:
            block[:, self._slices["A4"]] = self.history.feature_block(
                customer_id, start_minute, end_minute
            )
        if "A5" in self.enabled_groups:
            block[:, self._slices["A5"]] = self.graph.feature_block(
                customer_id, start_minute, end_minute
            )
        return block


class FeatureScaler:
    """log1p + per-column standardization, fit on training windows.

    Byte counters span many orders of magnitude; the clustering
    coefficients are already in [0, 1].  ``log1p`` compresses the former
    without hurting the latter, and standardization uses training-set
    statistics only (no test leakage).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, blocks: list[np.ndarray]) -> "FeatureScaler":
        if not blocks:
            raise ValueError("cannot fit scaler on zero blocks")
        stacked = np.concatenate([np.log1p(np.maximum(b, 0.0)) for b in blocks], axis=0)
        self.mean_ = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std < 1e-9] = 1.0  # constant columns pass through centred
        self.std_ = std
        return self

    def transform(self, block: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Scale ``block``; with ``out`` (may alias ``block``) the work runs
        through preallocated storage.  Each element goes through the same op
        chain either way (max → log1p → subtract → divide), so the in-place
        path is bitwise identical to the allocating one — the batched
        serving lane relies on that to scale large customer stacks without
        materializing four temporaries per minute.
        """
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fit before transform")
        if out is None:
            return (np.log1p(np.maximum(block, 0.0)) - self.mean_) / self.std_
        np.maximum(block, 0.0, out=out)
        np.log1p(out, out=out)
        out -= self.mean_
        out /= self.std_
        return out

    def fit_transform(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        self.fit(blocks)
        return [self.transform(b) for b in blocks]

    def state_dict(self) -> dict[str, np.ndarray]:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fit before serialization")
        return {"mean": self.mean_.copy(), "std": self.std_.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.mean_ = np.asarray(state["mean"], dtype=np.float64)
        self.std_ = np.asarray(state["std"], dtype=np.float64)
