"""Synthetic public blocklist directory (the A1 auxiliary signal source).

The paper aggregates 151 public blocklists into 11 categories (§5.1),
widened to /24 subnets, refreshed over the same 100-day window as the
traffic.  This module reproduces that structure: a
:class:`BlocklistDirectory` holds per-category /24 membership built from the
synthetic world's ground-truth malicious population — with configurable
*recall* (listed fraction of true bots) and *false-listing rate* (benign /24s
listed anyway), because "blocklisted addresses may miss some offenders and
may contain legitimate addresses".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netflow.addressing import subnet24

__all__ = ["BLOCKLIST_CATEGORIES", "BlocklistDirectory"]

# Eleven categories, following §5.1's description of the selected lists:
# DDoS sources, reflection attack sources, VoIP attackers, C&C servers, and
# bots infected with specific malware families.
BLOCKLIST_CATEGORIES: tuple[str, ...] = (
    "ddos_source",
    "bot_generic",
    "scanner",
    "reflection",
    "voip_attack",
    "cnc_server",
    "malware_mirai",
    "malware_gafgyt",
    "malware_xor",
    "spam_source",
    "bruteforce",
)


@dataclass
class _CategoryList:
    name: str
    subnets: set[int]


class BlocklistDirectory:
    """Per-category /24 blocklists with realistic imperfection.

    Parameters
    ----------
    recall:
        Probability a genuinely malicious /24 appears on at least one list.
    false_rate:
        Fraction (relative to the listed count) of extra *benign* /24s
        erroneously listed.
    categories_per_subnet:
        Mean number of categories a listed subnet appears in (bots often
        land on several lists).
    """

    def __init__(
        self,
        recall: float = 0.85,
        false_rate: float = 0.08,
        categories_per_subnet: float = 1.6,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= recall <= 1.0:
            raise ValueError("recall must be in [0, 1]")
        if false_rate < 0:
            raise ValueError("false_rate must be non-negative")
        self.recall = recall
        self.false_rate = false_rate
        self.categories_per_subnet = categories_per_subnet
        self._rng = rng or np.random.default_rng(0)
        self._lists: dict[str, set[int]] = {c: set() for c in BLOCKLIST_CATEGORIES}
        self._all: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def from_ground_truth(
        cls,
        malicious_addrs: set[int],
        benign_addrs: np.ndarray | None = None,
        recall: float = 0.85,
        false_rate: float = 0.08,
        rng: np.random.Generator | None = None,
    ) -> "BlocklistDirectory":
        """Build a directory from the synthetic world's true bot population."""
        directory = cls(recall=recall, false_rate=false_rate, rng=rng)
        directory.populate(malicious_addrs, benign_addrs)
        return directory

    def populate(
        self,
        malicious_addrs: set[int],
        benign_addrs: np.ndarray | None = None,
    ) -> None:
        """Assign malicious /24s to categories; inject benign false listings."""
        rng = self._rng
        subnets = sorted({subnet24(a) for a in malicious_addrs})
        n_cat = len(BLOCKLIST_CATEGORIES)
        # First three categories dominate (Appendix E: DDoS-source, bot, and
        # scanner lists are the prevalent ones).
        cat_weights = np.array([0.25, 0.20, 0.15, 0.07, 0.05, 0.06, 0.06, 0.05, 0.04, 0.04, 0.03])
        cat_weights = cat_weights / cat_weights.sum()
        for subnet in subnets:
            if rng.random() > self.recall:
                continue  # missed offender
            n_memberships = max(1, int(rng.poisson(self.categories_per_subnet)))
            picks = rng.choice(n_cat, size=min(n_memberships, n_cat), replace=False, p=cat_weights)
            for c in picks:
                self._lists[BLOCKLIST_CATEGORIES[c]].add(subnet)
            self._all.add(subnet)
        if benign_addrs is not None and len(benign_addrs) and self.false_rate > 0:
            n_false = int(self.false_rate * len(self._all))
            if n_false:
                picks = rng.choice(benign_addrs, size=min(n_false, len(benign_addrs)), replace=False)
                for addr in picks:
                    subnet = subnet24(int(addr))
                    cat = BLOCKLIST_CATEGORIES[int(rng.integers(n_cat))]
                    self._lists[cat].add(subnet)
                    self._all.add(subnet)

    # ------------------------------------------------------------------
    def is_listed(self, addr: int, category: str | None = None) -> bool:
        """Whether ``addr``'s /24 appears on any list (or one category)."""
        subnet = subnet24(addr)
        if category is None:
            return subnet in self._all
        if category not in self._lists:
            raise KeyError(f"unknown blocklist category {category!r}")
        return subnet in self._lists[category]

    def categories_of(self, addr: int) -> list[str]:
        """All categories listing ``addr``'s /24."""
        subnet = subnet24(addr)
        return [c for c, members in self._lists.items() if subnet in members]

    def category_sizes(self) -> dict[str, int]:
        return {c: len(members) for c, members in self._lists.items()}

    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, addr: int) -> bool:
        return self.is_listed(addr)
