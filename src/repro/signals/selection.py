"""Feature selection utilities (Appendix D).

The paper selects the ports and source countries that cover >95% of the
ISP's traffic as the volumetric feature dimensions.  These helpers compute
the same coverage analysis on a synthetic trace — useful both to verify
the hard-coded :data:`~repro.netflow.matrix.POPULAR_PORTS` /
:data:`~repro.netflow.matrix.POPULAR_COUNTRIES` choices against a given
world and to re-derive them for custom scenarios.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..netflow.records import FlowRecord

__all__ = ["CoverageReport", "coverage_by_key", "select_covering"]


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """Ranked traffic shares for one key (port / country / protocol)."""

    key_name: str
    ranked: tuple[tuple[object, float], ...]  # (key value, byte share) desc
    total_bytes: float

    def coverage_of(self, values) -> float:
        """Combined byte share of the given key values."""
        wanted = set(values)
        return sum(share for value, share in self.ranked if value in wanted)

    def top(self, n: int) -> list[object]:
        return [value for value, _share in self.ranked[:n]]


def coverage_by_key(flows, key) -> CoverageReport:
    """Aggregate byte shares of ``flows`` grouped by ``key(flow)``.

    ``flows`` is any iterable of :class:`FlowRecord`; ``key`` may be a
    callable or one of the shorthand strings "src_port", "dst_port",
    "src_country", "protocol".
    """
    if isinstance(key, str):
        attr = key
        key_fn = lambda flow: getattr(flow, attr)  # noqa: E731
        name = attr
    else:
        key_fn = key
        name = getattr(key, "__name__", "custom")
    totals: Counter = Counter()
    grand_total = 0
    for flow in flows:
        weight = flow.estimated_bytes
        totals[key_fn(flow)] += weight
        grand_total += weight
    if grand_total <= 0:
        return CoverageReport(name, (), 0.0)
    ranked = tuple(
        (value, count / grand_total)
        for value, count in totals.most_common()
    )
    return CoverageReport(name, ranked, float(grand_total))


def select_covering(report: CoverageReport, target: float = 0.95) -> list[object]:
    """Smallest prefix of ranked key values whose shares reach ``target``.

    Mirrors the Appendix D selection rule ("prevalent ... take up over 95%
    of traffic").  Returns all values if the target is unreachable.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("target must be in (0, 1]")
    chosen: list[object] = []
    covered = 0.0
    for value, share in report.ranked:
        if covered >= target:
            break
        chosen.append(value)
        covered += share
    return chosen
