"""Bipartite clustering coefficients — the A5 (correlated attacks) signal.

Table 1 lists "three techniques (dot, min, max) to obtain clustering
coefficient" from the bipartite attacker-group / customer graph, following
Latapy, Magnien & Del Vecchio's notions for two-mode networks (cited as [43]
in the paper).  For a node ``u`` and each node ``v`` at distance 2 (sharing
at least one neighbour), the pairwise coefficients are

    cc_dot(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|      (Jaccard)
    cc_min(u, v) = |N(u) ∩ N(v)| / min(|N(u)|, |N(v)|)
    cc_max(u, v) = |N(u) ∩ N(v)| / max(|N(u)|, |N(v)|)

and the node coefficient is the mean over those neighbours-of-neighbours.
Here ``u`` is a customer and ``N(u)`` the set of attacker /24 groups seen
attacking it in a sliding window — so a rising coefficient means "the groups
hitting me are increasingly the groups hitting other customers too"
(Figure 16 shows exactly this rise approaching detection).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..netflow.addressing import subnet24

__all__ = ["bipartite_clustering", "AttackerCustomerGraph"]


def _pairwise(
    n_u: frozenset, n_v: frozenset
) -> tuple[float, float, float]:
    inter = len(n_u & n_v)
    if inter == 0:
        return 0.0, 0.0, 0.0
    union = len(n_u | n_v)
    return (
        inter / union,
        inter / min(len(n_u), len(n_v)),
        inter / max(len(n_u), len(n_v)),
    )


def bipartite_clustering(
    neighbors: dict[int, frozenset],
) -> dict[int, tuple[float, float, float]]:
    """Per-node (cc_dot, cc_min, cc_max) for one side of a bipartite graph.

    ``neighbors`` maps each node (customer) to its neighbour set on the
    other side (attacker groups).  Nodes with no distance-2 neighbours get
    (0, 0, 0) — the Figure 16 convention of "customers with some overlapping
    attacker groups" is applied by callers filtering zeros.
    """
    # Invert: which customers touch each attacker group.
    by_group: dict = defaultdict(set)
    for node, groups in neighbors.items():
        for g in groups:
            by_group[g].add(node)

    result: dict[int, tuple[float, float, float]] = {}
    for node, groups in neighbors.items():
        if not groups:
            result[node] = (0.0, 0.0, 0.0)
            continue
        others: set = set()
        for g in groups:
            others |= by_group[g]
        others.discard(node)
        if not others:
            result[node] = (0.0, 0.0, 0.0)
            continue
        dots, mins, maxs = [], [], []
        for other in others:
            d, mn, mx = _pairwise(groups, neighbors[other])
            dots.append(d)
            mins.append(mn)
            maxs.append(mx)
        result[node] = (
            float(np.mean(dots)),
            float(np.mean(mins)),
            float(np.mean(maxs)),
        )
    return result


@dataclass(frozen=True, slots=True)
class _WindowAlert:
    minute: int
    customer_id: int
    groups: frozenset


class AttackerCustomerGraph:
    """Sliding-window bipartite graph fed by the alert timeline.

    Each alert contributes edges (customer → attacker /24 groups) that stay
    in the graph for ``window_minutes``.  ``features_at`` returns the
    3-vector of clustering coefficients for one customer — the A5 columns of
    Table 1.
    """

    N_FEATURES = 3

    def __init__(self, window_minutes: int = 60) -> None:
        if window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        self.window_minutes = window_minutes
        self._alerts: list[_WindowAlert] = []

    def add_alert(
        self, minute: int, customer_id: int, attackers: frozenset[int] | set[int]
    ) -> None:
        """Record an alert's attacker set (widened to /24 groups)."""
        groups = frozenset(subnet24(a) for a in attackers)
        if groups:
            self._alerts.append(_WindowAlert(minute, customer_id, groups))

    def _neighbors_at(self, minute: int) -> dict[int, frozenset]:
        lo = minute - self.window_minutes
        merged: dict[int, set] = defaultdict(set)
        for alert in self._alerts:
            if lo < alert.minute <= minute:
                merged[alert.customer_id] |= alert.groups
        return {c: frozenset(g) for c, g in merged.items()}

    def features_at(self, customer_id: int, minute: int) -> np.ndarray:
        """(cc_dot, cc_min, cc_max) for ``customer_id`` at ``minute``."""
        neighbors = self._neighbors_at(minute)
        if customer_id not in neighbors:
            return np.zeros(self.N_FEATURES)
        coeffs = bipartite_clustering(neighbors)
        return np.array(coeffs[customer_id])

    def feature_block(
        self, customer_id: int, start_minute: int, end_minute: int, stride: int = 10
    ) -> np.ndarray:
        """Dense ``(minutes, 3)`` A5 block; recomputed every ``stride`` minutes.

        The bipartite graph changes only when alerts enter/leave the window,
        so sub-stride minutes reuse the last value (the paper's A5 features
        move on the tens-of-minutes timescale, Fig 16).
        """
        steps = end_minute - start_minute
        block = np.zeros((steps, self.N_FEATURES))
        last = np.zeros(self.N_FEATURES)
        for t in range(steps):
            if t % stride == 0:
                last = self.features_at(customer_id, start_minute + t)
            block[t] = last
        return block

    def clustering_snapshot(self, minute: int) -> dict[int, tuple[float, float, float]]:
        """All customers' coefficients at ``minute`` (for Figure 16)."""
        return bipartite_clustering(self._neighbors_at(minute))

    def prune_before(self, minute: int) -> int:
        """Drop alerts that can no longer enter any window at ``minute`` or
        later; returns the number pruned (bounded-memory serving)."""
        cutoff = minute - self.window_minutes
        kept = [a for a in self._alerts if a.minute > cutoff]
        pruned = len(self._alerts) - len(kept)
        self._alerts = kept
        return pruned

    def state_dict(self) -> dict:
        """Canonical snapshot (alert order preserved, groups sorted)."""
        return {
            "window_minutes": self.window_minutes,
            "alerts": [
                [a.minute, a.customer_id, sorted(a.groups)] for a in self._alerts
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.window_minutes = int(state["window_minutes"])
        self._alerts = [
            _WindowAlert(int(minute), int(customer), frozenset(int(g) for g in groups))
            for minute, customer, groups in state["alerts"]
        ]
