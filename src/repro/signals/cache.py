"""Dense window caching for repeated feature extraction.

The online detector and the RF score sweep extract heavily-overlapping
``(lookback, 273)`` windows (each minute's window shares lookback-1 rows
with the previous one).  :class:`CachedFeatureExtractor` materializes each
customer's dense feature matrix over a whole minute range once, then serves
windows as O(1) numpy slices — bitwise-identical to direct extraction for
ranges where the alert timeline does not change mid-range.

When new alerts arrive (autoregressive mode), the affected customer's
cached A2/A4/A5 region is invalidated and rebuilt lazily.
"""

from __future__ import annotations

import numpy as np

from .features import FeatureExtractor, N_FEATURES
from .history import AlertRecord

__all__ = ["CachedFeatureExtractor"]


class CachedFeatureExtractor:
    """Drop-in wrapper over :class:`FeatureExtractor` with dense caching.

    ``block_minutes`` controls the granularity of materialization: each
    cache fill covers one aligned block of that many minutes per customer.
    """

    def __init__(self, extractor: FeatureExtractor, block_minutes: int = 512) -> None:
        if block_minutes < 1:
            raise ValueError("block_minutes must be >= 1")
        self.extractor = extractor
        self.block_minutes = block_minutes
        # (customer, block index) -> dense (block_minutes, 273) array
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self.fills = 0
        self.hits = 0

    # ------------------------------------------------------------------
    def add_alert(self, alert: AlertRecord) -> None:
        """Forward an alert and invalidate the customer's affected blocks.

        Alerts only change features from their detect minute onward, so
        blocks entirely before the detect minute stay valid.
        """
        self.extractor.add_alert(alert)
        first_affected = alert.detect_minute // self.block_minutes
        stale = [
            key
            for key in self._blocks
            if key[0] == alert.customer_id and key[1] >= first_affected
        ]
        for key in stale:
            del self._blocks[key]

    def _block(self, customer_id: int, block_index: int) -> np.ndarray:
        key = (customer_id, block_index)
        cached = self._blocks.get(key)
        if cached is None:
            start = block_index * self.block_minutes
            cached = self.extractor.window(
                customer_id, start, start + self.block_minutes
            )
            self._blocks[key] = cached
            self.fills += 1
        else:
            self.hits += 1
        return cached

    def window(
        self, customer_id: int, start_minute: int, end_minute: int
    ) -> np.ndarray:
        """Same contract as :meth:`FeatureExtractor.window` (cached)."""
        if end_minute <= start_minute:
            raise ValueError("feature window must be non-empty")
        if start_minute < 0:
            raise ValueError("start_minute must be >= 0")
        first = start_minute // self.block_minutes
        last = (end_minute - 1) // self.block_minutes
        parts = [self._block(customer_id, b) for b in range(first, last + 1)]
        dense = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
        offset = first * self.block_minutes
        return dense[start_minute - offset : end_minute - offset].copy()

    def invalidate(self, customer_id: int | None = None) -> None:
        """Drop cached blocks (all customers, or one)."""
        if customer_id is None:
            self._blocks.clear()
        else:
            for key in [k for k in self._blocks if k[0] == customer_id]:
                del self._blocks[key]

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)
