"""Auxiliary signals: blocklists, history stores, clustering, 273 features."""

from .blocklists import BLOCKLIST_CATEGORIES, BlocklistDirectory
from .cache import CachedFeatureExtractor
from .selection import CoverageReport, coverage_by_key, select_covering
from .clustering import AttackerCustomerGraph, bipartite_clustering
from .features import (
    FEATURE_GROUPS,
    N_FEATURES,
    FeatureExtractor,
    FeatureScaler,
    feature_names,
    group_slices,
)
from .history import (
    SEVERITIES,
    AlertRecord,
    AttackHistoryStore,
    PreviousAttackerStore,
    severity_of,
)

__all__ = [
    "BLOCKLIST_CATEGORIES", "BlocklistDirectory",
    "AttackerCustomerGraph", "bipartite_clustering",
    "N_FEATURES", "FEATURE_GROUPS", "feature_names", "group_slices",
    "FeatureExtractor", "FeatureScaler",
    "AlertRecord", "PreviousAttackerStore", "AttackHistoryStore",
    "SEVERITIES", "severity_of",
    "CachedFeatureExtractor",
    "CoverageReport", "coverage_by_key", "select_covering",
]
