"""Entropy-based statistical detection — an extra baseline from §7.

The paper's related work includes statistical detectors that compare the
entropy of packet-header feature distributions against a normal-traffic
profile (Feinstein et al., cited as [21]).  DDoS floods collapse the
source-address entropy toward the flood sources (many packets, few "real"
senders) while dispersing destination-port entropy (or vice versa for
randomized-source floods), so a large entropy *deviation* from the profile
signals an attack.

This detector works on the per-minute volumetric feature cells already
stored in the :class:`~repro.netflow.TrafficMatrix`: the distribution
entropy is computed over the per-protocol/port/country byte shares of each
minute, and deviations are tracked with an EWMA profile plus a sustained-
excursion rule, mirroring the other CDet simulators' alerting contract.
"""

from __future__ import annotations

import numpy as np

from ..netflow.matrix import N_VOLUMETRIC
from ..synth.attacks import AttackType
from ..synth.scenario import Trace
from .detectors import DetectionAlert, _match_alert_to_event

__all__ = ["distribution_entropy", "EntropyDetector"]

# Columns of the 63-wide volumetric vector that form a "distribution" over
# traffic structure: protocol bytes, src-port bytes, dst-port bytes,
# flag bytes, country bytes (the even offsets of each 2-wide pair).
_DIST_COLUMNS = (
    [5, 7, 9]                                   # udp/tcp/icmp bytes
    + list(range(11, 21, 2))                    # src-port bytes
    + list(range(21, 31, 2))                    # dst-port bytes
    + list(range(31, 43, 2))                    # tcp-flag bytes
    + list(range(43, 63, 2))                    # country bytes
)


def distribution_entropy(volumetric_row: np.ndarray) -> float:
    """Shannon entropy (bits) of one minute's traffic-structure distribution.

    ``volumetric_row`` is a 63-wide minute vector from the traffic matrix;
    zero-traffic minutes return 0.
    """
    if volumetric_row.shape[-1] != N_VOLUMETRIC:
        raise ValueError(f"expected a {N_VOLUMETRIC}-wide volumetric row")
    masses = np.maximum(volumetric_row[_DIST_COLUMNS], 0.0)
    total = masses.sum()
    if total <= 0:
        return 0.0
    p = masses / total
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


class EntropyDetector:
    """Alert on sustained entropy deviation from an EWMA profile.

    Same alert contract as the other CDet simulators: an alert carries a
    detect minute, an end minute (release rule), and the matched event.
    """

    name = "entropy"

    def __init__(
        self,
        alpha: float = 0.02,
        k: float = 3.0,
        sustain: int = 3,
        release: int = 3,
        min_dev: float = 0.2,
    ) -> None:
        self.alpha = alpha
        self.k = k
        self.sustain = sustain
        self.release = release
        self.min_dev = min_dev

    def entropy_series(self, trace: Trace, customer_id: int) -> np.ndarray:
        """Per-minute structure entropy for one customer."""
        series = np.zeros(trace.horizon)
        for minute in range(trace.horizon):
            cell = trace.matrix.cell(customer_id, minute)
            if cell is not None:
                series[minute] = distribution_entropy(cell.finalize())
        return series

    def _deviation_flags(self, entropy: np.ndarray) -> np.ndarray:
        """True where |entropy - profile| exceeds the adaptive band."""
        mean = entropy[0] if len(entropy) else 0.0
        dev = 0.0
        flags = np.zeros(len(entropy), dtype=bool)
        for i, value in enumerate(entropy):
            band = max(self.k * dev, self.min_dev)
            flags[i] = abs(value - mean) > band
            if not flags[i]:
                dev = (1 - self.alpha) * dev + self.alpha * abs(value - mean)
                mean = (1 - self.alpha) * mean + self.alpha * value
        return flags

    def run(self, trace: Trace) -> list[DetectionAlert]:
        """Deprecated alias of :meth:`detect` (the pre-protocol signature)."""
        import warnings

        warnings.warn(
            "EntropyDetector.run(trace) is deprecated; use detect(trace)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.detect(trace)

    def detect(self, trace: Trace) -> list[DetectionAlert]:
        alerts: list[DetectionAlert] = []
        horizon = trace.horizon
        for customer in trace.world.customers:
            cid = customer.customer_id
            entropy = self.entropy_series(trace, cid)
            over = self._deviation_flags(entropy)
            bytes_series = trace.matrix.bytes_series(cid, 0, horizon)
            t = 0
            while t < horizon:
                if not over[t]:
                    t += 1
                    continue
                run_start = t
                while t < horizon and over[t]:
                    t += 1
                if t - run_start < self.sustain:
                    continue
                detect = run_start + self.sustain - 1
                end = t
                quiet = 0
                while end < horizon and quiet < self.release:
                    quiet = quiet + 1 if not over[end] else 0
                    end += 1
                event = _match_alert_to_event(trace.events, cid, detect)
                alerts.append(
                    DetectionAlert(
                        customer_id=cid,
                        detect_minute=detect,
                        end_minute=end,
                        attack_type=event.attack_type if event else AttackType.UDP_FLOOD,
                        event_id=event.event_id if event else -1,
                        peak_bytes=float(bytes_series[run_start:end].max()) if end > run_start else 0.0,
                    )
                )
                t = end
        return alerts
