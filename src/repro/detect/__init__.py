"""CDet substrates: CUSUM labeling plus NetScout/FastNetMon simulators."""

from .cusum import NUMSTD_BY_TYPE, anomaly_start, cusum_detect, cusum_scores
from .detectors import DetectionAlert, Detector, FastNetMonDetector, NetScoutDetector
from .entropy import EntropyDetector, distribution_entropy

__all__ = [
    "cusum_scores", "cusum_detect", "anomaly_start", "NUMSTD_BY_TYPE",
    "DetectionAlert", "Detector", "NetScoutDetector", "FastNetMonDetector",
    "EntropyDetector", "distribution_entropy",
]
