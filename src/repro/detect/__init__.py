"""CDet substrates: CUSUM labeling plus NetScout/FastNetMon simulators.

``Detector`` is the unified *streaming* protocol (``observe_minute`` /
``poll_alerts`` / ``reset``) shared with :class:`repro.core.OnlineXatu`
and driven by :mod:`repro.serve`; ``TraceDetector`` is the offline
"sweep a materialized trace" protocol the evaluation harness uses.
"""

from .api import Alert, Detector, StreamAlert, drive, infer_minute
from .cusum import NUMSTD_BY_TYPE, anomaly_start, cusum_detect, cusum_scores
from .detectors import (
    DetectionAlert,
    FastNetMonDetector,
    NetScoutDetector,
    TraceDetector,
)
from .entropy import EntropyDetector, distribution_entropy

__all__ = [
    "cusum_scores", "cusum_detect", "anomaly_start", "NUMSTD_BY_TYPE",
    "Alert", "StreamAlert", "Detector", "TraceDetector", "drive",
    "infer_minute",
    "DetectionAlert", "NetScoutDetector", "FastNetMonDetector",
    "EntropyDetector", "distribution_entropy",
]
