"""CDet simulators: NetScout-style and FastNetMon-style detection.

Both are *reactive, conservative, volumetric* detectors (§2.1/§2.3): they
watch the per-minute byte series toward each customer and fire only after a
sustained excursion over a per-customer threshold.  The two differ in how
the threshold is set:

* :class:`NetScoutDetector` — static per-customer profile thresholds (the
  "forced alert thresholds for profiled detection" approach) with a long
  sustain requirement, producing the late-but-low-false-positive behaviour
  the paper quantifies (median detection delay around 11 minutes).
* :class:`FastNetMonDetector` — dynamic thresholds from an EWMA band over
  recent traffic ("best dynamic thresholds in production", §6), reacting a
  bit faster at somewhat higher sensitivity.

Detectors also emit the coarse alert signature for the dominant protocol
at detection time, which is what gets diverted to scrubbing.

Both detectors run in two modes sharing one sustain/release engine:

* **offline** — :meth:`detect(trace)` sweeps a materialized trace (the
  evaluation path; thresholds may profile over the whole window at once);
* **streaming** — the :class:`repro.detect.api.Detector` protocol
  (``observe_minute`` / ``poll_alerts`` / ``reset``): thresholds are built
  causally, so NetScout stays silent until its profile window completes.

``run(trace)`` remains as a deprecated alias of ``detect(trace)``.
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from dataclasses import dataclass
from typing import Protocol as TypingProtocol, Sequence, runtime_checkable

import numpy as np

from ..netflow.records import FlowRecord
from ..synth.attacks import AttackType
from ..synth.scenario import AttackEvent, Trace
from .api import StreamAlert, infer_minute

__all__ = [
    "DetectionAlert",
    "TraceDetector",
    "NetScoutDetector",
    "FastNetMonDetector",
]


@dataclass(frozen=True, slots=True)
class DetectionAlert:
    """One alert from a CDet run against a trace."""

    customer_id: int
    detect_minute: int
    end_minute: int
    attack_type: AttackType
    event_id: int  # ground-truth event this alert corresponds to (-1 = FP)
    peak_bytes: float


@runtime_checkable
class TraceDetector(TypingProtocol):
    """Anything that turns a materialized trace into an alert list.

    The *offline* counterpart of the streaming
    :class:`repro.detect.api.Detector` protocol.
    """

    name: str

    def detect(self, trace: Trace) -> list[DetectionAlert]:  # pragma: no cover
        ...


def _match_alert_to_event(
    events: list[AttackEvent], customer_id: int, minute: int
) -> AttackEvent | None:
    """The ground-truth event active (or just past) at an alert minute."""
    best: AttackEvent | None = None
    for event in events:
        if event.customer_id != customer_id:
            continue
        if event.onset <= minute < event.end + 5:
            if best is None or event.onset > best.onset:
                best = event
    return best


class _SustainedThresholdDetector:
    """Shared engine: fire when the series exceeds a threshold for
    ``sustain`` consecutive minutes; alert ends when it drops back under for
    ``release`` minutes (the CScrub mitigation-end notice)."""

    name = "cdet"

    def __init__(
        self, sustain: int, release: int, customer_of: dict[int, int] | None = None
    ) -> None:
        self.sustain = sustain
        self.release = release
        # Streaming mode: destination address -> customer id.  Without a
        # map, destination addresses are treated as customer keys directly.
        self.customer_of = dict(customer_of) if customer_of else None
        self.reset()

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # streaming protocol (repro.detect.api.Detector)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the post-construction streaming state."""
        self._minute = -1
        self._runs: dict[int, int] = {}
        self._active: dict[int, int] = {}  # customer -> consecutive quiet minutes
        self._pending: list[StreamAlert] = []
        self._reset_thresholds()

    def _reset_thresholds(self) -> None:
        """Clear subclass threshold state (override alongside
        :meth:`_stream_threshold`)."""

    def _stream_threshold(
        self, customer_id: int, observed_bytes: float
    ) -> float | None:  # pragma: no cover - abstract
        """Causal per-minute threshold for one customer, or ``None`` while
        the detector is still profiling (no detection possible yet).

        Called exactly once per customer per observed minute; implementations
        update their own running state (profiles, EWMA bands).
        """
        raise NotImplementedError

    @property
    def current_minute(self) -> int:
        return self._minute

    def observe_minute(self, flows: Sequence[FlowRecord]) -> None:
        """Ingest one minute of sampled flows (protocol mode).

        The per-customer byte totals drive the same sustain/release engine
        the offline sweep uses, against causally-built thresholds.
        """
        minute = infer_minute(self._minute, flows)
        self._minute = minute
        observed: dict[int, float] = defaultdict(float)
        for flow in flows:
            if self.customer_of is not None:
                customer_id = self.customer_of.get(flow.dst_addr)
                if customer_id is None:
                    continue
            else:
                customer_id = flow.dst_addr
            observed[customer_id] += flow.estimated_bytes
        watched = set(self._runs) | set(self._active) | set(observed)
        for customer_id in sorted(watched):
            bytes_ = observed.get(customer_id, 0.0)
            threshold = self._stream_threshold(customer_id, bytes_)
            over = threshold is not None and bytes_ > threshold
            if customer_id in self._active:
                # An alert is in progress: wait for `release` quiet minutes
                # (the mitigation-end condition) before re-arming.
                quiet = 0 if over else self._active[customer_id] + 1
                if quiet >= self.release:
                    del self._active[customer_id]
                    self._runs[customer_id] = 0
                else:
                    self._active[customer_id] = quiet
                continue
            run = self._runs.get(customer_id, 0) + 1 if over else 0
            self._runs[customer_id] = run
            if run >= self.sustain:
                self._pending.append(
                    StreamAlert(
                        customer_id=customer_id,
                        minute=minute,
                        score=float(bytes_ / threshold) if threshold else 0.0,
                        detector=self.name,
                    )
                )
                self._active[customer_id] = 0
                self._runs[customer_id] = 0
        return None

    def poll_alerts(self) -> list[StreamAlert]:
        """Drain alerts accumulated since the last poll."""
        pending, self._pending = self._pending, []
        return pending

    # ------------------------------------------------------------------
    # offline sweep
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> list[DetectionAlert]:
        """Deprecated alias of :meth:`detect` (the pre-protocol signature)."""
        warnings.warn(
            f"{type(self).__name__}.run(trace) is deprecated; use "
            "detect(trace) for offline sweeps or the streaming protocol "
            "(observe_minute/poll_alerts/reset) for minute-driven serving",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.detect(trace)

    def detect(self, trace: Trace) -> list[DetectionAlert]:
        alerts: list[DetectionAlert] = []
        horizon = trace.horizon
        for customer in trace.world.customers:
            cid = customer.customer_id
            series = trace.matrix.bytes_series(cid, 0, horizon)
            thresholds = self._threshold_series(series, trace, cid)
            over = series > thresholds
            t = 0
            while t < horizon:
                if not over[t]:
                    t += 1
                    continue
                run_start = t
                while t < horizon and over[t]:
                    t += 1
                run_len = t - run_start
                if run_len < self.sustain:
                    continue
                detect = run_start + self.sustain - 1
                # Extend the alert until traffic stays low for `release` min.
                end = t
                quiet = 0
                while end < horizon and quiet < self.release:
                    quiet = quiet + 1 if not over[end] else 0
                    end += 1
                event = _match_alert_to_event(trace.events, cid, detect)
                alerts.append(
                    DetectionAlert(
                        customer_id=cid,
                        detect_minute=detect,
                        end_minute=end,
                        attack_type=event.attack_type if event else AttackType.UDP_FLOOD,
                        event_id=event.event_id if event else -1,
                        peak_bytes=float(series[run_start:end].max()) if end > run_start else 0.0,
                    )
                )
                t = end
        return alerts


class NetScoutDetector(_SustainedThresholdDetector):
    """Conservative profile-threshold CDet (the paper's NetScout stand-in).

    The per-customer threshold is a high quantile of a *profiling window* of
    benign-ish traffic times a headroom multiplier; detection additionally
    requires the excursion to persist ``sustain`` minutes.  Defaults are
    calibrated so the detector is accurate but late — the §2.3 behaviour.
    """

    name = "netscout"

    def __init__(
        self,
        sustain: int = 4,
        release: int = 3,
        profile_quantile: float = 0.99,
        headroom: float = 2.0,
        profile_window: int | None = None,
        customer_of: dict[int, int] | None = None,
    ) -> None:
        self.profile_quantile = profile_quantile
        self.headroom = headroom
        self.profile_window = profile_window
        super().__init__(sustain=sustain, release=release, customer_of=customer_of)

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:
        window = self.profile_window or trace.config.minutes_per_day
        window = min(window, len(series))
        profile = np.quantile(series[:window], self.profile_quantile)
        return np.full_like(series, profile * self.headroom)

    # Streaming mode is causal: the profile accumulates per customer and
    # the threshold freezes once the window is full — no detection (and no
    # lookahead) before that, unlike the offline whole-trace sweep.
    def _reset_thresholds(self) -> None:
        self._profiles: dict[int, list[float]] = {}
        self._frozen: dict[int, float] = {}

    def _stream_threshold(
        self, customer_id: int, observed_bytes: float
    ) -> float | None:
        frozen = self._frozen.get(customer_id)
        if frozen is not None:
            return frozen
        window = self.profile_window or 1440
        profile = self._profiles.setdefault(customer_id, [])
        profile.append(float(observed_bytes))
        if len(profile) < window:
            return None
        threshold = float(
            np.quantile(np.asarray(profile), self.profile_quantile) * self.headroom
        )
        self._frozen[customer_id] = threshold
        del self._profiles[customer_id]
        return threshold


class FastNetMonDetector(_SustainedThresholdDetector):
    """Dynamic-threshold CDet: EWMA mean + k·EWMA-deviation band.

    Faster than NetScout on ramping attacks (shorter sustain, adaptive
    band) but still reactive and volumetric-only.
    """

    name = "fastnetmon"

    def __init__(
        self,
        sustain: int = 3,
        release: int = 3,
        alpha: float = 0.02,
        k: float = 6.0,
        floor_multiplier: float = 1.5,
        customer_of: dict[int, int] | None = None,
    ) -> None:
        self.alpha = alpha
        self.k = k
        self.floor_multiplier = floor_multiplier
        super().__init__(sustain=sustain, release=release, customer_of=customer_of)

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:
        alpha = self.alpha
        mean = series[0] if len(series) else 0.0
        dev = 0.0
        thresholds = np.empty_like(series)
        for i, x in enumerate(series):
            thresholds[i] = max(
                mean + self.k * dev, self.floor_multiplier * max(mean, 1.0)
            )
            # EWMA updates lag the threshold (today's traffic cannot raise
            # today's bar), and large excursions are clamped so an ongoing
            # attack does not poison the baseline.
            bounded = min(x, thresholds[i])
            dev = (1 - alpha) * dev + alpha * abs(bounded - mean)
            mean = (1 - alpha) * mean + alpha * bounded
        return thresholds

    # The EWMA band is already causal, so the streaming thresholds are the
    # exact per-minute values the offline sweep computes.
    def _reset_thresholds(self) -> None:
        self._bands: dict[int, tuple[float, float]] = {}

    def _stream_threshold(
        self, customer_id: int, observed_bytes: float
    ) -> float | None:
        x = float(observed_bytes)
        mean, dev = self._bands.get(customer_id, (x, 0.0))
        threshold = max(
            mean + self.k * dev, self.floor_multiplier * max(mean, 1.0)
        )
        bounded = min(x, threshold)
        dev = (1 - self.alpha) * dev + self.alpha * abs(bounded - mean)
        mean = (1 - self.alpha) * mean + self.alpha * bounded
        self._bands[customer_id] = (mean, dev)
        return threshold
