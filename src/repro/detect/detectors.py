"""CDet simulators: NetScout-style and FastNetMon-style detection.

Both are *reactive, conservative, volumetric* detectors (§2.1/§2.3): they
watch the per-minute byte series toward each customer and fire only after a
sustained excursion over a per-customer threshold.  The two differ in how
the threshold is set:

* :class:`NetScoutDetector` — static per-customer profile thresholds (the
  "forced alert thresholds for profiled detection" approach) with a long
  sustain requirement, producing the late-but-low-false-positive behaviour
  the paper quantifies (median detection delay around 11 minutes).
* :class:`FastNetMonDetector` — dynamic thresholds from an EWMA band over
  recent traffic ("best dynamic thresholds in production", §6), reacting a
  bit faster at somewhat higher sensitivity.

Detectors also emit the coarse alert signature for the dominant protocol
at detection time, which is what gets diverted to scrubbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol as TypingProtocol

import numpy as np

from ..synth.attacks import AttackType
from ..synth.scenario import AttackEvent, Trace

__all__ = ["DetectionAlert", "Detector", "NetScoutDetector", "FastNetMonDetector"]


@dataclass(frozen=True, slots=True)
class DetectionAlert:
    """One alert from a CDet run against a trace."""

    customer_id: int
    detect_minute: int
    end_minute: int
    attack_type: AttackType
    event_id: int  # ground-truth event this alert corresponds to (-1 = FP)
    peak_bytes: float


class Detector(TypingProtocol):
    """Anything that turns a trace into an alert list."""

    name: str

    def run(self, trace: Trace) -> list[DetectionAlert]:  # pragma: no cover
        ...


def _match_alert_to_event(
    events: list[AttackEvent], customer_id: int, minute: int
) -> AttackEvent | None:
    """The ground-truth event active (or just past) at an alert minute."""
    best: AttackEvent | None = None
    for event in events:
        if event.customer_id != customer_id:
            continue
        if event.onset <= minute < event.end + 5:
            if best is None or event.onset > best.onset:
                best = event
    return best


class _SustainedThresholdDetector:
    """Shared engine: fire when the series exceeds a threshold for
    ``sustain`` consecutive minutes; alert ends when it drops back under for
    ``release`` minutes (the CScrub mitigation-end notice)."""

    name = "cdet"

    def __init__(self, sustain: int, release: int) -> None:
        self.sustain = sustain
        self.release = release

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, trace: Trace) -> list[DetectionAlert]:
        alerts: list[DetectionAlert] = []
        horizon = trace.horizon
        for customer in trace.world.customers:
            cid = customer.customer_id
            series = trace.matrix.bytes_series(cid, 0, horizon)
            thresholds = self._threshold_series(series, trace, cid)
            over = series > thresholds
            t = 0
            while t < horizon:
                if not over[t]:
                    t += 1
                    continue
                run_start = t
                while t < horizon and over[t]:
                    t += 1
                run_len = t - run_start
                if run_len < self.sustain:
                    continue
                detect = run_start + self.sustain - 1
                # Extend the alert until traffic stays low for `release` min.
                end = t
                quiet = 0
                while end < horizon and quiet < self.release:
                    quiet = quiet + 1 if not over[end] else 0
                    end += 1
                event = _match_alert_to_event(trace.events, cid, detect)
                alerts.append(
                    DetectionAlert(
                        customer_id=cid,
                        detect_minute=detect,
                        end_minute=end,
                        attack_type=event.attack_type if event else AttackType.UDP_FLOOD,
                        event_id=event.event_id if event else -1,
                        peak_bytes=float(series[run_start:end].max()) if end > run_start else 0.0,
                    )
                )
                t = end
        return alerts


class NetScoutDetector(_SustainedThresholdDetector):
    """Conservative profile-threshold CDet (the paper's NetScout stand-in).

    The per-customer threshold is a high quantile of a *profiling window* of
    benign-ish traffic times a headroom multiplier; detection additionally
    requires the excursion to persist ``sustain`` minutes.  Defaults are
    calibrated so the detector is accurate but late — the §2.3 behaviour.
    """

    name = "netscout"

    def __init__(
        self,
        sustain: int = 4,
        release: int = 3,
        profile_quantile: float = 0.99,
        headroom: float = 2.0,
        profile_window: int | None = None,
    ) -> None:
        super().__init__(sustain=sustain, release=release)
        self.profile_quantile = profile_quantile
        self.headroom = headroom
        self.profile_window = profile_window

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:
        window = self.profile_window or trace.config.minutes_per_day
        window = min(window, len(series))
        profile = np.quantile(series[:window], self.profile_quantile)
        return np.full_like(series, profile * self.headroom)


class FastNetMonDetector(_SustainedThresholdDetector):
    """Dynamic-threshold CDet: EWMA mean + k·EWMA-deviation band.

    Faster than NetScout on ramping attacks (shorter sustain, adaptive
    band) but still reactive and volumetric-only.
    """

    name = "fastnetmon"

    def __init__(
        self,
        sustain: int = 3,
        release: int = 3,
        alpha: float = 0.02,
        k: float = 6.0,
        floor_multiplier: float = 1.5,
    ) -> None:
        super().__init__(sustain=sustain, release=release)
        self.alpha = alpha
        self.k = k
        self.floor_multiplier = floor_multiplier

    def _threshold_series(
        self, series: np.ndarray, trace: Trace, customer_id: int
    ) -> np.ndarray:
        alpha = self.alpha
        mean = series[0] if len(series) else 0.0
        dev = 0.0
        thresholds = np.empty_like(series)
        for i, x in enumerate(series):
            thresholds[i] = max(
                mean + self.k * dev, self.floor_multiplier * max(mean, 1.0)
            )
            # EWMA updates lag the threshold (today's traffic cannot raise
            # today's bar), and large excursions are clamped so an ongoing
            # attack does not poison the baseline.
            bounded = min(x, thresholds[i])
            dev = (1 - alpha) * dev + alpha * abs(bounded - mean)
            mean = (1 - alpha) * mean + alpha * bounded
        return thresholds
