"""CUSUM change detection — the Appendix A anomaly-start labeler.

Given a byte series and a known attack detection time, the paper runs CUSUM
*in retrospect* over the traffic matching the alert signature to find the
anomaly onset ("anomaly start" in Figure 2): normalized observations

    Z_i = (x_i - mu - NUMSTD * sigma) / sigma

accumulate as ``S_n = max(0, S_{n-1} + Z_n)`` and the onset is the first
minute where ``S_n`` crosses the threshold.  ``mu``/``sigma`` are estimated
from the hour before the attack; NUMSTD is per attack type (1.0 for UDP and
DNS amplification, 0.5 for the TCP variants and ICMP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..synth.attacks import AttackType

__all__ = ["cusum_scores", "cusum_detect", "anomaly_start", "NUMSTD_BY_TYPE"]

NUMSTD_BY_TYPE: dict[AttackType, float] = {
    AttackType.UDP_FLOOD: 1.0,
    AttackType.DNS_AMPLIFICATION: 1.0,
    AttackType.TCP_ACK: 0.5,
    AttackType.TCP_SYN: 0.5,
    AttackType.TCP_RST: 0.5,
    AttackType.ICMP_FLOOD: 0.5,
}


def cusum_scores(
    series: np.ndarray, mu: float, sigma: float, numstd: float = 1.0
) -> np.ndarray:
    """The running CUSUM statistic ``S_n`` for every step of ``series``."""
    series = np.asarray(series, dtype=np.float64)
    sigma = max(sigma, 1e-9)
    z = (series - mu - numstd * sigma) / sigma
    scores = np.empty_like(z)
    s = 0.0
    for i, value in enumerate(z):
        s = max(0.0, s + value)
        scores[i] = s
    return scores


def cusum_detect(
    series: np.ndarray,
    mu: float,
    sigma: float,
    numstd: float = 1.0,
    threshold: float = 5.0,
) -> int | None:
    """First index where the CUSUM statistic exceeds ``threshold`` (or None)."""
    scores = cusum_scores(series, mu, sigma, numstd)
    hits = np.nonzero(scores > threshold)[0]
    return int(hits[0]) if len(hits) else None


def anomaly_start(
    signature_series: np.ndarray,
    detect_index: int,
    attack_type: AttackType,
    baseline_window: int = 60,
    threshold: float = 5.0,
) -> int:
    """Recover the anomaly-start index preceding a known detection.

    ``signature_series`` is the per-minute byte series of traffic matching
    the alert signature; ``detect_index`` the CDet detection minute within
    it.  The baseline ``mu``/``sigma`` come from the ``baseline_window``
    minutes before detection (clipped to the series start).  Scanning runs
    forward from the start of the baseline window; if CUSUM never fires
    before the detection, the detection index itself is returned (the attack
    had no visible ramp).
    """
    if detect_index <= 0:
        return 0
    lo = max(0, detect_index - baseline_window)
    baseline = signature_series[lo:detect_index]
    if len(baseline) == 0:
        return detect_index
    # A sustained ramp inflates the naive mean/std; median and MAD are
    # robust to the ramp tail without biasing the quiet level low.
    mu = float(np.median(baseline))
    sigma = float(1.4826 * np.median(np.abs(baseline - mu)))
    if sigma <= 0:
        sigma = float(baseline.std()) or 1.0
    numstd = NUMSTD_BY_TYPE.get(attack_type, 1.0)
    onset = cusum_detect(signature_series[lo : detect_index + 1], mu, sigma, numstd, threshold)
    if onset is None:
        return detect_index
    return lo + onset
