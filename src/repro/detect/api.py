"""The unified streaming detector API.

Every deployable detector in the reproduction — the incumbent CDet
simulators (:class:`~repro.detect.detectors.NetScoutDetector`,
:class:`~repro.detect.detectors.FastNetMonDetector`) and Xatu's streaming
mode (:class:`~repro.core.online.OnlineXatu`) — conforms to one minute-
driven protocol, so evaluation harnesses and the serving engine
(:mod:`repro.serve`) can drive any of them interchangeably:

* ``observe_minute(flows)`` ingests one minute of sampled flow records and
  returns ``None`` (alerts are *polled*, not returned, so drivers never
  depend on a detector's internal alert type);
* ``poll_alerts()`` drains the alerts emitted since the last poll;
* ``reset()`` returns the detector to its post-construction state.

Minutes are implicit: each ``observe_minute`` call advances the detector's
internal clock by one minute, or jumps it forward to the newest flow
timestamp in the batch (flow records carry their export minute).  Drivers
therefore call ``observe_minute`` exactly once per minute, passing an
empty list for quiet minutes — absence of traffic is itself signal.

Alerts are structural: anything with ``customer_id``, ``minute``, and
``score`` attributes satisfies :class:`Alert`.  ``score`` is detector-
specific (Xatu's survival probability; a CDet's excursion ratio) but is
always orientation-free metadata — the *emission* of the alert is the
detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol as TypingProtocol, Sequence, runtime_checkable

from ..netflow.records import FlowRecord

__all__ = ["Alert", "StreamAlert", "Detector", "infer_minute", "drive"]


@runtime_checkable
class Alert(TypingProtocol):
    """Structural alert shape shared by every streaming detector."""

    customer_id: int
    minute: int
    score: float


@dataclass(frozen=True, slots=True)
class StreamAlert:
    """Concrete :class:`Alert` emitted by the streaming CDet modes.

    ``detector`` names the emitting system (``netscout`` / ``fastnetmon``
    / ``xatu``), letting merged multi-detector streams stay attributable.
    """

    customer_id: int
    minute: int
    score: float
    detector: str = "cdet"


@runtime_checkable
class Detector(TypingProtocol):
    """The minute-driven streaming detector protocol (see module docs)."""

    name: str

    def observe_minute(self, flows: Sequence[FlowRecord]) -> None:
        """Ingest one minute of sampled flows; alerts surface via
        :meth:`poll_alerts`."""
        ...  # pragma: no cover - protocol

    def poll_alerts(self) -> list[Alert]:
        """Drain alerts accumulated since the last poll."""
        ...  # pragma: no cover - protocol

    def reset(self) -> None:
        """Return to the post-construction state (clock, stores, alerts)."""
        ...  # pragma: no cover - protocol


def infer_minute(current: int, flows: Sequence[FlowRecord]) -> int:
    """The minute an ``observe_minute(flows)`` call covers.

    One call is one minute: the clock advances by one, or jumps forward to
    the newest flow timestamp when the batch is ahead (e.g. resuming a
    replay mid-trace).  Flows are never allowed to rewind the clock.
    """
    minute = current + 1
    for flow in flows:
        if flow.timestamp > minute:
            minute = flow.timestamp
    return minute


def drive(
    detector: Detector,
    minutes: Iterable[tuple[int, Sequence[FlowRecord]]],
) -> list[Alert]:
    """Feed ``(minute, flows)`` batches to any protocol detector and return
    the collected alerts.

    Quiet minutes between consecutive batch minutes are filled with empty
    calls so the detector's internal clock tracks wall time — this is the
    reference driver the eval harness and tests share.
    """
    alerts: list[Alert] = []
    last: int | None = None
    for minute, flows in minutes:
        if last is not None:
            for _quiet in range(last + 1, minute):
                detector.observe_minute([])
                alerts.extend(detector.poll_alerts())
        detector.observe_minute(list(flows))
        alerts.extend(detector.poll_alerts())
        last = minute
    return alerts
