"""NetFlow-v5-style export datagrams: header + fixed-size record block.

The bare :func:`~repro.netflow.records.encode_flows` batch format carries
only a count; real NetFlow v5 exports prepend a header with version,
record count, router uptime, export timestamp, and a flow sequence number
that lets collectors detect datagram loss.  :class:`DatagramCodec` adds
that envelope (and the loss accounting) on top of the record codec.

The columnar fast path is :meth:`DatagramCodec.decode_batch`: the whole
record block becomes one :class:`~repro.netflow.records.FlowBatch` view
over the datagram bytes (a single ``np.frombuffer``, no per-record
unpacking).  :meth:`DatagramCodec.decode` keeps the record-list shape for
existing callers by converting that view.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..obs import get_registry, obs_enabled
from .records import FLOW_WIRE_SIZE, FlowBatch, FlowRecord, _as_batch

__all__ = ["DatagramHeader", "DatagramCodec", "SequenceTracker"]

_HEADER_STRUCT = struct.Struct("<HHIIII")
HEADER_SIZE = _HEADER_STRUCT.size
_VERSION = 5


@dataclass(frozen=True, slots=True)
class DatagramHeader:
    """The v5-style export header."""

    version: int
    count: int
    sys_uptime_ms: int
    unix_secs: int
    flow_sequence: int
    engine_id: int


class DatagramCodec:
    """Stateful exporter-side codec: stamps headers with running sequence."""

    def __init__(self, engine_id: int = 0) -> None:
        self.engine_id = engine_id
        self._sequence = 0

    def encode(
        self,
        flows: "FlowBatch | list[FlowRecord]",
        sys_uptime_ms: int = 0,
        unix_secs: int = 0,
    ) -> bytes:
        """Encode one export datagram, advancing the flow sequence.

        Accepts a record list or a :class:`FlowBatch`; a batch encodes
        straight from its array buffer.
        """
        batch = _as_batch(flows)
        header = _HEADER_STRUCT.pack(
            _VERSION,
            len(batch),
            sys_uptime_ms,
            unix_secs,
            self._sequence,
            self.engine_id,
        )
        self._sequence += len(batch)
        return header + batch.to_bytes()

    @staticmethod
    def decode_batch(blob: bytes) -> tuple[DatagramHeader, FlowBatch]:
        """Parse header + records columnar; validates version and length.

        The returned batch is a zero-copy view over ``blob``.
        """
        if len(blob) < HEADER_SIZE:
            raise ValueError("datagram shorter than its header")
        version, count, uptime, secs, sequence, engine = _HEADER_STRUCT.unpack_from(blob, 0)
        if version != _VERSION:
            raise ValueError(f"unsupported datagram version {version}")
        expected = HEADER_SIZE + count * FLOW_WIRE_SIZE
        if len(blob) != expected:
            raise ValueError(
                f"datagram length mismatch: expected {expected}, got {len(blob)}"
            )
        batch = FlowBatch.from_buffer(blob, count=count, offset=HEADER_SIZE)
        header = DatagramHeader(version, count, uptime, secs, sequence, engine)
        return header, batch

    @staticmethod
    def decode(blob: bytes) -> tuple[DatagramHeader, list[FlowRecord]]:
        """Parse header + records; validates version and length."""
        header, batch = DatagramCodec.decode_batch(blob)
        return header, batch.to_records()


class SequenceTracker:
    """Collector-side flow-sequence gap accounting (per engine id).

    NetFlow's ``flow_sequence`` counts records, not datagrams: a gap between
    the expected and received sequence is the number of records lost in
    transit — the standard way collectors quantify export loss.

    The telemetry handles are resolved once at construction (metric objects
    survive ``MetricsRegistry.reset``), so the per-datagram hot path pays
    four attribute loads instead of four registry lookups.
    """

    def __init__(self) -> None:
        self._expected: dict[int, int] = {}
        self.records_received = 0
        self.records_lost = 0
        self.out_of_order = 0
        registry = get_registry()
        self._obs_datagrams = registry.counter(
            "netflow.datagrams", "export datagrams observed"
        )
        self._obs_records = registry.counter(
            "netflow.records", "flow records received"
        )
        self._obs_lost = registry.counter(
            "netflow.records_lost", "flow records lost (sequence gaps)"
        )
        self._obs_reordered = registry.counter(
            "netflow.datagrams_reordered", "datagrams arriving out of order"
        )
        self._obs_loss_rate = registry.gauge(
            "netflow.loss_rate", "fraction of exported records lost in transit"
        )

    def observe(self, header: DatagramHeader) -> int:
        """Account one datagram header; returns records lost before it."""
        expected = self._expected.get(header.engine_id)
        lost = 0
        reordered = False
        if expected is not None:
            if header.flow_sequence > expected:
                lost = header.flow_sequence - expected
                self.records_lost += lost
            elif header.flow_sequence < expected:
                self.out_of_order += 1
                reordered = True
        self._expected[header.engine_id] = header.flow_sequence + header.count
        self.records_received += header.count
        if obs_enabled():
            self._obs_datagrams.inc()
            self._obs_records.inc(header.count)
            if lost:
                self._obs_lost.inc(lost)
            if reordered:
                self._obs_reordered.inc()
            self._obs_loss_rate.set(self.loss_rate)
        return lost

    @property
    def loss_rate(self) -> float:
        total = self.records_received + self.records_lost
        return self.records_lost / total if total else 0.0
