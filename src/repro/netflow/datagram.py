"""NetFlow-v5-style export datagrams: header + fixed-size record block.

The bare :func:`~repro.netflow.records.encode_flows` batch format carries
only a count; real NetFlow v5 exports prepend a header with version,
record count, router uptime, export timestamp, and a flow sequence number
that lets collectors detect datagram loss.  :class:`DatagramCodec` adds
that envelope (and the loss accounting) on top of the record codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..obs import get_registry, obs_enabled
from .records import FLOW_WIRE_SIZE, FlowRecord, decode_flow, encode_flow

__all__ = ["DatagramHeader", "DatagramCodec", "SequenceTracker"]

_HEADER_STRUCT = struct.Struct("<HHIIII")
HEADER_SIZE = _HEADER_STRUCT.size
_VERSION = 5


@dataclass(frozen=True, slots=True)
class DatagramHeader:
    """The v5-style export header."""

    version: int
    count: int
    sys_uptime_ms: int
    unix_secs: int
    flow_sequence: int
    engine_id: int


class DatagramCodec:
    """Stateful exporter-side codec: stamps headers with running sequence."""

    def __init__(self, engine_id: int = 0) -> None:
        self.engine_id = engine_id
        self._sequence = 0

    def encode(
        self,
        flows: list[FlowRecord],
        sys_uptime_ms: int = 0,
        unix_secs: int = 0,
    ) -> bytes:
        """Encode one export datagram, advancing the flow sequence."""
        header = _HEADER_STRUCT.pack(
            _VERSION,
            len(flows),
            sys_uptime_ms,
            unix_secs,
            self._sequence,
            self.engine_id,
        )
        self._sequence += len(flows)
        return header + b"".join(encode_flow(f) for f in flows)

    @staticmethod
    def decode(blob: bytes) -> tuple[DatagramHeader, list[FlowRecord]]:
        """Parse header + records; validates version and length."""
        if len(blob) < HEADER_SIZE:
            raise ValueError("datagram shorter than its header")
        version, count, uptime, secs, sequence, engine = _HEADER_STRUCT.unpack_from(blob, 0)
        if version != _VERSION:
            raise ValueError(f"unsupported datagram version {version}")
        expected = HEADER_SIZE + count * FLOW_WIRE_SIZE
        if len(blob) != expected:
            raise ValueError(
                f"datagram length mismatch: expected {expected}, got {len(blob)}"
            )
        flows = [
            decode_flow(blob[HEADER_SIZE + i * FLOW_WIRE_SIZE : HEADER_SIZE + (i + 1) * FLOW_WIRE_SIZE])
            for i in range(count)
        ]
        header = DatagramHeader(version, count, uptime, secs, sequence, engine)
        return header, flows


class SequenceTracker:
    """Collector-side flow-sequence gap accounting (per engine id).

    NetFlow's ``flow_sequence`` counts records, not datagrams: a gap between
    the expected and received sequence is the number of records lost in
    transit — the standard way collectors quantify export loss.
    """

    def __init__(self) -> None:
        self._expected: dict[int, int] = {}
        self.records_received = 0
        self.records_lost = 0
        self.out_of_order = 0

    def observe(self, header: DatagramHeader) -> int:
        """Account one datagram header; returns records lost before it."""
        expected = self._expected.get(header.engine_id)
        lost = 0
        reordered = False
        if expected is not None:
            if header.flow_sequence > expected:
                lost = header.flow_sequence - expected
                self.records_lost += lost
            elif header.flow_sequence < expected:
                self.out_of_order += 1
                reordered = True
        self._expected[header.engine_id] = header.flow_sequence + header.count
        self.records_received += header.count
        if obs_enabled():
            registry = get_registry()
            registry.counter("netflow.datagrams", "export datagrams observed").inc()
            registry.counter("netflow.records", "flow records received").inc(
                header.count
            )
            if lost:
                registry.counter(
                    "netflow.records_lost", "flow records lost (sequence gaps)"
                ).inc(lost)
            if reordered:
                registry.counter(
                    "netflow.datagrams_reordered", "datagrams arriving out of order"
                ).inc()
            registry.gauge(
                "netflow.loss_rate", "fraction of exported records lost in transit"
            ).set(self.loss_rate)
        return lost

    @property
    def loss_rate(self) -> float:
        total = self.records_received + self.records_lost
        return self.records_lost / total if total else 0.0
