"""IPv4 address helpers used across the reproduction.

Addresses are plain 32-bit integers throughout (fast in numpy); these
helpers convert to/from dotted-quad text and /24 subnet keys.  Blocklists
operate at /24 granularity, as in the paper (§5.1): blocklist entries are
widened to /24 "to improve the effectiveness of blocklists ... due to
dynamically managed IP address space."
"""

from __future__ import annotations

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "subnet24",
    "subnet24_str",
    "in_cidr",
    "cidr_to_range",
]


def ip_to_int(text: str) -> int:
    """Parse dotted-quad IPv4 text to a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad IPv4 text."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 value out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def subnet24(addr: int) -> int:
    """Return the /24 prefix of ``addr`` (as the masked integer)."""
    return addr & 0xFFFFFF00


def subnet24_str(addr: int) -> str:
    """Return the /24 prefix of ``addr`` in CIDR text form."""
    return f"{int_to_ip(subnet24(addr))}/24"


def cidr_to_range(cidr: str) -> tuple[int, int]:
    """Return the inclusive integer range ``(lo, hi)`` covered by a CIDR."""
    base_text, _, length_text = cidr.partition("/")
    length = int(length_text) if length_text else 32
    if not 0 <= length <= 32:
        raise ValueError(f"bad prefix length in {cidr!r}")
    base = ip_to_int(base_text)
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    lo = base & mask
    hi = lo | (~mask & 0xFFFFFFFF)
    return lo, hi


def in_cidr(addr: int, cidr: str) -> bool:
    """Whether integer address ``addr`` falls inside CIDR text ``cidr``."""
    lo, hi = cidr_to_range(cidr)
    return lo <= addr <= hi
