"""Flow records and traffic constants.

A :class:`FlowRecord` is the reproduction's stand-in for one sampled NetFlow
v5/v9 record: the 5-tuple, byte/packet counters, TCP flags, a timestamp, and
the exporter's sampling rate.  The synthetic ISP world (:mod:`repro.synth`)
emits these; the feature extractor (:mod:`repro.signals`) consumes per-minute
aggregations of them.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

__all__ = [
    "Protocol",
    "TcpFlags",
    "FlowRecord",
    "encode_flow",
    "decode_flow",
    "encode_flows",
    "decode_flows",
    "FLOW_WIRE_SIZE",
]


class Protocol(enum.IntEnum):
    """IP protocol numbers used by the six attack types in the dataset."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TcpFlags(enum.IntFlag):
    """TCP header flag bits (subset relevant to attack signatures)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One sampled flow record.

    Attributes
    ----------
    timestamp:
        Export time in integer minutes since the start of the trace.  The
        paper's exporters have a one-minute exportation delay (§5.1), so the
        minute is the native time resolution throughout the reproduction.
    src_addr / dst_addr:
        IPv4 addresses as 32-bit integers.
    src_port / dst_port:
        Transport ports (0 for ICMP).
    protocol:
        IP protocol number.
    packets / bytes_:
        Sampled counters (multiply by ``sampling_rate`` to estimate the
        original traffic).
    tcp_flags:
        OR of all TCP flags seen on the flow (0 for non-TCP).
    src_country:
        Two-letter country code of the source (the paper's country features
        come from an IP-geo mapping; the synthetic world assigns countries
        directly to address blocks).
    sampling_rate:
        1:N packet sampling rate at the exporting router (1..10000, §5.1).
    """

    timestamp: int
    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int
    packets: int
    bytes_: int
    tcp_flags: int = 0
    src_country: str = "US"
    sampling_rate: int = 1

    def __post_init__(self) -> None:
        if self.packets < 0 or self.bytes_ < 0:
            raise ValueError("flow counters must be non-negative")
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("ports must fit in 16 bits")
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate is 1:N with N >= 1")

    @property
    def estimated_bytes(self) -> int:
        """Upscaled byte count compensating for packet sampling."""
        return self.bytes_ * self.sampling_rate

    @property
    def estimated_packets(self) -> int:
        """Upscaled packet count compensating for packet sampling."""
        return self.packets * self.sampling_rate


# Wire format: a fixed 40-byte little-endian layout per record, preceded in
# streams by a u32 record count.  This mimics the fixed-size record blocks of
# NetFlow v5 export datagrams.
_FLOW_STRUCT = struct.Struct("<IIIHHBBIQH2sI")
FLOW_WIRE_SIZE = _FLOW_STRUCT.size


def encode_flow(flow: FlowRecord) -> bytes:
    """Serialize one record to its fixed-size wire form."""
    return _FLOW_STRUCT.pack(
        flow.timestamp,
        flow.src_addr,
        flow.dst_addr,
        flow.src_port,
        flow.dst_port,
        flow.protocol,
        flow.tcp_flags,
        flow.packets,
        flow.bytes_,
        flow.sampling_rate,
        flow.src_country.encode("ascii")[:2].ljust(2, b" "),
        0,  # reserved
    )


def decode_flow(blob: bytes) -> FlowRecord:
    """Parse one fixed-size wire record back into a :class:`FlowRecord`."""
    (
        timestamp,
        src_addr,
        dst_addr,
        src_port,
        dst_port,
        protocol,
        tcp_flags,
        packets,
        bytes_,
        sampling_rate,
        country,
        _reserved,
    ) = _FLOW_STRUCT.unpack(blob)
    return FlowRecord(
        timestamp=timestamp,
        src_addr=src_addr,
        dst_addr=dst_addr,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        packets=packets,
        bytes_=bytes_,
        tcp_flags=tcp_flags,
        src_country=country.decode("ascii").strip() or "US",
        sampling_rate=sampling_rate,
    )


def encode_flows(flows: list[FlowRecord]) -> bytes:
    """Serialize a batch: u32 count followed by fixed-size records."""
    return struct.pack("<I", len(flows)) + b"".join(encode_flow(f) for f in flows)


def decode_flows(blob: bytes) -> list[FlowRecord]:
    """Parse a batch produced by :func:`encode_flows`."""
    if len(blob) < 4:
        raise ValueError("truncated flow batch: missing count header")
    (count,) = struct.unpack_from("<I", blob, 0)
    expected = 4 + count * FLOW_WIRE_SIZE
    if len(blob) != expected:
        raise ValueError(
            f"truncated flow batch: expected {expected} bytes, got {len(blob)}"
        )
    flows = []
    for i in range(count):
        offset = 4 + i * FLOW_WIRE_SIZE
        flows.append(decode_flow(blob[offset : offset + FLOW_WIRE_SIZE]))
    return flows
