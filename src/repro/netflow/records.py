"""Flow records, the columnar flow batch, and traffic constants.

A :class:`FlowRecord` is the reproduction's stand-in for one sampled NetFlow
v5/v9 record: the 5-tuple, byte/packet counters, TCP flags, a timestamp, and
the exporter's sampling rate.  The synthetic ISP world (:mod:`repro.synth`)
emits these; the feature extractor (:mod:`repro.signals`) consumes per-minute
aggregations of them.

Columnar fast path
------------------
:data:`FLOW_DTYPE` is a numpy structured dtype that mirrors the wire record
byte for byte, so a whole datagram's record block decodes as **one**
``np.frombuffer`` view — no per-record ``struct.unpack`` — wrapped in a
:class:`FlowBatch`.  Encoding goes the other way: the array's own buffer
*is* the wire payload.  The scalar :class:`FlowRecord` API survives as a
thin conversion shim (:meth:`FlowBatch.to_records` /
:meth:`FlowBatch.from_records`), so every list-of-records caller and every
golden fixture stands unchanged; the two paths are proven byte-identical
by the differential suite in ``tests/test_columnar.py``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Protocol",
    "TcpFlags",
    "FlowRecord",
    "FlowBatch",
    "FLOW_DTYPE",
    "encode_flow",
    "decode_flow",
    "encode_flows",
    "decode_flows",
    "decode_flows_batch",
    "FLOW_WIRE_SIZE",
]


class Protocol(enum.IntEnum):
    """IP protocol numbers used by the six attack types in the dataset."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TcpFlags(enum.IntFlag):
    """TCP header flag bits (subset relevant to attack signatures)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One sampled flow record.

    Attributes
    ----------
    timestamp:
        Export time in integer minutes since the start of the trace.  The
        paper's exporters have a one-minute exportation delay (§5.1), so the
        minute is the native time resolution throughout the reproduction.
    src_addr / dst_addr:
        IPv4 addresses as 32-bit integers.
    src_port / dst_port:
        Transport ports (0 for ICMP).
    protocol:
        IP protocol number.
    packets / bytes_:
        Sampled counters (multiply by ``sampling_rate`` to estimate the
        original traffic).
    tcp_flags:
        OR of all TCP flags seen on the flow (0 for non-TCP).
    src_country:
        Two-letter country code of the source (the paper's country features
        come from an IP-geo mapping; the synthetic world assigns countries
        directly to address blocks).
    sampling_rate:
        1:N packet sampling rate at the exporting router (1..10000, §5.1).
    """

    timestamp: int
    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int
    packets: int
    bytes_: int
    tcp_flags: int = 0
    src_country: str = "US"
    sampling_rate: int = 1

    def __post_init__(self) -> None:
        if self.packets < 0 or self.bytes_ < 0:
            raise ValueError("flow counters must be non-negative")
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("ports must fit in 16 bits")
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate is 1:N with N >= 1")

    @property
    def estimated_bytes(self) -> int:
        """Upscaled byte count compensating for packet sampling."""
        return self.bytes_ * self.sampling_rate

    @property
    def estimated_packets(self) -> int:
        """Upscaled packet count compensating for packet sampling."""
        return self.packets * self.sampling_rate


# Wire format: a fixed 38-byte little-endian layout per record, preceded in
# streams by a u32 record count.  This mimics the fixed-size record blocks of
# NetFlow v5 export datagrams.
_FLOW_STRUCT = struct.Struct("<IIIHHBBIQH2sI")
FLOW_WIRE_SIZE = _FLOW_STRUCT.size

# The same layout as a packed numpy structured dtype: field order, widths,
# and endianness line up with ``_FLOW_STRUCT`` exactly, so a record block
# views as an array (and an array's buffer is a record block) with zero
# re-serialization.
FLOW_DTYPE = np.dtype(
    [
        ("timestamp", "<u4"),
        ("src_addr", "<u4"),
        ("dst_addr", "<u4"),
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("protocol", "u1"),
        ("tcp_flags", "u1"),
        ("packets", "<u4"),
        ("bytes", "<u8"),
        ("sampling_rate", "<u2"),
        ("src_country", "S2"),
        ("reserved", "<u4"),
    ]
)
assert FLOW_DTYPE.itemsize == FLOW_WIRE_SIZE, "structured dtype must mirror the wire layout"


def _encode_country(country: str) -> bytes:
    return country.encode("ascii")[:2].ljust(2, b" ")


def _decode_country(raw: bytes) -> str:
    return raw.decode("ascii").strip() or "US"


class FlowBatch:
    """A column-oriented batch of flow records (one numpy structured array).

    The canonical in-memory form of the ingest fast path: datagram decode
    yields a ``FlowBatch`` view straight over the wire bytes, the collector
    retains batches, and :meth:`repro.netflow.TrafficMatrix.add_batch`
    aggregates them with vectorized group-bys.  Iteration and indexing fall
    back to :class:`FlowRecord` conversion so protocol-shaped consumers that
    expect record sequences keep working unmodified.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        if array.dtype != FLOW_DTYPE:
            raise TypeError(f"FlowBatch requires FLOW_DTYPE arrays, got {array.dtype}")
        if array.ndim != 1:
            raise ValueError("FlowBatch arrays must be one-dimensional")
        self.array = array

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls) -> "FlowBatch":
        return cls(np.empty(0, dtype=FLOW_DTYPE))

    @classmethod
    def from_records(cls, flows: Iterable[FlowRecord]) -> "FlowBatch":
        """Columnarize a record list (the scalar-API conversion shim)."""
        flows = list(flows)
        array = np.empty(len(flows), dtype=FLOW_DTYPE)
        for i, f in enumerate(flows):
            array[i] = (
                f.timestamp,
                f.src_addr,
                f.dst_addr,
                f.src_port,
                f.dst_port,
                f.protocol,
                f.tcp_flags,
                f.packets,
                f.bytes_,
                f.sampling_rate,
                _encode_country(f.src_country),
                0,
            )
        return cls(array)

    @classmethod
    def from_buffer(cls, buffer, count: int | None = None, offset: int = 0) -> "FlowBatch":
        """Zero-copy view of a wire record block (no count prefix).

        ``buffer`` is any object exposing the buffer protocol; the returned
        batch aliases it (read-only when the source is immutable), so the
        caller must keep the buffer alive and unmodified while the batch is
        in use.
        """
        array = np.frombuffer(buffer, dtype=FLOW_DTYPE, count=-1 if count is None else count, offset=offset)
        return cls(array)

    @staticmethod
    def concat(batches: Sequence["FlowBatch"]) -> "FlowBatch":
        """Concatenate batches into one (copies; empty input allowed)."""
        arrays = [b.array for b in batches if len(b.array)]
        if not arrays:
            return FlowBatch.empty()
        if len(arrays) == 1:
            return FlowBatch(arrays[0])
        return FlowBatch(np.concatenate(arrays))

    # -- wire -----------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The raw record block (no count prefix); byte-identical to
        concatenating :func:`encode_flow` over :meth:`to_records`."""
        return self.array.tobytes()

    # -- record shim ------------------------------------------------------
    def to_records(self) -> list[FlowRecord]:
        """Materialize scalar :class:`FlowRecord` objects (plain-int fields)."""
        return [
            FlowRecord(
                timestamp=ts,
                src_addr=src,
                dst_addr=dst,
                src_port=sport,
                dst_port=dport,
                protocol=proto,
                packets=packets,
                bytes_=bytes_,
                tcp_flags=flags,
                src_country=_decode_country(country),
                sampling_rate=rate,
            )
            for ts, src, dst, sport, dport, proto, flags, packets, bytes_, rate, country, _ in self.array.tolist()
        ]

    # -- column accessors (copies cast for arithmetic safety) ------------
    def estimated_bytes(self) -> np.ndarray:
        """Sampling-compensated byte counts as int64 (exact for the wire
        domain; see ``TrafficMatrix.add_batch`` for the representability
        argument)."""
        return self.array["bytes"].astype(np.int64) * self.array["sampling_rate"].astype(np.int64)

    def estimated_packets(self) -> np.ndarray:
        """Sampling-compensated packet counts as int64."""
        return self.array["packets"].astype(np.int64) * self.array["sampling_rate"].astype(np.int64)

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.array)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self.to_records())

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            row = self.array[int(key)]
            return FlowRecord(
                timestamp=int(row["timestamp"]),
                src_addr=int(row["src_addr"]),
                dst_addr=int(row["dst_addr"]),
                src_port=int(row["src_port"]),
                dst_port=int(row["dst_port"]),
                protocol=int(row["protocol"]),
                packets=int(row["packets"]),
                bytes_=int(row["bytes"]),
                tcp_flags=int(row["tcp_flags"]),
                src_country=_decode_country(bytes(row["src_country"])),
                sampling_rate=int(row["sampling_rate"]),
            )
        return FlowBatch(self.array[key])

    def __eq__(self, other) -> bool:
        if isinstance(other, FlowBatch):
            return bool(np.array_equal(self.array, other.array))
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlowBatch(n={len(self.array)})"


def _as_batch(flows: "FlowBatch | Sequence[FlowRecord]") -> FlowBatch:
    """Coerce either flow representation to a :class:`FlowBatch`."""
    if isinstance(flows, FlowBatch):
        return flows
    return FlowBatch.from_records(flows)


def encode_flow(flow: FlowRecord) -> bytes:
    """Serialize one record to its fixed-size wire form."""
    return _FLOW_STRUCT.pack(
        flow.timestamp,
        flow.src_addr,
        flow.dst_addr,
        flow.src_port,
        flow.dst_port,
        flow.protocol,
        flow.tcp_flags,
        flow.packets,
        flow.bytes_,
        flow.sampling_rate,
        _encode_country(flow.src_country),
        0,  # reserved
    )


def decode_flow(blob: bytes) -> FlowRecord:
    """Parse one fixed-size wire record back into a :class:`FlowRecord`."""
    (
        timestamp,
        src_addr,
        dst_addr,
        src_port,
        dst_port,
        protocol,
        tcp_flags,
        packets,
        bytes_,
        sampling_rate,
        country,
        _reserved,
    ) = _FLOW_STRUCT.unpack(blob)
    return FlowRecord(
        timestamp=timestamp,
        src_addr=src_addr,
        dst_addr=dst_addr,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        packets=packets,
        bytes_=bytes_,
        tcp_flags=tcp_flags,
        src_country=_decode_country(country),
        sampling_rate=sampling_rate,
    )


def encode_flows(flows: "FlowBatch | Sequence[FlowRecord]") -> bytes:
    """Serialize a batch: u32 count followed by fixed-size records.

    Accepts a :class:`FlowBatch` (encoded straight from its buffer) or a
    record list (columnarized first); the bytes are identical either way.
    """
    batch = _as_batch(flows)
    return struct.pack("<I", len(batch)) + batch.to_bytes()


def decode_flows_batch(blob: bytes) -> FlowBatch:
    """Parse a batch produced by :func:`encode_flows` as one columnar view.

    The returned batch aliases ``blob`` (zero copy, read-only); slice or
    ``concat`` it to detach.
    """
    if len(blob) < 4:
        raise ValueError("truncated flow batch: missing count header")
    (count,) = struct.unpack_from("<I", blob, 0)
    expected = 4 + count * FLOW_WIRE_SIZE
    if len(blob) != expected:
        raise ValueError(
            f"truncated flow batch: expected {expected} bytes, got {len(blob)}"
        )
    return FlowBatch.from_buffer(blob, count=count, offset=4)


def decode_flows(blob: bytes) -> list[FlowRecord]:
    """Parse a batch produced by :func:`encode_flows` (record-list shim)."""
    return decode_flows_batch(blob).to_records()
