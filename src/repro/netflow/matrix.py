"""Per-minute, per-customer traffic aggregation.

The feature extractor of Table 1 needs, for every customer and every minute,
the 63 volumetric counters (unique sources, byte/packet totals per protocol,
popular ports, TCP flags, source countries) — and the same 63 counters
restricted to each auxiliary source class (blocklisted / previous attackers /
spoofed, the A1–A3 splits).  :class:`TrafficMatrix` maintains exactly that:
a dict of :class:`VolumetricAccumulator` keyed by (customer, source-class,
minute), and materializes dense ``(minutes, 63)`` numpy blocks on demand.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .records import FlowRecord, Protocol, TcpFlags

__all__ = [
    "POPULAR_PORTS",
    "POPULAR_COUNTRIES",
    "SOURCE_CLASS_ALL",
    "SOURCE_CLASS_BLOCKLIST",
    "SOURCE_CLASS_PREV_ATTACKER",
    "SOURCE_CLASS_SPOOFED",
    "VOLUMETRIC_FEATURE_NAMES",
    "N_VOLUMETRIC",
    "VolumetricAccumulator",
    "TrafficMatrix",
]

# Appendix D: ports and countries that dominate the ISP's traffic.
POPULAR_PORTS: tuple[int, ...] = (0, 53, 80, 123, 443)
POPULAR_COUNTRIES: tuple[str, ...] = (
    "US", "IN", "SA", "CN", "GB", "NL", "FR", "DE", "BR", "CA",
)
_TCP_FLAG_BITS: tuple[TcpFlags, ...] = (
    TcpFlags.FIN, TcpFlags.SYN, TcpFlags.RST,
    TcpFlags.PSH, TcpFlags.ACK, TcpFlags.URG,
)

SOURCE_CLASS_ALL = "all"
SOURCE_CLASS_BLOCKLIST = "blocklist"
SOURCE_CLASS_PREV_ATTACKER = "prev_attacker"
SOURCE_CLASS_SPOOFED = "spoofed"


def _volumetric_feature_names() -> list[str]:
    names = ["unique_sources"]
    names += ["mean_bytes", "mean_packets", "max_bytes", "max_packets"]
    for proto in ("udp", "tcp", "icmp"):
        names += [f"{proto}_bytes", f"{proto}_packets"]
    for port in POPULAR_PORTS:
        names += [f"sport{port}_bytes", f"sport{port}_packets"]
    for port in POPULAR_PORTS:
        names += [f"dport{port}_bytes", f"dport{port}_packets"]
    for flag in _TCP_FLAG_BITS:
        names += [f"flag_{flag.name.lower()}_bytes", f"flag_{flag.name.lower()}_packets"]
    for country in POPULAR_COUNTRIES:
        names += [f"cc_{country}_bytes", f"cc_{country}_packets"]
    return names


VOLUMETRIC_FEATURE_NAMES: tuple[str, ...] = tuple(_volumetric_feature_names())
N_VOLUMETRIC = len(VOLUMETRIC_FEATURE_NAMES)
assert N_VOLUMETRIC == 63, "Table 1 specifies 63 volumetric features"

_PORT_INDEX = {p: i for i, p in enumerate(POPULAR_PORTS)}
_COUNTRY_INDEX = {c: i for i, c in enumerate(POPULAR_COUNTRIES)}

# Column offsets inside the 63-wide vector.
_OFF_UNIQUE = 0
_OFF_MEANMAX = 1          # mean_bytes, mean_packets, max_bytes, max_packets
_OFF_PROTO = 5            # 3 protocols x 2
_OFF_SPORT = 11           # 5 ports x 2
_OFF_DPORT = 21           # 5 ports x 2
_OFF_FLAGS = 31           # 6 flags x 2
_OFF_COUNTRY = 43         # 10 countries x 2


class VolumetricAccumulator:
    """Accumulates flows of one (customer, source-class, minute) cell."""

    __slots__ = (
        "flow_count", "total_bytes", "total_packets", "max_bytes",
        "max_packets", "vector", "_sources",
    )

    def __init__(self) -> None:
        self.flow_count = 0
        self.total_bytes = 0
        self.total_packets = 0
        self.max_bytes = 0
        self.max_packets = 0
        self.vector = np.zeros(N_VOLUMETRIC)
        self._sources: set[int] = set()

    def add(self, flow: FlowRecord) -> None:
        """Fold one sampled flow into the counters (sampling-compensated)."""
        bytes_ = flow.estimated_bytes
        packets = flow.estimated_packets
        self.flow_count += 1
        self.total_bytes += bytes_
        self.total_packets += packets
        self.max_bytes = max(self.max_bytes, bytes_)
        self.max_packets = max(self.max_packets, packets)
        self._sources.add(flow.src_addr)

        v = self.vector
        if flow.protocol == Protocol.UDP:
            v[_OFF_PROTO + 0] += bytes_
            v[_OFF_PROTO + 1] += packets
        elif flow.protocol == Protocol.TCP:
            v[_OFF_PROTO + 2] += bytes_
            v[_OFF_PROTO + 3] += packets
        elif flow.protocol == Protocol.ICMP:
            v[_OFF_PROTO + 4] += bytes_
            v[_OFF_PROTO + 5] += packets

        sp = _PORT_INDEX.get(flow.src_port)
        if sp is not None:
            v[_OFF_SPORT + 2 * sp] += bytes_
            v[_OFF_SPORT + 2 * sp + 1] += packets
        dp = _PORT_INDEX.get(flow.dst_port)
        if dp is not None:
            v[_OFF_DPORT + 2 * dp] += bytes_
            v[_OFF_DPORT + 2 * dp + 1] += packets

        if flow.protocol == Protocol.TCP and flow.tcp_flags:
            for i, bit in enumerate(_TCP_FLAG_BITS):
                if flow.tcp_flags & bit:
                    v[_OFF_FLAGS + 2 * i] += bytes_
                    v[_OFF_FLAGS + 2 * i + 1] += packets

        cc = _COUNTRY_INDEX.get(flow.src_country)
        if cc is not None:
            v[_OFF_COUNTRY + 2 * cc] += bytes_
            v[_OFF_COUNTRY + 2 * cc + 1] += packets

    def state_dict(self) -> dict:
        """Canonical plain-type snapshot of this cell (sources sorted so
        two cells with equal content serialize byte-identically)."""
        return {
            "flow_count": self.flow_count,
            "total_bytes": self.total_bytes,
            "total_packets": self.total_packets,
            "max_bytes": self.max_bytes,
            "max_packets": self.max_packets,
            "vector": self.vector.copy(),
            "sources": sorted(self._sources),
        }

    @classmethod
    def from_state(cls, state: dict) -> "VolumetricAccumulator":
        cell = cls()
        cell.flow_count = int(state["flow_count"])
        cell.total_bytes = int(state["total_bytes"])
        cell.total_packets = int(state["total_packets"])
        cell.max_bytes = int(state["max_bytes"])
        cell.max_packets = int(state["max_packets"])
        cell.vector = np.asarray(state["vector"], dtype=np.float64).copy()
        cell._sources = set(int(a) for a in state["sources"])
        return cell

    def merge(self, other: "VolumetricAccumulator") -> None:
        """Fold another cell into this one (same minute, different class).

        Used to recompute the A2 (previous-attacker) split from per-botnet
        provenance cells when the alert timeline that defines "previous
        attackers" changes (e.g. Xatu's autoregressive test mode, §5.3).
        """
        self.flow_count += other.flow_count
        self.total_bytes += other.total_bytes
        self.total_packets += other.total_packets
        self.max_bytes = max(self.max_bytes, other.max_bytes)
        self.max_packets = max(self.max_packets, other.max_packets)
        self.vector += other.vector
        self._sources |= other._sources

    def finalize(self) -> np.ndarray:
        """Return the completed 63-feature vector for this cell."""
        v = self.vector.copy()
        v[_OFF_UNIQUE] = len(self._sources)
        if self.flow_count:
            v[_OFF_MEANMAX + 0] = self.total_bytes / self.flow_count
            v[_OFF_MEANMAX + 1] = self.total_packets / self.flow_count
        v[_OFF_MEANMAX + 2] = self.max_bytes
        v[_OFF_MEANMAX + 3] = self.max_packets
        return v

    @property
    def unique_sources(self) -> int:
        return len(self._sources)


class TrafficMatrix:
    """Sparse (customer, source-class, minute) → volumetric-cell store.

    ``add_flow`` tags each flow with its auxiliary source classes (computed
    by the caller — see :class:`repro.signals.SourceClassifier`) and updates
    the "all" cell plus one cell per class.  ``feature_block`` produces the
    dense per-minute matrix a model consumes.
    """

    def __init__(self) -> None:
        self._cells: dict[tuple[int, str, int], VolumetricAccumulator] = {}
        self._customers: set[int] = set()
        self.max_minute = -1
        # (customer, class) -> set of minutes with a cell; lets the dense
        # materializers touch only non-empty rows (traffic matrices are
        # sparse in the auxiliary classes).
        self._minutes_index: dict[tuple[int, str], set[int]] = {}

    def add_flow(
        self,
        customer: int,
        flow: FlowRecord,
        source_classes: Sequence[str] = (),
    ) -> None:
        """Fold a flow destined to ``customer`` into the matrix."""
        self._customers.add(customer)
        minute = flow.timestamp
        if minute > self.max_minute:
            self.max_minute = minute
        for cls in (SOURCE_CLASS_ALL, *source_classes):
            key = (customer, cls, minute)
            cell = self._cells.get(key)
            if cell is None:
                cell = VolumetricAccumulator()
                self._cells[key] = cell
                self._minutes_index.setdefault((customer, cls), set()).add(minute)
            cell.add(flow)

    def customers(self) -> list[int]:
        """All customers that received any traffic, sorted."""
        return sorted(self._customers)

    def cell(
        self, customer: int, minute: int, source_class: str = SOURCE_CLASS_ALL
    ) -> VolumetricAccumulator | None:
        return self._cells.get((customer, source_class, minute))

    def feature_block(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> np.ndarray:
        """Dense ``(end-start, 63)`` feature block for one source class.

        Minutes with no traffic yield zero rows — absence of traffic is
        itself signal.
        """
        if end_minute < start_minute:
            raise ValueError("end_minute must be >= start_minute")
        steps = end_minute - start_minute
        block = np.zeros((steps, N_VOLUMETRIC))
        minutes = self._minutes_index.get((customer, source_class))
        if not minutes:
            return block
        if len(minutes) < steps:
            hits = (m for m in minutes if start_minute <= m < end_minute)
        else:
            hits = (
                m for m in range(start_minute, end_minute)
                if m in minutes
            )
        for minute in hits:
            block[minute - start_minute] = self._cells[
                (customer, source_class, minute)
            ].finalize()
        return block

    def evict_before(self, minute: int) -> int:
        """Drop all cells older than ``minute``; return the eviction count.

        Keeps the streaming detectors' memory bounded: feature windows only
        ever read the trailing model lookback, so anything older is dead
        state.  ``max_minute`` and the customer roster are preserved.
        """
        stale = [key for key in self._cells if key[2] < minute]
        for key in stale:
            del self._cells[key]
            customer, cls, m = key
            minutes = self._minutes_index.get((customer, cls))
            if minutes is not None:
                minutes.discard(m)
                if not minutes:
                    del self._minutes_index[(customer, cls)]
        return len(stale)

    def state_dict(self) -> dict:
        """Canonical snapshot: cells sorted by (customer, class, minute)."""
        return {
            "max_minute": self.max_minute,
            "customers": sorted(self._customers),
            "cells": [
                [customer, cls, minute, self._cells[(customer, cls, minute)].state_dict()]
                for customer, cls, minute in sorted(self._cells)
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._cells = {}
        self._minutes_index = {}
        self._customers = set(int(c) for c in state["customers"])
        self.max_minute = int(state["max_minute"])
        for customer, cls, minute, cell_state in state["cells"]:
            # Interned: cell keys must share identity with the module's
            # SOURCE_CLASS_* constants, so a restored matrix pickles
            # byte-identically to one that never round-tripped (the
            # checkpoint byte-identity guarantee).
            key = (int(customer), sys.intern(str(cls)), int(minute))
            self._cells[key] = VolumetricAccumulator.from_state(cell_state)
            self._minutes_index.setdefault((key[0], key[1]), set()).add(key[2])

    def total_bytes(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> float:
        """Sum of sampling-compensated bytes over a minute range."""
        total = 0.0
        for t in range(start_minute, end_minute):
            cell = self._cells.get((customer, source_class, t))
            if cell is not None:
                total += cell.total_bytes
        return total

    def bytes_series(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> np.ndarray:
        """Per-minute byte series (sampling-compensated)."""
        series = np.zeros(end_minute - start_minute)
        for t in range(start_minute, end_minute):
            cell = self._cells.get((customer, source_class, t))
            if cell is not None:
                series[t - start_minute] = cell.total_bytes
        return series

    def __len__(self) -> int:
        return len(self._cells)
