"""Per-minute, per-customer traffic aggregation.

The feature extractor of Table 1 needs, for every customer and every minute,
the 63 volumetric counters (unique sources, byte/packet totals per protocol,
popular ports, TCP flags, source countries) — and the same 63 counters
restricted to each auxiliary source class (blocklisted / previous attackers /
spoofed, the A1–A3 splits).  :class:`TrafficMatrix` maintains exactly that:
a dict of :class:`VolumetricAccumulator` keyed by (customer, source-class,
minute), and materializes dense ``(minutes, 63)`` numpy blocks on demand.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .records import FlowBatch, FlowRecord, Protocol, TcpFlags

__all__ = [
    "POPULAR_PORTS",
    "POPULAR_COUNTRIES",
    "SOURCE_CLASS_ALL",
    "SOURCE_CLASS_BLOCKLIST",
    "SOURCE_CLASS_PREV_ATTACKER",
    "SOURCE_CLASS_SPOOFED",
    "VOLUMETRIC_FEATURE_NAMES",
    "N_VOLUMETRIC",
    "VolumetricAccumulator",
    "TrafficMatrix",
]

# Appendix D: ports and countries that dominate the ISP's traffic.
POPULAR_PORTS: tuple[int, ...] = (0, 53, 80, 123, 443)
POPULAR_COUNTRIES: tuple[str, ...] = (
    "US", "IN", "SA", "CN", "GB", "NL", "FR", "DE", "BR", "CA",
)
_TCP_FLAG_BITS: tuple[TcpFlags, ...] = (
    TcpFlags.FIN, TcpFlags.SYN, TcpFlags.RST,
    TcpFlags.PSH, TcpFlags.ACK, TcpFlags.URG,
)

SOURCE_CLASS_ALL = "all"
SOURCE_CLASS_BLOCKLIST = "blocklist"
SOURCE_CLASS_PREV_ATTACKER = "prev_attacker"
SOURCE_CLASS_SPOOFED = "spoofed"


def _volumetric_feature_names() -> list[str]:
    names = ["unique_sources"]
    names += ["mean_bytes", "mean_packets", "max_bytes", "max_packets"]
    for proto in ("udp", "tcp", "icmp"):
        names += [f"{proto}_bytes", f"{proto}_packets"]
    for port in POPULAR_PORTS:
        names += [f"sport{port}_bytes", f"sport{port}_packets"]
    for port in POPULAR_PORTS:
        names += [f"dport{port}_bytes", f"dport{port}_packets"]
    for flag in _TCP_FLAG_BITS:
        names += [f"flag_{flag.name.lower()}_bytes", f"flag_{flag.name.lower()}_packets"]
    for country in POPULAR_COUNTRIES:
        names += [f"cc_{country}_bytes", f"cc_{country}_packets"]
    return names


VOLUMETRIC_FEATURE_NAMES: tuple[str, ...] = tuple(_volumetric_feature_names())
N_VOLUMETRIC = len(VOLUMETRIC_FEATURE_NAMES)
assert N_VOLUMETRIC == 63, "Table 1 specifies 63 volumetric features"

_PORT_INDEX = {p: i for i, p in enumerate(POPULAR_PORTS)}
_COUNTRY_INDEX = {c: i for i, c in enumerate(POPULAR_COUNTRIES)}

# Column offsets inside the 63-wide vector.
_OFF_UNIQUE = 0
_OFF_MEANMAX = 1          # mean_bytes, mean_packets, max_bytes, max_packets
_OFF_PROTO = 5            # 3 protocols x 2
_OFF_SPORT = 11           # 5 ports x 2
_OFF_DPORT = 21           # 5 ports x 2
_OFF_FLAGS = 31           # 6 flags x 2
_OFF_COUNTRY = 43         # 10 countries x 2


class VolumetricAccumulator:
    """Accumulates flows of one (customer, source-class, minute) cell."""

    __slots__ = (
        "flow_count", "total_bytes", "total_packets", "max_bytes",
        "max_packets", "vector", "_sources",
    )

    def __init__(self) -> None:
        self.flow_count = 0
        self.total_bytes = 0
        self.total_packets = 0
        self.max_bytes = 0
        self.max_packets = 0
        self.vector = np.zeros(N_VOLUMETRIC)
        self._sources: set[int] = set()

    def add(self, flow: FlowRecord) -> None:
        """Fold one sampled flow into the counters (sampling-compensated)."""
        bytes_ = flow.estimated_bytes
        packets = flow.estimated_packets
        self.flow_count += 1
        self.total_bytes += bytes_
        self.total_packets += packets
        self.max_bytes = max(self.max_bytes, bytes_)
        self.max_packets = max(self.max_packets, packets)
        self._sources.add(flow.src_addr)

        v = self.vector
        if flow.protocol == Protocol.UDP:
            v[_OFF_PROTO + 0] += bytes_
            v[_OFF_PROTO + 1] += packets
        elif flow.protocol == Protocol.TCP:
            v[_OFF_PROTO + 2] += bytes_
            v[_OFF_PROTO + 3] += packets
        elif flow.protocol == Protocol.ICMP:
            v[_OFF_PROTO + 4] += bytes_
            v[_OFF_PROTO + 5] += packets

        sp = _PORT_INDEX.get(flow.src_port)
        if sp is not None:
            v[_OFF_SPORT + 2 * sp] += bytes_
            v[_OFF_SPORT + 2 * sp + 1] += packets
        dp = _PORT_INDEX.get(flow.dst_port)
        if dp is not None:
            v[_OFF_DPORT + 2 * dp] += bytes_
            v[_OFF_DPORT + 2 * dp + 1] += packets

        if flow.protocol == Protocol.TCP and flow.tcp_flags:
            for i, bit in enumerate(_TCP_FLAG_BITS):
                if flow.tcp_flags & bit:
                    v[_OFF_FLAGS + 2 * i] += bytes_
                    v[_OFF_FLAGS + 2 * i + 1] += packets

        cc = _COUNTRY_INDEX.get(flow.src_country)
        if cc is not None:
            v[_OFF_COUNTRY + 2 * cc] += bytes_
            v[_OFF_COUNTRY + 2 * cc + 1] += packets

    def add_aggregate(
        self,
        count: int,
        total_bytes: int,
        total_packets: int,
        max_bytes: int,
        max_packets: int,
        vector_row: np.ndarray,
        sources: Iterable[int],
    ) -> None:
        """Fold one pre-aggregated (vectorized) contribution into the cell.

        Equivalent to ``count`` :meth:`add` calls whose sampling-compensated
        counters sum to the given totals: every counter is an integer sum,
        max, or set union, so as long as the partial and total sums are
        exactly representable in float64 (< 2**53 — far beyond any per-cell
        minute of ISP traffic) the result is bit-identical to the scalar
        path.  ``tests/test_columnar.py`` proves it differentially.
        """
        self.flow_count += count
        self.total_bytes += total_bytes
        self.total_packets += total_packets
        if max_bytes > self.max_bytes:
            self.max_bytes = max_bytes
        if max_packets > self.max_packets:
            self.max_packets = max_packets
        self.vector += vector_row
        self._sources.update(sources)

    def state_dict(self) -> dict:
        """Canonical plain-type snapshot of this cell (sources sorted so
        two cells with equal content serialize byte-identically)."""
        return {
            "flow_count": self.flow_count,
            "total_bytes": self.total_bytes,
            "total_packets": self.total_packets,
            "max_bytes": self.max_bytes,
            "max_packets": self.max_packets,
            "vector": self.vector.copy(),
            "sources": sorted(self._sources),
        }

    @classmethod
    def from_state(cls, state: dict) -> "VolumetricAccumulator":
        cell = cls()
        cell.flow_count = int(state["flow_count"])
        cell.total_bytes = int(state["total_bytes"])
        cell.total_packets = int(state["total_packets"])
        cell.max_bytes = int(state["max_bytes"])
        cell.max_packets = int(state["max_packets"])
        cell.vector = np.asarray(state["vector"], dtype=np.float64).copy()
        cell._sources = set(int(a) for a in state["sources"])
        return cell

    def merge(self, other: "VolumetricAccumulator") -> None:
        """Fold another cell into this one (same minute, different class).

        Used to recompute the A2 (previous-attacker) split from per-botnet
        provenance cells when the alert timeline that defines "previous
        attackers" changes (e.g. Xatu's autoregressive test mode, §5.3).
        """
        self.flow_count += other.flow_count
        self.total_bytes += other.total_bytes
        self.total_packets += other.total_packets
        self.max_bytes = max(self.max_bytes, other.max_bytes)
        self.max_packets = max(self.max_packets, other.max_packets)
        self.vector += other.vector
        self._sources |= other._sources

    def finalize(self) -> np.ndarray:
        """Return the completed 63-feature vector for this cell."""
        v = self.vector.copy()
        v[_OFF_UNIQUE] = len(self._sources)
        if self.flow_count:
            v[_OFF_MEANMAX + 0] = self.total_bytes / self.flow_count
            v[_OFF_MEANMAX + 1] = self.total_packets / self.flow_count
        v[_OFF_MEANMAX + 2] = self.max_bytes
        v[_OFF_MEANMAX + 3] = self.max_packets
        return v

    @property
    def unique_sources(self) -> int:
        return len(self._sources)


class TrafficMatrix:
    """Sparse (customer, source-class, minute) → volumetric-cell store.

    ``add_flow`` tags each flow with its auxiliary source classes (computed
    by the caller — see :class:`repro.signals.SourceClassifier`) and updates
    the "all" cell plus one cell per class.  ``feature_block`` produces the
    dense per-minute matrix a model consumes.
    """

    def __init__(self) -> None:
        self._cells: dict[tuple[int, str, int], VolumetricAccumulator] = {}
        self._customers: set[int] = set()
        self.max_minute = -1
        # (customer, class) -> set of minutes with a cell; lets the dense
        # materializers touch only non-empty rows (traffic matrices are
        # sparse in the auxiliary classes).
        self._minutes_index: dict[tuple[int, str], set[int]] = {}

    def add_flow(
        self,
        customer: int,
        flow: FlowRecord,
        source_classes: Sequence[str] = (),
    ) -> None:
        """Fold a flow destined to ``customer`` into the matrix."""
        self._customers.add(customer)
        minute = flow.timestamp
        if minute > self.max_minute:
            self.max_minute = minute
        for cls in (SOURCE_CLASS_ALL, *source_classes):
            key = (customer, cls, minute)
            cell = self._cells.get(key)
            if cell is None:
                cell = VolumetricAccumulator()
                self._cells[key] = cell
                self._minutes_index.setdefault((customer, cls), set()).add(minute)
            cell.add(flow)

    def add_batch(
        self,
        customer_ids: np.ndarray,
        flows: FlowBatch,
        class_masks: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Vectorized :meth:`add_flow` over a whole columnar batch.

        ``customer_ids`` carries the destination customer of each record
        (the caller routed already); ``class_masks`` maps each auxiliary
        source class to a boolean membership mask over the records.  The
        fold is a sorted group-by over (customer, minute) keys with
        ``np.add.reduceat`` / ``np.add.at`` scatter-adds in int64, folded
        into the same :class:`VolumetricAccumulator` cells the scalar loop
        feeds — sums, maxes, and unique-source sets are exact integer
        arithmetic, so the resulting matrix is bit-identical to calling
        ``add_flow(customer, flow, classes)`` per record in arrival order
        (proven by the differential property suite).
        """
        arr = flows.array
        n = len(arr)
        if n == 0:
            return
        customer_ids = np.asarray(customer_ids, dtype=np.int64)
        if customer_ids.shape != (n,):
            raise ValueError("customer_ids must align with the flow batch")
        minutes = arr["timestamp"].astype(np.int64)
        self._customers.update(map(int, np.unique(customer_ids)))
        top = int(minutes.max())
        if top > self.max_minute:
            self.max_minute = top
        rate = arr["sampling_rate"].astype(np.int64)
        est_bytes = arr["bytes"].astype(np.int64) * rate
        est_packets = arr["packets"].astype(np.int64) * rate
        self._fold_class(
            SOURCE_CLASS_ALL, customer_ids, minutes, arr, est_bytes, est_packets
        )
        for cls, mask in (class_masks or {}).items():
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (n,):
                raise ValueError(f"class mask {cls!r} must align with the flow batch")
            if not mask.any():
                continue
            self._fold_class(
                sys.intern(str(cls)),
                customer_ids[mask],
                minutes[mask],
                arr[mask],
                est_bytes[mask],
                est_packets[mask],
            )

    @staticmethod
    def _scatter(
        vec: np.ndarray,
        gid: np.ndarray,
        mask: np.ndarray,
        col: int,
        est_bytes: np.ndarray,
        est_packets: np.ndarray,
    ) -> None:
        """Scatter-add (bytes, packets) of masked records into cell rows."""
        if not mask.any():
            return
        g = gid[mask]
        np.add.at(vec[:, col], g, est_bytes[mask])
        np.add.at(vec[:, col + 1], g, est_packets[mask])

    def _fold_class(
        self,
        cls: str,
        cust: np.ndarray,
        minutes: np.ndarray,
        arr: np.ndarray,
        est_bytes: np.ndarray,
        est_packets: np.ndarray,
    ) -> None:
        """Group one class's records by (customer, minute) and fold cells."""
        n = len(arr)
        order = np.lexsort((minutes, cust))
        sorted_cust = cust[order]
        sorted_min = minutes[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_cust[1:] != sorted_cust[:-1]) | (
            sorted_min[1:] != sorted_min[:-1]
        )
        starts = np.flatnonzero(boundary)
        n_cells = len(starts)
        gid_sorted = np.cumsum(boundary) - 1
        gid = np.empty(n, dtype=np.int64)
        gid[order] = gid_sorted
        cell_cust = sorted_cust[starts].tolist()
        cell_min = sorted_min[starts].tolist()

        eb_sorted = est_bytes[order]
        ep_sorted = est_packets[order]
        tot_bytes = np.add.reduceat(eb_sorted, starts)
        tot_packets = np.add.reduceat(ep_sorted, starts)
        max_bytes = np.maximum.reduceat(eb_sorted, starts)
        max_packets = np.maximum.reduceat(ep_sorted, starts)
        counts = np.diff(np.append(starts, n))

        # Per-cell 63-wide contribution rows, int64 (exact).
        vec = np.zeros((n_cells, N_VOLUMETRIC), dtype=np.int64)
        proto = arr["protocol"]
        for proto_val, off in (
            (int(Protocol.UDP), _OFF_PROTO),
            (int(Protocol.TCP), _OFF_PROTO + 2),
            (int(Protocol.ICMP), _OFF_PROTO + 4),
        ):
            self._scatter(vec, gid, proto == proto_val, off, est_bytes, est_packets)
        sport = arr["src_port"]
        dport = arr["dst_port"]
        for port, i in _PORT_INDEX.items():
            self._scatter(vec, gid, sport == port, _OFF_SPORT + 2 * i, est_bytes, est_packets)
            self._scatter(vec, gid, dport == port, _OFF_DPORT + 2 * i, est_bytes, est_packets)
        flags = arr["tcp_flags"]
        tcp = proto == int(Protocol.TCP)
        for i, bit in enumerate(_TCP_FLAG_BITS):
            self._scatter(
                vec, gid, tcp & ((flags & int(bit)) != 0), _OFF_FLAGS + 2 * i,
                est_bytes, est_packets,
            )
        country = arr["src_country"]
        for raw in np.unique(country).tolist():
            # Same normalization as the record-shim decode: strip padding,
            # empty falls back to the default country.
            idx = _COUNTRY_INDEX.get(raw.decode("ascii").strip() or "US")
            if idx is not None:
                self._scatter(
                    vec, gid, country == raw, _OFF_COUNTRY + 2 * idx,
                    est_bytes, est_packets,
                )

        # Per-cell unique sources: dedup (cell, src) pairs, then slice per cell.
        src = arr["src_addr"].astype(np.int64)
        pair_order = np.lexsort((src, gid))
        pair_gid = gid[pair_order]
        pair_src = src[pair_order]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        keep[1:] = (pair_gid[1:] != pair_gid[:-1]) | (pair_src[1:] != pair_src[:-1])
        pair_gid = pair_gid[keep]
        pair_src = pair_src[keep].tolist()
        src_bounds = np.searchsorted(pair_gid, np.arange(n_cells + 1))

        cells = self._cells
        for k in range(n_cells):
            key = (cell_cust[k], cls, cell_min[k])
            cell = cells.get(key)
            if cell is None:
                cell = VolumetricAccumulator()
                cells[key] = cell
                self._minutes_index.setdefault((key[0], cls), set()).add(key[2])
            cell.add_aggregate(
                count=int(counts[k]),
                total_bytes=int(tot_bytes[k]),
                total_packets=int(tot_packets[k]),
                max_bytes=int(max_bytes[k]),
                max_packets=int(max_packets[k]),
                vector_row=vec[k],
                sources=pair_src[src_bounds[k] : src_bounds[k + 1]],
            )

    def customers(self) -> list[int]:
        """All customers that received any traffic, sorted."""
        return sorted(self._customers)

    def cell(
        self, customer: int, minute: int, source_class: str = SOURCE_CLASS_ALL
    ) -> VolumetricAccumulator | None:
        return self._cells.get((customer, source_class, minute))

    def feature_block(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> np.ndarray:
        """Dense ``(end-start, 63)`` feature block for one source class.

        Minutes with no traffic yield zero rows — absence of traffic is
        itself signal.
        """
        if end_minute < start_minute:
            raise ValueError("end_minute must be >= start_minute")
        steps = end_minute - start_minute
        block = np.zeros((steps, N_VOLUMETRIC))
        minutes = self._minutes_index.get((customer, source_class))
        if not minutes:
            return block
        if len(minutes) < steps:
            hits = (m for m in minutes if start_minute <= m < end_minute)
        else:
            hits = (
                m for m in range(start_minute, end_minute)
                if m in minutes
            )
        for minute in hits:
            block[minute - start_minute] = self._cells[
                (customer, source_class, minute)
            ].finalize()
        return block

    def evict_before(self, minute: int) -> int:
        """Drop all cells older than ``minute``; return the eviction count.

        Keeps the streaming detectors' memory bounded: feature windows only
        ever read the trailing model lookback, so anything older is dead
        state.  ``max_minute`` and the customer roster are preserved.
        """
        stale = [key for key in self._cells if key[2] < minute]
        for key in stale:
            del self._cells[key]
            customer, cls, m = key
            minutes = self._minutes_index.get((customer, cls))
            if minutes is not None:
                minutes.discard(m)
                if not minutes:
                    del self._minutes_index[(customer, cls)]
        return len(stale)

    def state_dict(self) -> dict:
        """Canonical snapshot: cells sorted by (customer, class, minute)."""
        return {
            "max_minute": self.max_minute,
            "customers": sorted(self._customers),
            "cells": [
                [customer, cls, minute, self._cells[(customer, cls, minute)].state_dict()]
                for customer, cls, minute in sorted(self._cells)
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._cells = {}
        self._minutes_index = {}
        self._customers = set(int(c) for c in state["customers"])
        self.max_minute = int(state["max_minute"])
        for customer, cls, minute, cell_state in state["cells"]:
            # Interned: cell keys must share identity with the module's
            # SOURCE_CLASS_* constants, so a restored matrix pickles
            # byte-identically to one that never round-tripped (the
            # checkpoint byte-identity guarantee).
            key = (int(customer), sys.intern(str(cls)), int(minute))
            self._cells[key] = VolumetricAccumulator.from_state(cell_state)
            self._minutes_index.setdefault((key[0], key[1]), set()).add(key[2])

    def total_bytes(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> float:
        """Sum of sampling-compensated bytes over a minute range."""
        total = 0.0
        for t in range(start_minute, end_minute):
            cell = self._cells.get((customer, source_class, t))
            if cell is not None:
                total += cell.total_bytes
        return total

    def bytes_series(
        self,
        customer: int,
        start_minute: int,
        end_minute: int,
        source_class: str = SOURCE_CLASS_ALL,
    ) -> np.ndarray:
        """Per-minute byte series (sampling-compensated)."""
        series = np.zeros(end_minute - start_minute)
        for t in range(start_minute, end_minute):
            cell = self._cells.get((customer, source_class, t))
            if cell is not None:
                series[t - start_minute] = cell.total_bytes
        return series

    def __len__(self) -> int:
        return len(self._cells)
