"""A toy inter-domain routing substrate for spoof classification.

The paper's A3 signal (§5.1) classifies a source address as spoofed when it
is (a) a bogon (private/reserved space), (b) unrouted — not covered by any
prefix in BGP route collectors, or (c) invalid-origin — announced traffic
arriving from an AS other than the prefix's origin (or its customer cone).

The reproduction builds the same three checks against a
:class:`RouteTable` populated by the synthetic world.  The checks are
deliberately *imperfect*, exactly as the paper stresses: spoofed traffic
using routed, valid-origin addresses is invisible to them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from .addressing import cidr_to_range

__all__ = ["BOGON_CIDRS", "is_bogon", "RouteEntry", "RouteTable", "SpoofVerdict"]

# RFC1918 private, RFC5737 documentation, RFC6598 shared address space, plus
# loopback/link-local/multicast/reserved — the "obviously spoofed" set.
BOGON_CIDRS: tuple[str, ...] = (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.2.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "198.51.100.0/24",
    "203.0.113.0/24",
    "224.0.0.0/4",
    "240.0.0.0/4",
)

_BOGON_RANGES: tuple[tuple[int, int], ...] = tuple(
    sorted(cidr_to_range(c) for c in BOGON_CIDRS)
)
_BOGON_STARTS = [lo for lo, _ in _BOGON_RANGES]


def is_bogon(addr: int) -> bool:
    """Whether ``addr`` falls in reserved/private (bogon) space."""
    idx = bisect_right(_BOGON_STARTS, addr) - 1
    if idx < 0:
        return False
    lo, hi = _BOGON_RANGES[idx]
    return lo <= addr <= hi


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One routed prefix: inclusive integer range plus its origin AS."""

    lo: int
    hi: int
    origin_asn: int


class SpoofVerdict:
    """Classification outcomes for a source address."""

    VALID = "valid"
    BOGON = "bogon"
    UNROUTED = "unrouted"
    INVALID_ORIGIN = "invalid_origin"


class RouteTable:
    """Longest-prefix-match-free interval route table.

    The synthetic world allocates disjoint prefixes, so an interval table
    with binary search is sufficient (and fast).  ``customer_cones`` maps an
    AS to the set of ASes whose prefixes may legitimately source traffic
    through it (the "full cone with adjustments for multi-AS organizations"
    of §5.1).
    """

    def __init__(self) -> None:
        self._entries: list[RouteEntry] = []
        self._starts: list[int] = []
        self._sorted = True
        self.customer_cones: dict[int, set[int]] = {}

    def announce(self, cidr_or_range: str | tuple[int, int], origin_asn: int) -> None:
        """Insert a routed prefix with its origin AS."""
        if isinstance(cidr_or_range, str):
            lo, hi = cidr_to_range(cidr_or_range)
        else:
            lo, hi = cidr_or_range
        if lo > hi:
            raise ValueError("prefix range is inverted")
        self._entries.append(RouteEntry(lo, hi, origin_asn))
        self._sorted = False

    def add_cone(self, transit_asn: int, member_asns: set[int]) -> None:
        """Register ``member_asns`` as the customer cone of ``transit_asn``."""
        self.customer_cones.setdefault(transit_asn, set()).update(member_asns)
        self.customer_cones[transit_asn].add(transit_asn)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._entries.sort(key=lambda e: e.lo)
            self._starts = [e.lo for e in self._entries]
            self._sorted = True

    def lookup(self, addr: int) -> RouteEntry | None:
        """Return the routed entry covering ``addr``, if any."""
        self._ensure_sorted()
        idx = bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        entry = self._entries[idx]
        return entry if entry.lo <= addr <= entry.hi else None

    def classify_source(self, addr: int, observed_asn: int | None = None) -> str:
        """Classify a source address per the paper's three spoof categories.

        ``observed_asn`` is the AS from which the traffic entered the ISP
        (known for synthetic traffic); when provided, origin validation is
        applied on top of the bogon and routedness checks.
        """
        if is_bogon(addr):
            return SpoofVerdict.BOGON
        entry = self.lookup(addr)
        if entry is None:
            return SpoofVerdict.UNROUTED
        if observed_asn is not None and observed_asn != entry.origin_asn:
            cone = self.customer_cones.get(observed_asn, set())
            if entry.origin_asn not in cone:
                return SpoofVerdict.INVALID_ORIGIN
        return SpoofVerdict.VALID

    def is_spoofed(self, addr: int, observed_asn: int | None = None) -> bool:
        """Boolean convenience wrapper over :meth:`classify_source`."""
        return self.classify_source(addr, observed_asn) != SpoofVerdict.VALID

    def __len__(self) -> int:
        return len(self._entries)
