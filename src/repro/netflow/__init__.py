"""NetFlow substrate: records, wire codec, sampling, routing, aggregation."""

from .addressing import cidr_to_range, in_cidr, int_to_ip, ip_to_int, subnet24, subnet24_str
from .matrix import (
    N_VOLUMETRIC,
    POPULAR_COUNTRIES,
    POPULAR_PORTS,
    SOURCE_CLASS_ALL,
    SOURCE_CLASS_BLOCKLIST,
    SOURCE_CLASS_PREV_ATTACKER,
    SOURCE_CLASS_SPOOFED,
    VOLUMETRIC_FEATURE_NAMES,
    TrafficMatrix,
    VolumetricAccumulator,
)
from .records import (
    FLOW_DTYPE,
    FLOW_WIRE_SIZE,
    FlowBatch,
    FlowRecord,
    Protocol,
    TcpFlags,
    decode_flow,
    decode_flows,
    decode_flows_batch,
    encode_flow,
    encode_flows,
)
from .datagram import DatagramCodec, DatagramHeader, SequenceTracker
from .routing import BOGON_CIDRS, RouteEntry, RouteTable, SpoofVerdict, is_bogon
from .sampler import FeedHealth, FlowCollector, FlowExporter, PacketSampler

__all__ = [
    "FlowRecord", "FlowBatch", "Protocol", "TcpFlags", "FLOW_DTYPE",
    "encode_flow", "decode_flow", "encode_flows", "decode_flows",
    "decode_flows_batch", "FLOW_WIRE_SIZE",
    "ip_to_int", "int_to_ip", "subnet24", "subnet24_str", "in_cidr", "cidr_to_range",
    "BOGON_CIDRS", "is_bogon", "RouteEntry", "RouteTable", "SpoofVerdict",
    "PacketSampler", "FlowExporter", "FlowCollector", "FeedHealth",
    "TrafficMatrix", "VolumetricAccumulator",
    "POPULAR_PORTS", "POPULAR_COUNTRIES", "VOLUMETRIC_FEATURE_NAMES", "N_VOLUMETRIC",
    "SOURCE_CLASS_ALL", "SOURCE_CLASS_BLOCKLIST", "SOURCE_CLASS_PREV_ATTACKER",
    "SOURCE_CLASS_SPOOFED",
    "DatagramCodec", "DatagramHeader", "SequenceTracker",
]
