"""Packet sampling and flow export/collection.

The paper's data is *sampled* NetFlow (1:1 to 1:10000, §5.1).  The
:class:`PacketSampler` applies binomial packet sampling to a ground-truth
flow, producing the (noisy) sampled record an exporter would emit; the
:class:`FlowCollector` gathers records from multiple exporters, optionally
round-tripping them through the wire codec, and feeds a
:class:`~repro.netflow.matrix.TrafficMatrix`.

Columnar fast path
------------------
The collector retains decoded datagrams as
:class:`~repro.netflow.records.FlowBatch` chunks — one structured-array
view per datagram, never a per-record Python list — and hands them to the
aggregation layer via :meth:`FlowCollector.drain_batch`.  The record-list
API (``ingest``/``drain``/iteration) survives as a conversion shim.
Sampling is vectorized the same way: :meth:`PacketSampler.sample_many`
makes **one** batched ``rng.binomial`` draw for the whole batch, in the
same per-flow order the scalar loop used, so seeded traces stay
deterministic (``tests/test_columnar.py`` pins the outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

from ..obs import obs_enabled
from .datagram import DatagramCodec, SequenceTracker
from .records import (
    FLOW_DTYPE,
    FlowBatch,
    FlowRecord,
    decode_flows_batch,
    encode_flows,
)

__all__ = ["PacketSampler", "FlowExporter", "FlowCollector", "FeedHealth"]


@dataclass(frozen=True, slots=True)
class FeedHealth:
    """Collector-side view of export-feed quality (gap accounting)."""

    datagrams_received: int
    records_received: int
    records_lost: int
    datagrams_reordered: int
    loss_rate: float


class PacketSampler:
    """1:N binomial packet sampling of ground-truth flows.

    Each packet of a flow is kept independently with probability ``1/N``;
    bytes are scaled proportionally to the surviving packets.  Flows whose
    every packet is dropped disappear, exactly the visibility loss that makes
    the paper's auxiliary signals "incomplete".
    """

    def __init__(self, rate: int, rng: np.random.Generator | None = None) -> None:
        if rate < 1:
            raise ValueError("sampling rate is 1:N with N >= 1")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)

    def sample(self, flow: FlowRecord) -> FlowRecord | None:
        """Return the sampled record for ``flow``, or None if unseen."""
        if self.rate == 1:
            return replace(flow, sampling_rate=1)
        kept = int(self._rng.binomial(flow.packets, 1.0 / self.rate))
        if kept == 0:
            return None
        mean_packet = flow.bytes_ / flow.packets if flow.packets else 0.0
        return replace(
            flow,
            packets=kept,
            bytes_=max(1, int(round(kept * mean_packet))),
            sampling_rate=self.rate,
        )

    def _draw_kept(self, packets: np.ndarray) -> np.ndarray:
        """One batched binomial draw for a whole flow batch.

        ``Generator.binomial`` consumes the bitstream per element exactly
        as the equivalent sequence of scalar draws would, so the kept
        counts are identical to a per-flow loop over :meth:`sample` —
        seeded traces stay deterministic across the two paths.
        """
        return self._rng.binomial(packets.astype(np.int64), 1.0 / self.rate)

    @staticmethod
    def _scaled_bytes(kept: np.ndarray, packets: np.ndarray, bytes_: np.ndarray) -> np.ndarray:
        """Vectorized ``max(1, int(round(kept * bytes/packets)))``.

        ``np.rint`` rounds half-to-even like Python's ``round``, and the
        float64 expression is evaluated in the same order as the scalar
        path, so the results match bit for bit.
        """
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_packet = np.where(packets > 0, bytes_ / packets, 0.0)
        return np.maximum(1, np.rint(kept * mean_packet).astype(np.int64))

    def sample_many(self, flows: Iterable[FlowRecord]) -> list[FlowRecord]:
        """Sample a batch, dropping unseen flows (one vectorized draw)."""
        flows = list(flows)
        if self.rate == 1:
            return [replace(flow, sampling_rate=1) for flow in flows]
        if not flows:
            return []
        packets = np.array([flow.packets for flow in flows], dtype=np.int64)
        kept = self._draw_kept(packets)
        bytes_ = np.array([flow.bytes_ for flow in flows], dtype=np.int64)
        scaled = self._scaled_bytes(kept, packets, bytes_)
        return [
            replace(flow, packets=int(k), bytes_=int(b), sampling_rate=self.rate)
            for flow, k, b in zip(flows, kept.tolist(), scaled.tolist())
            if k
        ]

    def sample_batch(self, batch: FlowBatch) -> FlowBatch:
        """Columnar :meth:`sample_many`: batch in, sampled batch out.

        Consumes the RNG identically to :meth:`sample_many` on the same
        flows (one draw per input record, in order), and keeps the same
        records with the same counters.
        """
        if self.rate == 1:
            out = batch.array.copy()
            out["sampling_rate"] = 1
            return FlowBatch(out)
        if not len(batch):
            return FlowBatch.empty()
        packets = batch.array["packets"].astype(np.int64)
        kept = self._draw_kept(packets)
        seen = kept > 0
        out = batch.array[seen].copy()
        out["packets"] = kept[seen]
        out["bytes"] = self._scaled_bytes(
            kept[seen], packets[seen], batch.array["bytes"].astype(np.int64)[seen]
        )
        out["sampling_rate"] = self.rate
        return FlowBatch(out)


@dataclass
class FlowExporter:
    """One exporting router: a sampler plus an export buffer.

    ``flush()`` emits the buffered records as an encoded export datagram,
    mimicking the one-minute exportation cadence of the paper's routers.
    """

    name: str
    sampler: PacketSampler

    def __post_init__(self) -> None:
        self._chunks: list[FlowBatch] = []

    def observe(self, flows: "FlowBatch | Iterable[FlowRecord]") -> int:
        """Sample ground-truth flows into the export buffer; return kept count."""
        if isinstance(flows, FlowBatch):
            sampled = self.sampler.sample_batch(flows)
        else:
            sampled = FlowBatch.from_records(self.sampler.sample_many(flows))
        if len(sampled):
            self._chunks.append(sampled)
        return len(sampled)

    def flush(self) -> bytes:
        """Encode and clear the export buffer."""
        datagram = encode_flows(FlowBatch.concat(self._chunks))
        self._chunks = []
        return datagram

    @property
    def pending(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)


class FlowCollector:
    """Receives export datagrams and yields decoded records.

    Retains flows as columnar :class:`FlowBatch` chunks (one per ingest
    call) and keeps simple counters so tests can assert on lossless
    collection.  Both entry points — headerless batches (:meth:`ingest`)
    and v5-enveloped datagrams (:meth:`ingest_datagram`) — feed the
    ``netflow.datagrams`` / ``netflow.records`` obs counters; only the
    headered path additionally runs sequence-gap accounting.
    """

    def __init__(self) -> None:
        self.records_received = 0
        self.datagrams_received = 0
        self._chunks: list[FlowBatch] = []
        self._tracker = SequenceTracker()

    # -- ingest ----------------------------------------------------------
    def ingest_batch(self, datagram: bytes) -> FlowBatch:
        """Decode one headerless export datagram as a columnar view."""
        batch = decode_flows_batch(datagram)
        self.datagrams_received += 1
        self.records_received += len(batch)
        self._chunks.append(batch)
        if obs_enabled():
            self._tracker._obs_datagrams.inc()
            self._tracker._obs_records.inc(len(batch))
        return batch

    def ingest(self, datagram: bytes) -> list[FlowRecord]:
        """Decode one export datagram, retaining and returning its records."""
        return self.ingest_batch(datagram).to_records()

    def ingest_datagram_batch(self, blob: bytes) -> FlowBatch:
        """Decode one *headered* export datagram (v5-style envelope).

        Runs the flow-sequence gap accounting through the collector's
        :class:`~repro.netflow.datagram.SequenceTracker`, so datagram loss
        and reordering show up in :meth:`feed_health` (and, when telemetry
        is enabled, in the ``netflow.*`` obs counters).
        """
        header, batch = DatagramCodec.decode_batch(blob)
        self._tracker.observe(header)
        self.datagrams_received += 1
        self.records_received += len(batch)
        self._chunks.append(batch)
        return batch

    def ingest_datagram(self, blob: bytes) -> list[FlowRecord]:
        """Record-list shim over :meth:`ingest_datagram_batch`."""
        return self.ingest_datagram_batch(blob).to_records()

    def add_flows(self, flows: "FlowBatch | Iterable[FlowRecord]") -> int:
        """Retain already-decoded flows (bypasses the wire codec)."""
        batch = flows if isinstance(flows, FlowBatch) else FlowBatch.from_records(flows)
        if len(batch):
            self._chunks.append(batch)
        self.records_received += len(batch)
        return len(batch)

    # -- health ----------------------------------------------------------
    def feed_health(self) -> FeedHealth:
        """Gap/reorder accounting over every headered datagram ingested."""
        tracker = self._tracker
        return FeedHealth(
            datagrams_received=self.datagrams_received,
            records_received=tracker.records_received,
            records_lost=tracker.records_lost,
            datagrams_reordered=tracker.out_of_order,
            loss_rate=tracker.loss_rate,
        )

    # -- drain -----------------------------------------------------------
    def drain_batch(self) -> FlowBatch:
        """Return and clear all retained flows as one columnar batch."""
        chunks, self._chunks = self._chunks, []
        return FlowBatch.concat(chunks)

    def drain(self) -> list[FlowRecord]:
        """Return and clear all retained records (record-list shim)."""
        return self.drain_batch().to_records()

    # -- durability --------------------------------------------------------
    def state_dict(self) -> dict:
        """Canonical snapshot: counters, sequence-tracker expectations, and
        any undrained records (wire-encoded, so the snapshot is plain
        bytes/ints only)."""
        tracker = self._tracker
        return {
            "records_received": self.records_received,
            "datagrams_received": self.datagrams_received,
            "pending": encode_flows(FlowBatch.concat(self._chunks)),
            "tracker": {
                "expected": sorted(
                    (int(engine), int(seq))
                    for engine, seq in tracker._expected.items()
                ),
                "records_received": tracker.records_received,
                "records_lost": tracker.records_lost,
                "out_of_order": tracker.out_of_order,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.records_received = int(state["records_received"])
        self.datagrams_received = int(state["datagrams_received"])
        pending = decode_flows_batch(state["pending"])
        self._chunks = [pending] if len(pending) else []
        tracker_state = state["tracker"]
        tracker = SequenceTracker()
        tracker._expected = {
            int(engine): int(seq) for engine, seq in tracker_state["expected"]
        }
        tracker.records_received = int(tracker_state["records_received"])
        tracker.records_lost = int(tracker_state["records_lost"])
        tracker.out_of_order = int(tracker_state["out_of_order"])
        self._tracker = tracker

    def __iter__(self) -> Iterator[FlowRecord]:
        for chunk in self._chunks:
            yield from chunk.to_records()

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)
