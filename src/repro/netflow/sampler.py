"""Packet sampling and flow export/collection.

The paper's data is *sampled* NetFlow (1:1 to 1:10000, §5.1).  The
:class:`PacketSampler` applies binomial packet sampling to a ground-truth
flow, producing the (noisy) sampled record an exporter would emit; the
:class:`FlowCollector` gathers records from multiple exporters, optionally
round-tripping them through the wire codec, and feeds a
:class:`~repro.netflow.matrix.TrafficMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

from .datagram import DatagramCodec, SequenceTracker
from .records import FlowRecord, decode_flows, encode_flows

__all__ = ["PacketSampler", "FlowExporter", "FlowCollector", "FeedHealth"]


@dataclass(frozen=True, slots=True)
class FeedHealth:
    """Collector-side view of export-feed quality (gap accounting)."""

    datagrams_received: int
    records_received: int
    records_lost: int
    datagrams_reordered: int
    loss_rate: float


class PacketSampler:
    """1:N binomial packet sampling of ground-truth flows.

    Each packet of a flow is kept independently with probability ``1/N``;
    bytes are scaled proportionally to the surviving packets.  Flows whose
    every packet is dropped disappear, exactly the visibility loss that makes
    the paper's auxiliary signals "incomplete".
    """

    def __init__(self, rate: int, rng: np.random.Generator | None = None) -> None:
        if rate < 1:
            raise ValueError("sampling rate is 1:N with N >= 1")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)

    def sample(self, flow: FlowRecord) -> FlowRecord | None:
        """Return the sampled record for ``flow``, or None if unseen."""
        if self.rate == 1:
            return replace(flow, sampling_rate=1)
        kept = int(self._rng.binomial(flow.packets, 1.0 / self.rate))
        if kept == 0:
            return None
        mean_packet = flow.bytes_ / flow.packets if flow.packets else 0.0
        return replace(
            flow,
            packets=kept,
            bytes_=max(1, int(round(kept * mean_packet))),
            sampling_rate=self.rate,
        )

    def sample_many(self, flows: Iterable[FlowRecord]) -> list[FlowRecord]:
        """Sample a batch, dropping unseen flows."""
        out = []
        for flow in flows:
            sampled = self.sample(flow)
            if sampled is not None:
                out.append(sampled)
        return out


@dataclass
class FlowExporter:
    """One exporting router: a sampler plus an export buffer.

    ``flush()`` emits the buffered records as an encoded export datagram,
    mimicking the one-minute exportation cadence of the paper's routers.
    """

    name: str
    sampler: PacketSampler

    def __post_init__(self) -> None:
        self._buffer: list[FlowRecord] = []

    def observe(self, flows: Iterable[FlowRecord]) -> int:
        """Sample ground-truth flows into the export buffer; return kept count."""
        sampled = self.sampler.sample_many(flows)
        self._buffer.extend(sampled)
        return len(sampled)

    def flush(self) -> bytes:
        """Encode and clear the export buffer."""
        datagram = encode_flows(self._buffer)
        self._buffer = []
        return datagram

    @property
    def pending(self) -> int:
        return len(self._buffer)


class FlowCollector:
    """Receives export datagrams and yields decoded records.

    Keeps simple counters so tests can assert on lossless collection.
    """

    def __init__(self) -> None:
        self.records_received = 0
        self.datagrams_received = 0
        self._records: list[FlowRecord] = []
        self._tracker = SequenceTracker()

    def ingest(self, datagram: bytes) -> list[FlowRecord]:
        """Decode one export datagram, retaining and returning its records."""
        flows = decode_flows(datagram)
        self.datagrams_received += 1
        self.records_received += len(flows)
        self._records.extend(flows)
        return flows

    def ingest_datagram(self, blob: bytes) -> list[FlowRecord]:
        """Decode one *headered* export datagram (v5-style envelope).

        Runs the flow-sequence gap accounting through the collector's
        :class:`~repro.netflow.datagram.SequenceTracker`, so datagram loss
        and reordering show up in :meth:`feed_health` (and, when telemetry
        is enabled, in the ``netflow.*`` obs counters).
        """
        header, flows = DatagramCodec.decode(blob)
        self._tracker.observe(header)
        self.datagrams_received += 1
        self.records_received += len(flows)
        self._records.extend(flows)
        return flows

    def feed_health(self) -> FeedHealth:
        """Gap/reorder accounting over every headered datagram ingested."""
        tracker = self._tracker
        return FeedHealth(
            datagrams_received=self.datagrams_received,
            records_received=tracker.records_received,
            records_lost=tracker.records_lost,
            datagrams_reordered=tracker.out_of_order,
            loss_rate=tracker.loss_rate,
        )

    def drain(self) -> list[FlowRecord]:
        """Return and clear all retained records."""
        records, self._records = self._records, []
        return records

    def state_dict(self) -> dict:
        """Canonical snapshot: counters, sequence-tracker expectations, and
        any undrained records (wire-encoded, so the snapshot is plain
        bytes/ints only)."""
        tracker = self._tracker
        return {
            "records_received": self.records_received,
            "datagrams_received": self.datagrams_received,
            "pending": encode_flows(self._records),
            "tracker": {
                "expected": sorted(
                    (int(engine), int(seq))
                    for engine, seq in tracker._expected.items()
                ),
                "records_received": tracker.records_received,
                "records_lost": tracker.records_lost,
                "out_of_order": tracker.out_of_order,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.records_received = int(state["records_received"])
        self.datagrams_received = int(state["datagrams_received"])
        self._records = decode_flows(state["pending"])
        tracker_state = state["tracker"]
        tracker = SequenceTracker()
        tracker._expected = {
            int(engine): int(seq) for engine, seq in tracker_state["expected"]
        }
        tracker.records_received = int(tracker_state["records_received"])
        tracker.records_lost = int(tracker_state["records_lost"])
        tracker.out_of_order = int(tracker_state["out_of_order"])
        self._tracker = tracker

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
