"""Random-forest baseline substrate (CART + bagging + grid search)."""

from .ensemble import GridSearchResult, RandomForestClassifier, grid_search
from .tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "grid_search",
    "GridSearchResult",
]
