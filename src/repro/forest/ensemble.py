"""Random forest: bagged CART trees, plus the grid search of §6.

The paper tunes its RF baseline with "an exhaustive grid search to identify
the best hyper-parameters"; :func:`grid_search` reproduces that with a
held-out validation split and AUC-style scoring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "GridSearchResult", "grid_search"]


class RandomForestClassifier:
    """Bagging ensemble of :class:`DecisionTreeClassifier`.

    Bootstrap rows per tree, ``sqrt`` feature subsampling per split by
    default; the predicted probability is the tree average.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("need at least one tree")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y) or len(y) == 0:
            raise ValueError("x and y must be non-empty and aligned")
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        n = len(y)
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        probs = np.zeros(len(np.atleast_2d(x)))
        for tree in self.trees_:
            probs += tree.predict_proba(x)
        return probs / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)


@dataclass(frozen=True, slots=True)
class GridSearchResult:
    """Winner of a hyper-parameter sweep."""

    params: dict
    score: float
    n_evaluated: int


def grid_search(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    param_grid: dict[str, list] | None = None,
    seed: int = 0,
) -> tuple[RandomForestClassifier, GridSearchResult]:
    """Exhaustive sweep over ``param_grid``; returns the refit best forest.

    Scoring is balanced accuracy on the validation split (robust to the
    class imbalance of attack vs non-attack windows).
    """
    if param_grid is None:
        param_grid = {
            "n_estimators": [20, 50],
            "max_depth": [6, 12],
            "min_samples_leaf": [1, 5],
        }
    keys = sorted(param_grid)
    best_params: dict | None = None
    best_score = -np.inf
    evaluated = 0
    for combo in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        forest = RandomForestClassifier(seed=seed, **params)
        forest.fit(x_train, y_train)
        pred = forest.predict(x_val)
        y = np.asarray(y_val).astype(bool)
        tpr = pred[y].mean() if y.any() else 0.0
        tnr = (1 - pred[~y]).mean() if (~y).any() else 0.0
        score = 0.5 * (tpr + tnr)
        evaluated += 1
        if score > best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    winner = RandomForestClassifier(seed=seed, **best_params)
    winner.fit(
        np.concatenate([x_train, x_val]), np.concatenate([y_train, y_val])
    )
    return winner, GridSearchResult(best_params, float(best_score), evaluated)
