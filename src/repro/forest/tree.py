"""CART decision trees for binary classification (gini splitting).

This is the substrate under the paper's random-forest baseline (§6,
"Alternative approaches": an RF binary classifier per attack type trained on
the same feature set from the same three timescales).  scikit-learn is not
available offline, so the trees are implemented here: axis-aligned binary
splits chosen by gini impurity reduction, with the usual depth /
min-samples / max-features controls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass(slots=True)
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    # Leaf payload: probability of the positive class.
    prob: float = 0.5
    is_leaf: bool = False


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART tree.

    Parameters mirror the sklearn names used in DDoS-detection literature:
    ``max_depth``, ``min_samples_split``, ``min_samples_leaf``, and
    ``max_features`` (``None`` = all, "sqrt" = the RF default).
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._nodes: list[_Node] = []
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, impurity-decrease) or None."""
        n = len(y)
        total_pos = float(y.sum())
        parent = _gini(total_pos, n)
        best: tuple[int, float, float] | None = None
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            ys = y[order]
            pos_left = np.cumsum(ys)[:-1]
            n_left = np.arange(1, n)
            # Valid split positions: value changes and both children large
            # enough.
            valid = (xs[1:] != xs[:-1]) & (n_left >= self.min_samples_leaf) & (
                (n - n_left) >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            n_right = n - n_left
            pos_right = total_pos - pos_left
            gini_left = 2.0 * (pos_left / n_left) * (1.0 - pos_left / n_left)
            gini_right = 2.0 * (pos_right / n_right) * (1.0 - pos_right / n_right)
            weighted = (n_left * gini_left + n_right * gini_right) / n
            weighted[~valid] = np.inf
            idx = int(np.argmin(weighted))
            decrease = parent - float(weighted[idx])
            if decrease > 1e-12 and (best is None or decrease > best[2]):
                threshold = 0.5 * (xs[idx] + xs[idx + 1])
                best = (int(f), float(threshold), decrease)
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        node = _Node()
        self._nodes.append(node)
        n = len(y)
        pos = float(y.sum())
        node.prob = pos / n if n else 0.5
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or pos == 0
            or pos == n
        ):
            node.is_leaf = True
            return node_id
        k = self._n_candidate_features(x.shape[1])
        features = (
            np.arange(x.shape[1])
            if k == x.shape[1]
            else self._rng.choice(x.shape[1], size=k, replace=False)
        )
        split = self._best_split(x, y, features)
        if split is None:
            node.is_leaf = True
            return node_id
        feature, threshold, _decrease = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node_id

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, d) aligned with y")
        if len(y) == 0:
            raise ValueError("cannot fit on empty data")
        self._nodes = []
        self.n_features_ = x.shape[1]
        self._build(x, y, depth=0)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(positive) for each row."""
        if self.n_features_ is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._nodes[0]
            while not node.is_leaf:
                node = self._nodes[node.left if row[node.feature] <= node.threshold else node.right]
            out[i] = node.prob
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._nodes:
            return 0

        def walk(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)
