"""A dependency-free property-based testing runner with shrinking.

``hypothesis`` is available in this repo's dev environment, but the core
invariants of the nn/survival stack must stay checkable in *any*
environment the library ships to (the production deployments in the
ROADMAP won't carry a dev extra).  This module is a small self-contained
replacement: composable generators (:class:`Gen`), a greedy shrinker, and
:func:`run_property` / :func:`forall` entry points.

A generator knows two things: how to ``sample`` a random value from a
``numpy.random.Generator``, and how to ``shrinks`` a failing value into
candidate simpler values.  When a property fails, the runner greedily
re-tries shrunk candidates (one argument at a time) until no candidate
still fails, then raises :class:`PropertyError` carrying the minimal
counterexample and the seed needed to replay it.
"""

from __future__ import annotations

import functools
import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Gen",
    "PropertyError",
    "integers",
    "floats",
    "choices",
    "arrays",
    "tensors",
    "hazard_batches",
    "flow_records",
    "run_property",
    "forall",
]


class PropertyError(AssertionError):
    """A property failed; carries the shrunk counterexample for replay."""

    def __init__(
        self,
        message: str,
        *,
        seed: int,
        case_index: int,
        counterexample: tuple,
        shrink_steps: int,
        cause: BaseException,
    ) -> None:
        super().__init__(message)
        self.seed = seed
        self.case_index = case_index
        self.counterexample = counterexample
        self.shrink_steps = shrink_steps
        self.cause = cause


class Gen:
    """A value generator: ``sample(rng)`` plus a shrink strategy."""

    def __init__(
        self,
        sample: Callable[[np.random.Generator], Any],
        shrinks: Callable[[Any], Iterable[Any]] | None = None,
        name: str = "gen",
    ) -> None:
        self._sample = sample
        self._shrinks = shrinks or (lambda value: ())
        self.name = name

    def sample(self, rng: np.random.Generator) -> Any:
        return self._sample(rng)

    def shrinks(self, value: Any) -> Iterator[Any]:
        return iter(self._shrinks(value))

    def map(self, func: Callable[[Any], Any], name: str | None = None) -> "Gen":
        """Post-process samples; shrinking maps the *underlying* candidates."""
        return Gen(
            lambda rng: func(self._sample(rng)),
            lambda value: (),  # mapped values are opaque to the shrinker
            name=name or f"map({self.name})",
        )


# ----------------------------------------------------------------------
# primitive generators
# ----------------------------------------------------------------------
def integers(lo: int, hi: int) -> Gen:
    """Uniform integer in ``[lo, hi]``; shrinks toward ``lo``."""
    if hi < lo:
        raise ValueError("integers() needs lo <= hi")

    def shrink(value: int) -> Iterator[int]:
        value = int(value)
        seen = set()
        for candidate in (lo, (lo + value) // 2, value - 1):
            if lo <= candidate < value and candidate not in seen:
                seen.add(candidate)
                yield candidate

    return Gen(
        lambda rng: int(rng.integers(lo, hi + 1)),
        shrink,
        name=f"integers({lo},{hi})",
    )


def floats(lo: float, hi: float) -> Gen:
    """Uniform float in ``[lo, hi)``; shrinks toward 0 (or ``lo``)."""
    target = 0.0 if lo <= 0.0 <= hi else lo

    def shrink(value: float) -> Iterator[float]:
        value = float(value)
        if value == target:
            return
        yield target
        mid = (value + target) / 2.0
        if mid != value:
            yield mid
        rounded = float(round(value, 2))
        if lo <= rounded <= hi and rounded != value:
            yield rounded

    return Gen(
        lambda rng: float(rng.uniform(lo, hi)), shrink, name=f"floats({lo},{hi})"
    )


def choices(options: Sequence[Any]) -> Gen:
    """One of ``options``; shrinks toward earlier entries."""
    options = list(options)
    if not options:
        raise ValueError("choices() needs at least one option")

    def shrink(value: Any) -> Iterator[Any]:
        idx = options.index(value)
        if idx > 0:
            yield options[0]

    return Gen(
        lambda rng: options[int(rng.integers(len(options)))],
        shrink,
        name=f"choices({len(options)})",
    )


def arrays(
    shape: tuple[int | Gen, ...],
    lo: float = -3.0,
    hi: float = 3.0,
) -> Gen:
    """Float array whose dims may themselves be :func:`integers` gens.

    Shrinks by (a) replacing all elements with zeros, (b) trimming each
    dim to length 1, (c) halving magnitudes — the classic moves that keep
    counterexamples readable.
    """

    def sample(rng: np.random.Generator) -> np.ndarray:
        dims = tuple(
            d.sample(rng) if isinstance(d, Gen) else int(d) for d in shape
        )
        return rng.uniform(lo, hi, size=dims)

    def shrink(value: np.ndarray) -> Iterator[np.ndarray]:
        if value.size and np.any(value != 0) and lo <= 0.0 <= hi:
            yield np.zeros_like(value)
            yield value / 2.0
        for axis in range(value.ndim):
            if value.shape[axis] > 1:
                index = [slice(None)] * value.ndim
                for trimmed in (1, value.shape[axis] // 2, value.shape[axis] - 1):
                    index[axis] = slice(0, trimmed)
                    yield value[tuple(index)].copy()

    return Gen(sample, shrink, name="arrays")


def tensors(
    shape: tuple[int | Gen, ...],
    lo: float = -3.0,
    hi: float = 3.0,
    requires_grad: bool = True,
) -> Gen:
    """An autograd :class:`repro.nn.Tensor` wrapping :func:`arrays`."""
    from ..nn import Tensor

    inner = arrays(shape, lo, hi)

    def shrink(value) -> Iterator:
        for candidate in inner.shrinks(value.data):
            yield Tensor(candidate, requires_grad=requires_grad)

    return Gen(
        lambda rng: Tensor(inner.sample(rng), requires_grad=requires_grad),
        shrink,
        name="tensors",
    )


def hazard_batches(
    max_batch: int = 4, max_steps: int = 12, max_rate: float = 2.0
) -> Gen:
    """Non-negative hazard-rate batches ``(batch, steps)`` for survival props."""
    return arrays((integers(1, max_batch), integers(1, max_steps)), 0.0, max_rate)


def flow_records(
    max_packets: int = 10_000, horizon: int = 240
) -> Gen:
    """Random :class:`repro.netflow.records.FlowRecord` instances.

    Shrinks toward the 1-packet, minute-0 record, which is the simplest
    flow a sampler or codec invariant can fail on.
    """
    from ..netflow.records import FlowRecord, Protocol, TcpFlags

    protocols = [Protocol.UDP, Protocol.TCP, Protocol.ICMP]

    def sample(rng: np.random.Generator) -> FlowRecord:
        packets = int(rng.integers(1, max_packets + 1))
        return FlowRecord(
            timestamp=int(rng.integers(0, horizon)),
            src_addr=int(rng.integers(1, 2**32 - 1)),
            dst_addr=int(rng.integers(1, 2**32 - 1)),
            src_port=int(rng.integers(0, 2**16)),
            dst_port=int(rng.integers(0, 2**16)),
            protocol=protocols[int(rng.integers(len(protocols)))],
            packets=packets,
            bytes_=packets * int(rng.integers(40, 1500)),
            tcp_flags=TcpFlags(0),
            sampling_rate=1,
        )

    def shrink(flow) -> Iterator:
        from dataclasses import replace

        if flow.packets > 1:
            yield replace(flow, packets=1, bytes_=max(1, flow.bytes_ // flow.packets))
            yield replace(flow, packets=flow.packets // 2, bytes_=max(1, flow.bytes_ // 2))
        if flow.timestamp > 0:
            yield replace(flow, timestamp=0)

    return Gen(sample, shrink, name="flow_records")


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def _run_case(prop: Callable[..., Any], args: tuple) -> BaseException | None:
    """Run one case; a falsy return or an exception is a failure."""
    try:
        result = prop(*args)
    except BaseException as exc:  # noqa: BLE001 - property bodies may assert
        if isinstance(exc, KeyboardInterrupt):
            raise
        return exc
    if result is False:
        return AssertionError("property returned False")
    return None


def _shrink(
    prop: Callable[..., Any],
    gens: Sequence[Gen],
    args: tuple,
    failure: BaseException,
    max_shrinks: int,
) -> tuple[tuple, BaseException, int]:
    """Greedy per-argument shrinking; returns (min_args, failure, steps)."""
    current = list(args)
    current_failure = failure
    steps = 0
    budget = max_shrinks
    improved = True
    while improved and budget > 0:
        improved = False
        for i, gen in enumerate(gens):
            for candidate in itertools.islice(gen.shrinks(current[i]), 8):
                budget -= 1
                trial = list(current)
                trial[i] = candidate
                exc = _run_case(prop, tuple(trial))
                if exc is not None:
                    current = trial
                    current_failure = exc
                    steps += 1
                    improved = True
                    break
                if budget <= 0:
                    break
            if budget <= 0:
                break
    return tuple(current), current_failure, steps


def _describe(value: Any) -> str:
    if isinstance(value, np.ndarray):
        with np.printoptions(precision=4, threshold=24, edgeitems=2):
            return f"ndarray{value.shape} {value!r}"
    text = repr(value)
    return text if len(text) <= 200 else text[:200] + "…"


def run_property(
    prop: Callable[..., Any],
    *gens: Gen,
    runs: int = 50,
    seed: int = 0,
    max_shrinks: int = 200,
) -> int:
    """Check ``prop`` over ``runs`` random cases; returns the case count.

    On failure the counterexample is shrunk and a :class:`PropertyError`
    is raised whose message includes every (minimized) argument plus the
    ``seed``/``case_index`` needed to replay the exact failure.
    """
    rng = np.random.default_rng(seed)
    for case_index in range(runs):
        args = tuple(gen.sample(rng) for gen in gens)
        failure = _run_case(prop, args)
        if failure is None:
            continue
        min_args, min_failure, steps = _shrink(
            prop, gens, args, failure, max_shrinks
        )
        lines = [
            f"property {getattr(prop, '__name__', prop)!r} failed "
            f"(case {case_index + 1}/{runs}, seed {seed}, "
            f"{steps} shrink steps)",
            f"  failure: {type(min_failure).__name__}: {min_failure}",
        ]
        for gen, value in zip(gens, min_args):
            lines.append(f"  {gen.name} = {_describe(value)}")
        raise PropertyError(
            "\n".join(lines),
            seed=seed,
            case_index=case_index,
            counterexample=min_args,
            shrink_steps=steps,
            cause=min_failure,
        )
    return runs


def forall(
    *gens: Gen, runs: int = 50, seed: int = 0, max_shrinks: int = 200
):
    """Decorator form of :func:`run_property` for test functions.

    The decorated function runs the whole sweep when called with no
    arguments (as pytest does), but can still be called directly with
    explicit arguments to replay a single case.
    """

    def decorate(prop: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(prop)
        def wrapper(*args, **kwargs):
            if args or kwargs:
                return prop(*args, **kwargs)
            return run_property(
                prop, *gens, runs=runs, seed=seed, max_shrinks=max_shrinks
            )

        wrapper.hypothesis_free = True  # marker for introspection
        return wrapper

    return decorate
