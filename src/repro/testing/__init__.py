"""Differential-correctness harness for the nn/survival stack.

Three pillars guard the hand-rolled autograd/LSTM/SAFE substrate against
silent numerical drift while the hot paths get refactored:

* :mod:`repro.testing.reference` — slow, obviously-correct scalar
  re-implementations of the production kernels (LSTM cell, Dense, Adam,
  SAFE loss, survival transform, CUSUM) for differential testing;
* :mod:`repro.testing.golden` — versioned end-to-end golden fixtures
  (``manifest.json`` + ``arrays.npz``) recorded once and checked on every
  change via ``python -m repro.cli golden record|check``;
* :mod:`repro.testing.props` — a dependency-free property-based testing
  runner with shrinking, plus generators for tensors, hazard batches, and
  flow records.

See ``docs/TESTING.md`` for the workflow.
"""

from .golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_FORMAT_VERSION,
    GoldenEntry,
    GoldenFormatError,
    GoldenReport,
    GoldenSpec,
    check_golden,
    compute_golden_arrays,
    record_golden,
)
from .props import (
    Gen,
    PropertyError,
    arrays,
    choices,
    flow_records,
    forall,
    hazard_batches,
    integers,
    floats,
    run_property,
    tensors,
)
from .reference import (
    diff_summary,
    max_abs_diff,
    reference_adam_step,
    reference_avg_pool_1d,
    reference_binary_cross_entropy,
    reference_cusum_scores,
    reference_dense,
    reference_hazard_to_survival,
    reference_lstm_cell,
    reference_lstm_sequence,
    reference_max_pool_1d,
    reference_safe_survival_loss,
    reference_sgd_step,
    reference_sigmoid,
)

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "DEFAULT_GOLDEN_DIR",
    "GoldenSpec",
    "GoldenEntry",
    "GoldenReport",
    "GoldenFormatError",
    "compute_golden_arrays",
    "record_golden",
    "check_golden",
    "Gen",
    "PropertyError",
    "integers",
    "floats",
    "choices",
    "arrays",
    "tensors",
    "hazard_batches",
    "flow_records",
    "run_property",
    "forall",
    "reference_sigmoid",
    "reference_lstm_cell",
    "reference_lstm_sequence",
    "reference_avg_pool_1d",
    "reference_max_pool_1d",
    "reference_dense",
    "reference_adam_step",
    "reference_sgd_step",
    "reference_hazard_to_survival",
    "reference_safe_survival_loss",
    "reference_binary_cross_entropy",
    "reference_cusum_scores",
    "max_abs_diff",
    "diff_summary",
]
