"""Slow, obviously-correct reference kernels for differential testing.

Every function here re-implements a hot-path kernel of the nn/survival
stack as scalar Python loops over ``math`` primitives — no vectorization,
no shared code with the production implementations in :mod:`repro.nn`,
:mod:`repro.survival`, or :mod:`repro.detect`.  The differential tests in
``tests/test_reference_kernels.py`` drive both versions over randomized
shapes and seeds and require agreement within tight tolerances, so a
future vectorization or numerical "optimization" of a production kernel
that silently changes its math is caught immediately.

Arrays come in and go out as ``numpy.ndarray`` (for convenient comparison)
but every arithmetic step happens on Python floats.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "reference_sigmoid",
    "reference_lstm_cell",
    "reference_lstm_sequence",
    "reference_avg_pool_1d",
    "reference_max_pool_1d",
    "reference_dense",
    "reference_adam_step",
    "reference_sgd_step",
    "reference_hazard_to_survival",
    "reference_safe_survival_loss",
    "reference_binary_cross_entropy",
    "reference_cusum_scores",
    "max_abs_diff",
    "diff_summary",
]

_EPS = 1e-12  # mirrors repro.nn.losses._EPS


def reference_sigmoid(value: float) -> float:
    """Numerically stable scalar logistic function."""
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    e = math.exp(value)
    return e / (1.0 + e)


def reference_lstm_cell(
    x_t: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step for a single example, one scalar at a time.

    Gate layout matches :class:`repro.nn.LSTM`: fused ``[i, f, g, o]``
    columns in ``w_x`` (features, 4H), ``w_h`` (H, 4H), ``bias`` (4H,).
    Returns ``(h_new, c_new)`` with shape ``(H,)``.
    """
    features = len(x_t)
    hidden = len(h_prev)
    gates = [0.0] * (4 * hidden)
    for j in range(4 * hidden):
        acc = float(bias[j])
        for k in range(features):
            acc += float(x_t[k]) * float(w_x[k, j])
        for k in range(hidden):
            acc += float(h_prev[k]) * float(w_h[k, j])
        gates[j] = acc
    h_new = np.zeros(hidden)
    c_new = np.zeros(hidden)
    for j in range(hidden):
        i_g = reference_sigmoid(gates[j])
        f_g = reference_sigmoid(gates[hidden + j])
        g_g = math.tanh(gates[2 * hidden + j])
        o_g = reference_sigmoid(gates[3 * hidden + j])
        c_val = f_g * float(c_prev[j]) + i_g * g_g
        c_new[j] = c_val
        h_new[j] = o_g * math.tanh(c_val)
    return h_new, c_new


def reference_lstm_sequence(
    x: np.ndarray,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
) -> np.ndarray:
    """Unroll :func:`reference_lstm_cell` over a ``(batch, time, features)``
    input; returns the hidden sequence ``(batch, time, hidden)``."""
    batch, steps, _features = x.shape
    hidden = w_h.shape[0]
    outputs = np.zeros((batch, steps, hidden))
    for b in range(batch):
        h = np.zeros(hidden) if h0 is None else np.array(h0[b], dtype=np.float64)
        c = np.zeros(hidden) if c0 is None else np.array(c0[b], dtype=np.float64)
        for t in range(steps):
            h, c = reference_lstm_cell(x[b, t], h, c, w_x, w_h, bias)
            outputs[b, t] = h
    return outputs


def reference_avg_pool_1d(x: np.ndarray, window: int) -> np.ndarray:
    """Non-overlapping temporal mean over ``(batch, time, feat)``, scalar
    loops; a trailing partial window is averaged over its own length."""
    batch, steps, feat = x.shape
    n_windows = (steps + window - 1) // window
    out = np.zeros((batch, n_windows, feat))
    for b in range(batch):
        for w in range(n_windows):
            start = w * window
            stop = min(start + window, steps)
            for j in range(feat):
                acc = 0.0
                for t in range(start, stop):
                    acc += float(x[b, t, j])
                out[b, w, j] = acc / (stop - start)
    return out


def reference_max_pool_1d(x: np.ndarray, window: int) -> np.ndarray:
    """Non-overlapping temporal max over ``(batch, time, feat)``, scalar
    loops; the trailing partial window maxes over its own length."""
    batch, steps, feat = x.shape
    n_windows = (steps + window - 1) // window
    out = np.zeros((batch, n_windows, feat))
    for b in range(batch):
        for w in range(n_windows):
            start = w * window
            stop = min(start + window, steps)
            for j in range(feat):
                best = float(x[b, start, j])
                for t in range(start + 1, stop):
                    best = max(best, float(x[b, t, j]))
                out[b, w, j] = best
    return out


def _reference_activation(value: float, activation: str) -> float:
    if activation in ("linear", None):
        return value
    if activation == "sigmoid":
        return reference_sigmoid(value)
    if activation == "tanh":
        return math.tanh(value)
    if activation == "relu":
        return value if value > 0 else 0.0
    if activation == "softplus":
        # log(1 + e^v) computed stably: max(v, 0) + log1p(e^-|v|).
        return max(value, 0.0) + math.log1p(math.exp(-abs(value)))
    raise ValueError(f"unknown activation {activation!r}")


def reference_dense(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    activation: str = "linear",
) -> np.ndarray:
    """``act(x @ W + b)`` with explicit scalar loops; ``x`` is 2-D."""
    rows, in_features = x.shape
    out_features = weight.shape[1]
    out = np.zeros((rows, out_features))
    for r in range(rows):
        for j in range(out_features):
            acc = float(bias[j])
            for k in range(in_features):
                acc += float(x[r, k]) * float(weight[k, j])
            out[r, j] = _reference_activation(acc, activation)
    return out


def reference_adam_step(
    param: np.ndarray,
    grad: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    step_count: int,
    lr: float = 1e-4,
    betas: tuple[float, float] = (0.9, 0.999),
    eps: float = 1e-8,
    weight_decay: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Adam update on flat copies of ``param``/``m``/``v``.

    ``step_count`` is the 1-based step being taken (the value after the
    optimizer increments its counter).  Returns new ``(param, m, v)``.
    """
    b1, b2 = betas
    bc1 = 1.0 - b1**step_count
    bc2 = 1.0 - b2**step_count
    p_new = np.array(param, dtype=np.float64)
    m_new = np.array(m, dtype=np.float64)
    v_new = np.array(v, dtype=np.float64)
    flat_p = p_new.reshape(-1)
    flat_g = np.asarray(grad, dtype=np.float64).reshape(-1)
    flat_m = m_new.reshape(-1)
    flat_v = v_new.reshape(-1)
    for i in range(flat_p.size):
        g = float(flat_g[i])
        if weight_decay:
            g += weight_decay * float(flat_p[i])
        flat_m[i] = b1 * float(flat_m[i]) + (1.0 - b1) * g
        flat_v[i] = b2 * float(flat_v[i]) + (1.0 - b2) * g * g
        m_hat = float(flat_m[i]) / bc1
        v_hat = float(flat_v[i]) / bc2
        flat_p[i] = float(flat_p[i]) - lr * m_hat / (math.sqrt(v_hat) + eps)
    return p_new, m_new, v_new


def reference_sgd_step(
    param: np.ndarray,
    grad: np.ndarray,
    velocity: np.ndarray,
    lr: float = 0.01,
    momentum: float = 0.0,
    weight_decay: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """One SGD(+momentum) update on flat copies; returns ``(param, velocity)``."""
    p_new = np.array(param, dtype=np.float64)
    v_new = np.array(velocity, dtype=np.float64)
    flat_p = p_new.reshape(-1)
    flat_g = np.asarray(grad, dtype=np.float64).reshape(-1)
    flat_v = v_new.reshape(-1)
    for i in range(flat_p.size):
        g = float(flat_g[i])
        if weight_decay:
            g += weight_decay * float(flat_p[i])
        if momentum:
            flat_v[i] = momentum * float(flat_v[i]) + g
            g = float(flat_v[i])
        flat_p[i] = float(flat_p[i]) - lr * g
    return p_new, v_new


def reference_hazard_to_survival(hazards: np.ndarray) -> np.ndarray:
    """``S_t = prod_{k<=t} exp(-h_k)`` along the last axis, scalar loops."""
    hazards = np.asarray(hazards, dtype=np.float64)
    flat = hazards.reshape(-1, hazards.shape[-1])
    out = np.zeros_like(flat)
    for r in range(flat.shape[0]):
        running = 0.0
        for t in range(flat.shape[1]):
            running += float(flat[r, t])
            out[r, t] = math.exp(-running)
    return out.reshape(hazards.shape)


def reference_safe_survival_loss(
    hazards: np.ndarray,
    is_attack: np.ndarray,
    label_times: np.ndarray,
) -> float:
    """Scalar re-derivation of :func:`repro.nn.losses.safe_survival_loss`."""
    hazards = np.asarray(hazards, dtype=np.float64)
    batch, _steps = hazards.shape
    total = 0.0
    for i in range(batch):
        cum = 0.0
        for t in range(int(label_times[i]) + 1):
            cum += float(hazards[i, t])
        survival = math.exp(-cum)
        event_prob = min(max(1.0 - survival, _EPS), 1.0)
        censor_prob = min(max(survival, _EPS), 1.0)
        c = float(is_attack[i])
        total += -(c * math.log(event_prob) + (1.0 - c) * math.log(censor_prob))
    return total / batch


def reference_binary_cross_entropy(
    probs: np.ndarray, targets: np.ndarray
) -> float:
    """Mean BCE with the same clipping as the production loss."""
    probs = np.asarray(probs, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    total = 0.0
    for p, t in zip(probs, targets):
        p = min(max(float(p), _EPS), 1.0 - _EPS)
        total += -(float(t) * math.log(p) + (1.0 - float(t)) * math.log(1.0 - p))
    return total / probs.size


def reference_cusum_scores(
    series: np.ndarray, mu: float, sigma: float, numstd: float = 1.0
) -> np.ndarray:
    """Scalar CUSUM statistic, mirroring :func:`repro.detect.cusum_scores`."""
    sigma = max(float(sigma), 1e-9)
    out = np.zeros(len(series))
    s = 0.0
    for i, value in enumerate(series):
        z = (float(value) - float(mu) - numstd * sigma) / sigma
        s = max(0.0, s + z)
        out[i] = s
    return out


# ----------------------------------------------------------------------
# diff helpers shared by the differential tests and the golden checker
# ----------------------------------------------------------------------
def max_abs_diff(got: np.ndarray, want: np.ndarray) -> float:
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    if got.shape != want.shape:
        return math.inf
    if got.size == 0:
        return 0.0
    return float(np.max(np.abs(got - want)))


def diff_summary(name: str, got: np.ndarray, want: np.ndarray) -> str:
    """One human-readable line locating the worst element-wise mismatch."""
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    if got.shape != want.shape:
        return f"{name}: shape mismatch {got.shape} vs {want.shape}"
    if got.size == 0:
        return f"{name}: empty, equal"
    delta = np.abs(got - want)
    idx = np.unravel_index(int(np.argmax(delta)), delta.shape)
    return (
        f"{name}: max |Δ| {delta[idx]:.3e} at {tuple(int(i) for i in idx)} "
        f"(got {got[idx]:.6g}, want {want[idx]:.6g})"
    )
