"""Golden end-to-end traces: record once, check every refactor.

A *golden trace* is a small versioned fixture — an ``arrays.npz`` of
numerical artifacts plus a ``manifest.json`` recording the recipe (seed,
epochs), provenance (git describe, numpy/python versions), and per-array
tolerances.  :func:`record_golden` runs a deterministic end-to-end recipe
(synthetic world → CDet alert timeline → 2-epoch SAFE training → hazard
and survival curves → final model state) and freezes the results;
:func:`check_golden` re-runs the same recipe against the current code and
compares every array under its recorded ``atol``/``rtol``, producing a
human-readable diff report.

The CLI front end is ``python -m repro.cli golden record|check``; the
committed fixture lives under ``tests/fixtures/golden/``.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .reference import diff_summary

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "DEFAULT_GOLDEN_DIR",
    "GoldenSpec",
    "GoldenEntry",
    "GoldenReport",
    "GoldenFormatError",
    "compute_golden_arrays",
    "record_golden",
    "check_golden",
]

GOLDEN_FORMAT_VERSION = 1
DEFAULT_GOLDEN_DIR = Path("tests/fixtures/golden")

# Float artifacts are recomputed from the same seeds on the same machine,
# so they are normally bit-identical; the tolerances exist to absorb
# cross-platform BLAS / libm differences while staying far below any real
# numerical regression (a 1e-3 weight nudge shifts every curve by >> 1e-5).
_FLOAT_ATOL = 1e-6
_FLOAT_RTOL = 1e-5


class GoldenFormatError(RuntimeError):
    """The on-disk fixture is from an incompatible format version."""


@dataclass(frozen=True)
class GoldenSpec:
    """The deterministic recipe a golden fixture is recorded from."""

    seed: int = 7
    epochs: int = 2
    n_curves: int = 4  # survival/hazard curves to freeze

    def scenario(self):
        from ..synth import ScenarioConfig

        return ScenarioConfig(
            total_days=10,
            minutes_per_day=100,
            prep_days=1.5,
            n_customers=5,
            n_botnets=2,
            botnet_size=60,
            seed=self.seed,
        )

    def model_config(self):
        from ..core import TimescaleSpec, XatuModelConfig

        return XatuModelConfig(
            hidden_size=12,
            dense_size=8,
            detect_window=10,
            timescales=(
                TimescaleSpec("short", 1, 60),
                TimescaleSpec("medium", 5, 36),
                TimescaleSpec("long", 20, 12),
            ),
            seed=self.seed,
        )


def compute_golden_arrays(spec: GoldenSpec | None = None) -> dict[str, np.ndarray]:
    """Run the golden recipe end-to-end and return its frozen artifacts.

    Covers the three layers a numerical regression can hide in: the
    detector alert timeline (labels), the training trajectory (autograd +
    optimizer + loss), and the inference outputs (hazards → survival),
    plus every trained parameter tensor.
    """
    from ..core import DatasetBuilder, TrainConfig, XatuModel, XatuTrainer, alerts_to_records
    from ..detect import NetScoutDetector
    from ..signals import FeatureExtractor
    from ..survival.analysis import hazards_to_survival_np
    from ..synth import TraceGenerator

    spec = spec or GoldenSpec()
    trace = TraceGenerator(spec.scenario()).materialize()
    alerts = NetScoutDetector().detect(trace)
    labeled = [a for a in alerts if a.event_id >= 0]
    if not labeled:
        raise RuntimeError("golden scenario produced no labeled alerts")

    arrays: dict[str, np.ndarray] = {
        "alerts/detect_minutes": np.array([a.detect_minute for a in alerts], dtype=np.int64),
        "alerts/end_minutes": np.array([a.end_minute for a in alerts], dtype=np.int64),
        "alerts/customer_ids": np.array([a.customer_id for a in alerts], dtype=np.int64),
        "alerts/event_ids": np.array([a.event_id for a in alerts], dtype=np.int64),
        "alerts/peak_bytes": np.array([a.peak_bytes for a in alerts], dtype=np.float64),
    }

    extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, labeled))
    config = spec.model_config()
    builder = DatasetBuilder(
        trace, extractor, config, rng=np.random.default_rng(spec.seed)
    )
    split = int(trace.horizon * 0.7)
    train_set = builder.build(labeled, (0, split))
    val_set = builder.build(labeled, (split, trace.horizon), scaler=train_set.scaler)

    model = XatuModel(config)
    trainer = XatuTrainer(
        model,
        TrainConfig(
            epochs=spec.epochs, batch_size=8, learning_rate=3e-3, seed=spec.seed
        ),
    )
    result = trainer.fit(train_set, validation=val_set if len(val_set) else None)
    arrays["train/loss_curve"] = np.array(result.train_losses, dtype=np.float64)
    arrays["train/val_loss_curve"] = np.array(result.val_losses, dtype=np.float64)

    probe_set = val_set if len(val_set) else train_set
    x, _c, _t = probe_set.arrays()
    k = min(spec.n_curves, len(probe_set))
    hazards = model.hazards_np(x[:k])
    arrays["inference/hazard_curves"] = hazards
    arrays["inference/survival_curves"] = hazards_to_survival_np(hazards)
    # The batched serving lane (one stacked fused pass over k windows,
    # per-item bitwise equal to scoring each window alone) in both
    # precisions — so a kernel edit can't silently drift the lane the
    # serve engine runs by default.
    arrays["inference/hazard_curves_batched"] = model.hazards_np_batched(x[:k])
    arrays["inference/hazard_curves_batched_f32"] = model.hazards_np_batched(
        x[:k], dtype=np.float32
    )

    for key, value in model.state_dict().items():
        arrays[f"state/{key}"] = value
    return arrays


def _git_describe() -> str:
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _tolerances_for(name: str, value: np.ndarray) -> tuple[float, float]:
    if np.issubdtype(value.dtype, np.integer):
        return 0.0, 0.0
    return _FLOAT_ATOL, _FLOAT_RTOL


def record_golden(
    path: str | Path = DEFAULT_GOLDEN_DIR, spec: GoldenSpec | None = None
) -> Path:
    """Record a golden fixture (``manifest.json`` + ``arrays.npz``) at ``path``."""
    spec = spec or GoldenSpec()
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays = compute_golden_arrays(spec)
    np.savez(path / "arrays.npz", **arrays)
    manifest = {
        "format_version": GOLDEN_FORMAT_VERSION,
        "spec": asdict(spec),
        "git_describe": _git_describe(),
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "arrays": {
            name: {
                "shape": list(value.shape),
                "dtype": str(value.dtype),
                "atol": _tolerances_for(name, value)[0],
                "rtol": _tolerances_for(name, value)[1],
            }
            for name, value in sorted(arrays.items())
        },
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    return path


@dataclass
class GoldenEntry:
    """Comparison result for one recorded array."""

    name: str
    status: str  # "ok" | "mismatch" | "missing" | "unexpected"
    max_abs: float = 0.0
    atol: float = 0.0
    rtol: float = 0.0
    detail: str = ""


@dataclass
class GoldenReport:
    """Outcome of one :func:`check_golden` run."""

    path: Path
    entries: list[GoldenEntry] = field(default_factory=list)
    git_describe_recorded: str = ""

    @property
    def ok(self) -> bool:
        return all(entry.status == "ok" for entry in self.entries)

    @property
    def failures(self) -> list[GoldenEntry]:
        return [entry for entry in self.entries if entry.status != "ok"]

    def render(self) -> str:
        """Human-readable diff report (one line per array)."""
        lines = [
            f"golden check against {self.path} "
            f"(recorded at {self.git_describe_recorded or 'unknown'})"
        ]
        for entry in self.entries:
            mark = "ok  " if entry.status == "ok" else "FAIL"
            line = f"  [{mark}] {entry.name}"
            if entry.status == "ok":
                line += f"  max |Δ| {entry.max_abs:.2e} (atol {entry.atol:g})"
            else:
                line += f"  {entry.status}: {entry.detail}"
            lines.append(line)
        n_bad = len(self.failures)
        lines.append(
            f"{len(self.entries) - n_bad}/{len(self.entries)} arrays within "
            "tolerance" + (f"; {n_bad} FAILED" if n_bad else "")
        )
        return "\n".join(lines)


def check_golden(
    path: str | Path = DEFAULT_GOLDEN_DIR,
    arrays: dict[str, np.ndarray] | None = None,
) -> GoldenReport:
    """Compare current code against a recorded fixture.

    ``arrays`` overrides the recomputation (used by tests to inject
    perturbed artifacts); normally the recipe in the fixture's manifest is
    re-run against the live code.
    """
    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"no golden fixture at {path} — run `python -m repro.cli golden "
            f"record --path {path}` first"
        )
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != GOLDEN_FORMAT_VERSION:
        raise GoldenFormatError(
            f"golden fixture at {path} has format_version {version!r}, this "
            f"code understands {GOLDEN_FORMAT_VERSION}; re-record the fixture"
        )
    spec = GoldenSpec(**manifest["spec"])
    with np.load(path / "arrays.npz") as archive:
        recorded = {name: archive[name].copy() for name in archive.files}
    if arrays is None:
        arrays = compute_golden_arrays(spec)

    report = GoldenReport(
        path=path, git_describe_recorded=manifest.get("git_describe", "")
    )
    for name in sorted(set(recorded) | set(arrays)):
        if name not in arrays:
            report.entries.append(
                GoldenEntry(name, "missing", detail="current code no longer produces this array")
            )
            continue
        if name not in recorded:
            report.entries.append(
                GoldenEntry(name, "unexpected", detail="array not present in the fixture")
            )
            continue
        meta = manifest["arrays"].get(name, {})
        atol = float(meta.get("atol", _FLOAT_ATOL))
        rtol = float(meta.get("rtol", _FLOAT_RTOL))
        want, got = recorded[name], arrays[name]
        if want.shape != got.shape:
            report.entries.append(
                GoldenEntry(
                    name, "mismatch", atol=atol, rtol=rtol,
                    detail=f"shape changed: recorded {want.shape}, got {got.shape}",
                )
            )
            continue
        close = np.allclose(got, want, atol=atol, rtol=rtol)
        max_abs = float(np.max(np.abs(got - want))) if want.size else 0.0
        if close:
            report.entries.append(
                GoldenEntry(name, "ok", max_abs=max_abs, atol=atol, rtol=rtol)
            )
        else:
            report.entries.append(
                GoldenEntry(
                    name, "mismatch", max_abs=max_abs, atol=atol, rtol=rtol,
                    detail=diff_summary(name, got, want),
                )
            )
    return report
