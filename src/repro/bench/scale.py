"""Scale benchmark: streaming trace generation + serving at 10k/100k/1M.

Every other benchmark in :mod:`repro.bench` measures *speed* on a fixed
small workload; this one measures *scalability*: how peak memory and
minutes/sec behave as the customer universe grows 100×.  Each cell runs
one seeded lazy-world compressed day (:class:`~repro.synth.ScenarioConfig`
with ``lazy_world`` + ``benign_flow_budget``) streamed minute-by-minute
through a sharded :class:`~repro.serve.ServeEngine` routed by a
:class:`~repro.serve.ContiguousCustomerRouter` — generation never holds a
materialized :class:`~repro.synth.Trace` and serving never materializes a
routing table, so both sides should be O(active traffic), not
O(n_customers).

Isolation: each cell runs in its **own subprocess** (``python -m
repro.bench.scale --cell <name>``) so ``ru_maxrss`` is that cell's true
high-water mark, not whatever a previous cell left behind in the
allocator.  Results land in ``BENCH_scale.json`` next to the other bench
files; ``--check`` compares a fresh run against the committed baseline
with the usual host-mismatch demotion, and the *scale gate* — 1M peak RSS
within 2× of 100k — is a host-independent hard failure.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SCALE_FORMAT_VERSION",
    "SCALE_CELLS",
    "SCALE_MINUTES",
    "scale_scenario",
    "run_cell",
    "run_scale",
    "write_scale_json",
    "load_scale_json",
    "compare_scale",
    "scale_gate",
    "render_scale",
]

SCALE_FORMAT_VERSION = 1

# One compressed day (120 "minutes") per cell; the universe grows 100×
# across the table while the per-minute work should not.
SCALE_CELLS: dict[str, int] = {"10k": 10_000, "100k": 100_000, "1m": 1_000_000}
SCALE_MINUTES = 120
_SMOKE_MINUTES = 30

# The RSS ratio the scale gate enforces between the largest and the
# reference cell (the ISSUE acceptance criterion: 1M within 2× of 100k).
SCALE_GATE_PAIR = ("1m", "100k")
SCALE_GATE_RATIO = 2.0


def scale_scenario(n_customers: int, seed: int = 7):
    """The seeded compressed-day scenario one scale cell streams."""
    from ..synth import ScenarioConfig

    return ScenarioConfig(
        total_days=1.0,
        minutes_per_day=SCALE_MINUTES,
        prep_days=0.5,
        n_customers=n_customers,
        n_botnets=2,
        botnet_size=120,
        campaigns_per_botnet=1,
        seed=seed,
        lazy_world=True,
        benign_flow_budget=1_200,
        benign_hot_customers=256,
        benign_tail_fraction=0.2,
    )


def _tiny_artifacts():
    """An untrained short-lookback model + trivially fitted scaler.

    The cell measures generation/routing/serving scalability, not model
    quality — so the model is the smallest architecture the serving loop
    accepts, and the scaler is fitted on a seeded random block purely to
    satisfy the fitted-before-transform contract.
    """
    from ..core.model import TimescaleSpec, XatuModel, XatuModelConfig
    from ..signals.features import N_FEATURES, FeatureScaler

    model = XatuModel(
        XatuModelConfig(
            hidden_size=8,
            dense_size=8,
            detect_window=5,
            timescales=(TimescaleSpec("short", 1, 30),),
        )
    )
    scaler = FeatureScaler()
    rng = np.random.default_rng(0)
    scaler.fit([np.abs(rng.normal(size=(64, N_FEATURES)))])
    return model, scaler


def run_cell(
    cell: str,
    minutes: int | None = None,
    shards: int = 2,
    seed: int = 7,
) -> dict:
    """Stream one scale cell end to end and return its measurements.

    Runs inside the per-cell subprocess: generator → collector → sharded
    engine, minute by minute, then reads ``ru_maxrss`` as the process-wide
    peak.  Returns a JSON-ready dict.
    """
    import resource

    from ..core.model import XatuModel  # noqa: F401 - imported for cost parity
    from ..core.online import OnlineConfig, OnlineXatu
    from ..serve import ContiguousCustomerRouter, ServeConfig, ServeEngine
    from ..synth import TraceGenerator

    if cell not in SCALE_CELLS:
        raise ValueError(f"unknown scale cell {cell!r}; choose from {list(SCALE_CELLS)}")
    n_customers = SCALE_CELLS[cell]
    config = scale_scenario(n_customers, seed=seed)
    horizon = config.horizon_minutes
    minutes = horizon if minutes is None else min(minutes, horizon)

    model, scaler = _tiny_artifacts()
    generator = TraceGenerator(config)
    router = ContiguousCustomerRouter.for_world(generator.world)
    route_table = generator.world.route_table
    online_config = OnlineConfig(
        threshold=1e-9,  # untrained hazards: keep the alert stream quiet
        evict_margin_minutes=10,
        watch_idle_minutes=15,
    )

    def factory(partition):
        return OnlineXatu(
            model=model,
            scaler=scaler,
            customer_of=partition,
            blocklist=set(),
            route_table=route_table,
            config=online_config,
        )

    engine = ServeEngine(
        factory, router, ServeConfig(shards=shards, backend="inline")
    )
    flows = 0
    alerts = 0
    start = time.perf_counter()
    try:
        for sl in generator.iter_minutes(0, minutes):
            flows += engine.ingest_flows(sl.batch)
            alerts += len(engine.tick(sl.minute))
    finally:
        engine.close()
    wall_s = time.perf_counter() - start
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "cell": cell,
        "n_customers": n_customers,
        "minutes": minutes,
        "shards": shards,
        "seed": seed,
        "wall_s": wall_s,
        "minutes_per_s": minutes / wall_s if wall_s > 0 else 0.0,
        "flows": flows,
        "alerts": alerts,
        "peak_rss_mb": peak_rss_kb / 1024.0,  # ru_maxrss is KiB on Linux
    }


# ----------------------------------------------------------------------
# orchestration (parent process)
# ----------------------------------------------------------------------
def _spawn_cell(cell: str, minutes: int | None, shards: int, seed: int) -> dict:
    """Run one cell in a fresh interpreter and parse its JSON result."""
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    pythonpath = env.get("PYTHONPATH", "")
    if src_root not in pythonpath.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root if not pythonpath else src_root + os.pathsep + pythonpath
        )
    cmd = [
        sys.executable, "-m", "repro.bench.scale",
        "--cell", cell, "--shards", str(shards), "--seed", str(seed),
    ]
    if minutes is not None:
        cmd += ["--minutes", str(minutes)]
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale cell {cell} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def run_scale(
    cells: tuple[str, ...] | None = None,
    smoke: bool = False,
    shards: int = 2,
    seed: int = 7,
) -> dict:
    """Run the scale cells (each in its own subprocess) and build the report."""
    from ..obs.export import host_metadata

    if cells is None:
        cells = ("10k", "100k") if smoke else tuple(SCALE_CELLS)
    unknown = [c for c in cells if c not in SCALE_CELLS]
    if unknown:
        raise ValueError(
            f"unknown scale cell(s) {unknown}; choose from {list(SCALE_CELLS)}"
        )
    minutes = _SMOKE_MINUTES if smoke else None
    runs = [_spawn_cell(cell, minutes, shards, seed) for cell in cells]
    return {
        "format_version": SCALE_FORMAT_VERSION,
        "tag": "scale",
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "host": host_metadata(),
        "runs": {run["cell"]: run for run in runs},
    }


def write_scale_json(payload: dict, out_dir: str | Path) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / "BENCH_scale.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def load_scale_json(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != SCALE_FORMAT_VERSION:
        raise ValueError(
            f"scale bench file {path} has format_version {version!r}; this "
            f"code understands {SCALE_FORMAT_VERSION}"
        )
    return payload


def scale_gate(payload: dict, max_rss_mb: float | None = None) -> list[str]:
    """Host-independent hard checks on one (fresh) scale report.

    The cross-cell RSS ratio is the scalability claim itself — if the 1M
    cell needs more than ``SCALE_GATE_RATIO``× the 100k cell's memory,
    something reintroduced O(n_customers) state and no host difference
    can excuse it.  ``max_rss_mb`` optionally bounds every cell (the CI
    memory gate).
    """
    failures: list[str] = []
    runs = payload.get("runs", {})
    big, ref = SCALE_GATE_PAIR
    if big in runs and ref in runs:
        big_rss = float(runs[big]["peak_rss_mb"])
        ref_rss = float(runs[ref]["peak_rss_mb"])
        if ref_rss > 0 and big_rss > SCALE_GATE_RATIO * ref_rss:
            failures.append(
                f"scale gate: {big} peak RSS {big_rss:.1f} MB exceeds "
                f"{SCALE_GATE_RATIO}x the {ref} cell ({ref_rss:.1f} MB)"
            )
    if max_rss_mb is not None:
        for cell, run in sorted(runs.items()):
            rss = float(run["peak_rss_mb"])
            if rss > max_rss_mb:
                failures.append(
                    f"memory gate: cell {cell} peak RSS {rss:.1f} MB exceeds "
                    f"the {max_rss_mb:.0f} MB bound"
                )
    return failures


def compare_scale(
    fresh: dict,
    baseline: dict,
    tolerance: float = 0.5,
) -> tuple[list[str], list[str]]:
    """Compare a fresh scale report against the committed baseline.

    Same conventions as :func:`repro.bench.compare_to_baseline`: a cell
    regresses when it is ``tolerance`` slower (minutes/sec) or fatter
    (peak RSS) than the baseline; host mismatches and smoke runs demote
    regressions to warnings.  The :func:`scale_gate` failures are appended
    as hard failures regardless.
    """
    from ..obs.export import host_metadata

    warnings: list[str] = []
    failures: list[str] = []

    baseline_host = baseline.get("host") or baseline.get("platform") or {}
    here = host_metadata()
    mismatched = [
        key
        for key in ("python", "numpy", "machine")
        if key in baseline_host and baseline_host[key] != here.get(key)
    ]
    host_matches = not mismatched
    if mismatched:
        detail = ", ".join(
            f"{k}: baseline {baseline_host[k]} vs here {here.get(k)}"
            for k in mismatched
        )
        warnings.append(
            f"host differs from baseline ({detail}); regressions reported "
            "as warnings only"
        )
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        warnings.append("smoke flag differs from baseline; not comparable")
        host_matches = False
    elif fresh.get("smoke"):
        warnings.append(
            "both runs are smoke mode; regressions reported as warnings only"
        )
        host_matches = False

    baseline_runs = baseline.get("runs", {})
    for cell, run in sorted(fresh.get("runs", {}).items()):
        base = baseline_runs.get(cell)
        if base is None:
            warnings.append(f"{cell}: no baseline entry; skipped")
            continue
        if (run["minutes"], run["shards"]) != (base["minutes"], base["shards"]):
            warnings.append(f"{cell}: workload sizes differ; skipped")
            continue
        sink = failures if host_matches else warnings
        base_speed = float(base["minutes_per_s"])
        speed = float(run["minutes_per_s"])
        if base_speed > 0 and speed < base_speed / (1.0 + tolerance):
            sink.append(
                f"{cell}: {speed:.1f} minutes/s vs baseline "
                f"{base_speed:.1f} ({base_speed / max(speed, 1e-9):.2f}x slower)"
            )
        base_rss = float(base["peak_rss_mb"])
        rss = float(run["peak_rss_mb"])
        if base_rss > 0 and rss > base_rss * (1.0 + tolerance):
            sink.append(
                f"{cell}: peak RSS {rss:.1f} MB vs baseline "
                f"{base_rss:.1f} MB ({rss / base_rss:.2f}x fatter)"
            )
    failures.extend(scale_gate(fresh))
    return warnings, failures


def render_scale(payload: dict) -> str:
    header = (
        f"{'cell':<6} {'customers':>10} {'minutes':>7} {'min/s':>8} "
        f"{'flows':>10} {'alerts':>7} {'peak RSS MB':>12}"
    )
    lines = [header, "-" * len(header)]
    for cell, run in sorted(
        payload.get("runs", {}).items(), key=lambda kv: kv[1]["n_customers"]
    ):
        lines.append(
            f"{cell:<6} {run['n_customers']:>10,} {run['minutes']:>7} "
            f"{run['minutes_per_s']:>8.1f} {run['flows']:>10,} "
            f"{run['alerts']:>7} {run['peak_rss_mb']:>12.1f}"
        )
    return "\n".join(lines)


def _main(argv: list[str] | None = None) -> int:
    """Subprocess entry: run one cell, print its JSON measurement."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", required=True, choices=tuple(SCALE_CELLS))
    parser.add_argument("--minutes", type=int, default=None)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    result = run_cell(
        args.cell, minutes=args.minutes, shards=args.shards, seed=args.seed
    )
    print(json.dumps(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
