"""Microbenchmark definitions: fused kernels vs the pre-fusion tape path.

Each case builds identical workloads for the fused and unfused variants
(same seeds, same shapes) and times them with
:func:`repro.bench.harness.time_callable`:

* ``lstm_forward``      — one LSTM forward over the paper's LSTM_long span
  (240 steps) with the autograd tape recording.
* ``lstm_train_step``   — forward + loss + backward + Adam step; the
  headline kernel-fusion number.
* ``pooling``           — AvgPool1D + MaxPool1D forward/backward over a
  long minute series (ragged tail included).
* ``train_epoch``       — one full :class:`XatuTrainer` epoch on a
  synthetic survival sample set (multi-timescale model).
* ``synthetic_day``     — end-to-end scoring of a synthetic day of
  feature minutes: sliding detection-window blocks through
  ``XatuModel.survival_np`` (the graph-free inference lane).
* ``day_scoring_f32``   — the same day under the float32 inference
  policy (fused only; recorded for the trajectory, no speedup ratio).
* ``train_epoch_obs``   — the ``train_epoch`` workload with telemetry
  disabled vs enabled (``repro.obs``); the enabled/disabled ratio bounds
  the instrumentation overhead (<3% budget, see docs/OBSERVABILITY.md).
* ``serve_minutes``     — the per-minute alert-decision pass of one
  serving shard at 1000 customers: hazard inference + survival +
  threshold for every watched customer, on feature windows staged ahead
  of time for both variants (feature extraction and scaling are the
  shared staging stage of the serving pipeline; this case isolates the
  per-customer decision cost that the batched lane amortizes).  The
  "unfused" variant is the per-customer reference lane's decision call —
  one ``hazards_np`` per customer, float64, exactly what the shard ran
  before the batched lane existed.  The "fused" variant is the batched
  lane's decision call — one ``hazards_np_staged`` pass per
  ``batch_block`` chunk under the float32 inference policy, i.e. the
  ``ServeConfig(batched=True, inference_dtype="float32")`` production
  configuration.  Within either dtype the two lanes' alert streams and
  checkpoints are byte-identical (tests/test_batched_equivalence.py
  proves it bit for bit); the speedup column reads as the per-customer
  alert-decision cost reduction.

``run_all(smoke=True)`` shrinks every size so the whole suite finishes in
a few seconds — that is what ``make bench`` / CI run to keep the perf
code from rotting.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..nn import LSTM, Adam, AvgPool1D, MaxPool1D, Tensor, set_fused
from .harness import BenchReport, BenchTiming, time_callable

__all__ = ["run_all", "BENCH_CASES"]

BENCH_CASES = (
    "lstm_forward",
    "lstm_train_step",
    "pooling",
    "train_epoch",
    "synthetic_day",
    "day_scoring_f32",
    "train_epoch_obs",
    "serve_minutes",
)


def _sizes(smoke: bool) -> dict[str, dict]:
    if smoke:
        return {
            "lstm": {"batch": 2, "steps": 40, "features": 16, "hidden": 8},
            "pooling": {"batch": 2, "steps": 130, "features": 16, "window": 10},
            "train_epoch": {"n_samples": 8, "batch_size": 4, "n_features": 12},
            "synthetic_day": {"day_minutes": 60, "n_features": 12},
            "serve_minutes": {"customers": 8, "minutes": 2, "flows_per_customer": 2},
        }
    return {
        # LSTM_long unrolls 240 steps (paper §4/Fig. 6); hidden 32 is the
        # reproduction's default model width.
        "lstm": {"batch": 8, "steps": 240, "features": 64, "hidden": 32},
        "pooling": {"batch": 8, "steps": 1430, "features": 64, "window": 60},
        "train_epoch": {"n_samples": 24, "batch_size": 8, "n_features": 24},
        "synthetic_day": {"day_minutes": 480, "n_features": 24},
        "serve_minutes": {"customers": 1000, "minutes": 2, "flows_per_customer": 1},
    }


def _bench_model_config(n_features: int):
    from ..eval.presets import bench_model_config

    return replace(bench_model_config(), n_features=n_features)


def _synthetic_samples(config, n_samples: int, rng: np.random.Generator):
    """Random survival samples shaped like DatasetBuilder output."""
    from ..core.dataset import SampleSet, SurvivalSample

    lookback = config.lookback_minutes
    samples = [
        SurvivalSample(
            features=rng.normal(size=(lookback, config.n_features)),
            is_attack=bool(k % 2),
            label_time=int(rng.integers(0, config.detect_window)),
            customer_id=k,
            end_minute=lookback + k,
            event_id=k if k % 2 else -1,
        )
        for k in range(n_samples)
    ]
    return SampleSet(samples=samples, scaler=None)


# ----------------------------------------------------------------------
# case builders: return a zero-arg callable for (case, fused?)
# ----------------------------------------------------------------------
def _make_lstm_forward(sizes: dict, fused: bool):
    s = sizes["lstm"]
    rng = np.random.default_rng(0)
    lstm = LSTM(s["features"], s["hidden"], rng=np.random.default_rng(1), fused=fused)
    x = Tensor(rng.normal(size=(s["batch"], s["steps"], s["features"])))
    return lambda: lstm(x)


def _make_lstm_train_step(sizes: dict, fused: bool):
    s = sizes["lstm"]
    rng = np.random.default_rng(0)
    lstm = LSTM(s["features"], s["hidden"], rng=np.random.default_rng(1), fused=fused)
    x = Tensor(rng.normal(size=(s["batch"], s["steps"], s["features"])))
    opt = Adam(lstm.parameters())

    def step():
        opt.zero_grad()
        out, _state = lstm(x)
        (out * out).sum().backward()
        opt.step()

    return step


def _make_pooling(sizes: dict, fused: bool):
    s = sizes["pooling"]
    rng = np.random.default_rng(0)
    avg = AvgPool1D(s["window"], fused=fused)
    mx = MaxPool1D(s["window"], fused=fused)
    x = Tensor(
        rng.normal(size=(s["batch"], s["steps"], s["features"])), requires_grad=True
    )

    def run():
        x.zero_grad()
        (avg(x).sum() + mx(x).sum()).backward()

    return run


def _make_train_epoch(sizes: dict, fused: bool):
    from ..core.model import XatuModel
    from ..core.trainer import TrainConfig, XatuTrainer

    s = sizes["train_epoch"]
    config = _bench_model_config(s["n_features"])
    samples = _synthetic_samples(config, s["n_samples"], np.random.default_rng(2))
    model = XatuModel(config)
    set_fused(model, fused)
    trainer = XatuTrainer(
        model,
        TrainConfig(epochs=1, batch_size=s["batch_size"], learning_rate=1e-3, seed=0),
    )
    return lambda: trainer.fit(samples)


def _make_train_epoch_obs(sizes: dict, enabled: bool):
    """The ``train_epoch`` workload under a telemetry switch state."""
    from ..obs import set_enabled

    fit = _make_train_epoch(sizes, fused=True)

    def run():
        previous = set_enabled(enabled)
        try:
            fit()
        finally:
            set_enabled(previous)

    return run


def _make_synthetic_day(sizes: dict, fused: bool, dtype=None):
    from ..core.model import XatuModel

    s = sizes["synthetic_day"]
    config = _bench_model_config(s["n_features"])
    model = XatuModel(config)
    set_fused(model, fused)
    model.eval()  # deployed detectors score in eval mode
    lookback = config.lookback_minutes
    day = np.random.default_rng(3).normal(
        size=(lookback + s["day_minutes"], config.n_features)
    )

    def score_day():
        # The detector's sliding loop: score each detection-window block of
        # the day from the window of minutes that precedes it.
        for end in range(lookback, day.shape[0] + 1, config.detect_window):
            model.survival_np(day[None, end - lookback : end], dtype=dtype)

    return score_day


def _make_serve_minutes(sizes: dict, batched: bool):
    """Per-minute alert-decision pass of one serving shard.

    Builds a shard-shaped :class:`OnlineXatu` with every customer watched,
    feeds it a couple of minutes of flows, and stages the scaled feature
    windows the way the shard's own scoring lanes do.  The timed callable
    is then exactly the decision work a shard repeats every minute:

    * ``batched=False`` — the per-customer reference lane's decision call:
      one float64 ``hazards_np`` per customer (``_score_one``'s model
      call), last-hazard survival, threshold.
    * ``batched=True`` — the batched lane's decision call under the
      production ``inference_dtype="float32"`` policy: one
      ``hazards_np_staged`` pass per ``batch_block`` chunk
      (``_score_batched``'s model call), vectorized survival + threshold.

    Feature staging (window assembly + scaling + pooling) runs in setup
    for both variants — it is the shared feature-extractor stage of the
    serving pipeline, identical across lanes, so excluding it makes the
    ratio read as the per-customer alert-decision cost reduction.
    """
    from ..core.model import XatuModel
    from ..core.online import OnlineXatu
    from ..netflow.records import FlowRecord
    from ..netflow.routing import RouteTable
    from ..signals.features import N_FEATURES, FeatureScaler

    s = sizes["serve_minutes"]
    config = _bench_model_config(N_FEATURES)
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(N_FEATURES)
    scaler.std_ = np.ones(N_FEATURES)
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), origin_asn=1)
    customer_of = {10_000 + i: i for i in range(s["customers"])}
    model = XatuModel(config)
    model.eval()
    detector = OnlineXatu(
        model=model,
        scaler=scaler,
        threshold=0.5,
        customer_of=customer_of,
        blocklist=set(),
        route_table=route_table,
    )
    detector.batched = True  # setup scoring only; timed lanes are explicit below
    rng = np.random.default_rng(4)
    for minute in range(2):
        detector.step(
            minute,
            [
                FlowRecord(
                    timestamp=minute,
                    src_addr=int(rng.integers(1, 2**31)),
                    dst_addr=address,
                    src_port=int(rng.integers(1024, 65535)),
                    dst_port=443,
                    protocol=6,
                    packets=int(rng.integers(1, 50)),
                    bytes_=int(rng.integers(100, 50_000)),
                )
                for address in customer_of
                for _ in range(s["flows_per_customer"])
            ],
        )
    customers = sorted(set(customer_of.values()))
    scaled = detector.feature_windows(customers, 1)
    scaler.transform(scaled, out=scaled)
    threshold = detector.threshold

    if batched:
        block = detector.batch_block
        staged_chunks = [
            model.stage_pooled(scaled[lo : lo + block], dtype=np.float32)
            for lo in range(0, len(customers), block)
        ]

        def run_minutes():
            for _ in range(s["minutes"]):
                fired = 0
                for staged in staged_chunks:
                    hazards = model.hazards_np_staged(staged, dtype=np.float32)
                    survival = np.exp(-hazards[:, -1])
                    fired += int((survival < threshold).sum())

    else:

        def run_minutes():
            for _ in range(s["minutes"]):
                fired = 0
                for i in range(len(customers)):
                    hazards = model.hazards_np(scaled[i : i + 1])[0]
                    survival = float(np.exp(-hazards[-1]))
                    fired += survival < threshold

    return run_minutes


_BUILDERS = {
    "lstm_forward": _make_lstm_forward,
    "lstm_train_step": _make_lstm_train_step,
    "pooling": _make_pooling,
    "train_epoch": _make_train_epoch,
    "synthetic_day": _make_synthetic_day,
}


def run_all(
    tag: str = "fused",
    smoke: bool = False,
    reps: int | None = None,
    cases: tuple[str, ...] | None = None,
) -> BenchReport:
    """Run every microbenchmark in both variants and return the report."""
    sizes = _sizes(smoke)
    if reps is None:
        reps = 1 if smoke else 5
    warmup = 0 if smoke else 1
    report = BenchReport(tag=tag, smoke=smoke, sizes=sizes)
    for case in cases or BENCH_CASES:
        if case == "day_scoring_f32":
            fn = _make_synthetic_day(sizes, fused=True, dtype=np.float32)
            report.add(
                BenchTiming(case, "fused", tuple(time_callable(fn, reps, warmup)))
            )
            continue
        if case == "train_epoch_obs":
            for variant, enabled in (("disabled", False), ("enabled", True)):
                fn = _make_train_epoch_obs(sizes, enabled)
                report.add(
                    BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
                )
            continue
        if case == "serve_minutes":
            # "fused" = batched cross-customer lane, "unfused" = per-customer
            # reference lane — so speedups() reports the batched win directly.
            for variant, batched in (("fused", True), ("unfused", False)):
                fn = _make_serve_minutes(sizes, batched)
                report.add(
                    BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
                )
            continue
        builder = _BUILDERS[case]
        for variant, fused in (("fused", True), ("unfused", False)):
            fn = builder(sizes, fused)
            report.add(
                BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
            )
    return report
