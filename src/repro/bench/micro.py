"""Microbenchmark definitions: fused kernels vs the pre-fusion tape path.

Each case builds identical workloads for the fused and unfused variants
(same seeds, same shapes) and times them with
:func:`repro.bench.harness.time_callable`:

* ``lstm_forward``      — one LSTM forward over the paper's LSTM_long span
  (240 steps) with the autograd tape recording.
* ``lstm_train_step``   — forward + loss + backward + Adam step; the
  headline kernel-fusion number.
* ``pooling``           — AvgPool1D + MaxPool1D forward/backward over a
  long minute series (ragged tail included).
* ``train_epoch``       — one full :class:`XatuTrainer` epoch on a
  synthetic survival sample set (multi-timescale model).
* ``synthetic_day``     — end-to-end scoring of a synthetic day of
  feature minutes: sliding detection-window blocks through
  ``XatuModel.survival_np`` (the graph-free inference lane).
* ``day_scoring_f32``   — the same day under the float32 inference
  policy (fused only; recorded for the trajectory, no speedup ratio).
* ``train_epoch_obs``   — the ``train_epoch`` workload with telemetry
  disabled vs enabled (``repro.obs``); the enabled/disabled ratio bounds
  the instrumentation overhead (<3% budget, see docs/OBSERVABILITY.md).
* ``serve_minutes``     — minute-scoring throughput through the
  :class:`~repro.serve.ServeEngine`: the "fused" variant runs 4 shards on
  the process backend, the "unfused" variant a single inline shard, so
  the speedup column reads as the sharding win.  The merged alert stream
  is identical either way (tests assert it); only the wall-clock moves,
  and only on multi-core hosts — on a single core the process backend
  pays IPC for no parallelism and the ratio honestly dips below 1.

``run_all(smoke=True)`` shrinks every size so the whole suite finishes in
a few seconds — that is what ``make bench`` / CI run to keep the perf
code from rotting.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..nn import LSTM, Adam, AvgPool1D, MaxPool1D, Tensor, set_fused
from .harness import BenchReport, BenchTiming, time_callable

__all__ = ["run_all", "BENCH_CASES"]

BENCH_CASES = (
    "lstm_forward",
    "lstm_train_step",
    "pooling",
    "train_epoch",
    "synthetic_day",
    "day_scoring_f32",
    "train_epoch_obs",
    "serve_minutes",
)


def _sizes(smoke: bool) -> dict[str, dict]:
    if smoke:
        return {
            "lstm": {"batch": 2, "steps": 40, "features": 16, "hidden": 8},
            "pooling": {"batch": 2, "steps": 130, "features": 16, "window": 10},
            "train_epoch": {"n_samples": 8, "batch_size": 4, "n_features": 12},
            "synthetic_day": {"day_minutes": 60, "n_features": 12},
            "serve_minutes": {"customers": 4, "minutes": 2, "flows_per_customer": 2, "shards": 2},
        }
    return {
        # LSTM_long unrolls 240 steps (paper §4/Fig. 6); hidden 32 is the
        # reproduction's default model width.
        "lstm": {"batch": 8, "steps": 240, "features": 64, "hidden": 32},
        "pooling": {"batch": 8, "steps": 1430, "features": 64, "window": 60},
        "train_epoch": {"n_samples": 24, "batch_size": 8, "n_features": 24},
        "synthetic_day": {"day_minutes": 480, "n_features": 24},
        "serve_minutes": {"customers": 16, "minutes": 4, "flows_per_customer": 4, "shards": 4},
    }


def _bench_model_config(n_features: int):
    from ..eval.presets import bench_model_config

    return replace(bench_model_config(), n_features=n_features)


def _synthetic_samples(config, n_samples: int, rng: np.random.Generator):
    """Random survival samples shaped like DatasetBuilder output."""
    from ..core.dataset import SampleSet, SurvivalSample

    lookback = config.lookback_minutes
    samples = [
        SurvivalSample(
            features=rng.normal(size=(lookback, config.n_features)),
            is_attack=bool(k % 2),
            label_time=int(rng.integers(0, config.detect_window)),
            customer_id=k,
            end_minute=lookback + k,
            event_id=k if k % 2 else -1,
        )
        for k in range(n_samples)
    ]
    return SampleSet(samples=samples, scaler=None)


# ----------------------------------------------------------------------
# case builders: return a zero-arg callable for (case, fused?)
# ----------------------------------------------------------------------
def _make_lstm_forward(sizes: dict, fused: bool):
    s = sizes["lstm"]
    rng = np.random.default_rng(0)
    lstm = LSTM(s["features"], s["hidden"], rng=np.random.default_rng(1), fused=fused)
    x = Tensor(rng.normal(size=(s["batch"], s["steps"], s["features"])))
    return lambda: lstm(x)


def _make_lstm_train_step(sizes: dict, fused: bool):
    s = sizes["lstm"]
    rng = np.random.default_rng(0)
    lstm = LSTM(s["features"], s["hidden"], rng=np.random.default_rng(1), fused=fused)
    x = Tensor(rng.normal(size=(s["batch"], s["steps"], s["features"])))
    opt = Adam(lstm.parameters())

    def step():
        opt.zero_grad()
        out, _state = lstm(x)
        (out * out).sum().backward()
        opt.step()

    return step


def _make_pooling(sizes: dict, fused: bool):
    s = sizes["pooling"]
    rng = np.random.default_rng(0)
    avg = AvgPool1D(s["window"], fused=fused)
    mx = MaxPool1D(s["window"], fused=fused)
    x = Tensor(
        rng.normal(size=(s["batch"], s["steps"], s["features"])), requires_grad=True
    )

    def run():
        x.zero_grad()
        (avg(x).sum() + mx(x).sum()).backward()

    return run


def _make_train_epoch(sizes: dict, fused: bool):
    from ..core.model import XatuModel
    from ..core.trainer import TrainConfig, XatuTrainer

    s = sizes["train_epoch"]
    config = _bench_model_config(s["n_features"])
    samples = _synthetic_samples(config, s["n_samples"], np.random.default_rng(2))
    model = XatuModel(config)
    set_fused(model, fused)
    trainer = XatuTrainer(
        model,
        TrainConfig(epochs=1, batch_size=s["batch_size"], learning_rate=1e-3, seed=0),
    )
    return lambda: trainer.fit(samples)


def _make_train_epoch_obs(sizes: dict, enabled: bool):
    """The ``train_epoch`` workload under a telemetry switch state."""
    from ..obs import set_enabled

    fit = _make_train_epoch(sizes, fused=True)

    def run():
        previous = set_enabled(enabled)
        try:
            fit()
        finally:
            set_enabled(previous)

    return run


def _make_synthetic_day(sizes: dict, fused: bool, dtype=None):
    from ..core.model import XatuModel

    s = sizes["synthetic_day"]
    config = _bench_model_config(s["n_features"])
    model = XatuModel(config)
    set_fused(model, fused)
    model.eval()  # deployed detectors score in eval mode
    lookback = config.lookback_minutes
    day = np.random.default_rng(3).normal(
        size=(lookback + s["day_minutes"], config.n_features)
    )

    def score_day():
        # The detector's sliding loop: score each detection-window block of
        # the day from the window of minutes that precedes it.
        for end in range(lookback, day.shape[0] + 1, config.detect_window):
            model.survival_np(day[None, end - lookback : end], dtype=dtype)

    return score_day


def _make_serve_minutes(sizes: dict, sharded: bool):
    """Minute-scoring throughput through the serving engine.

    ``sharded`` runs the configured shard count on the process backend;
    otherwise a single inline shard does all the scoring.  The workload
    (customers, flows, model) is identical, so the ratio isolates the
    sharding/backend cost-benefit.
    """
    from dataclasses import replace as replace_record

    from ..core.model import XatuModel
    from ..core.online import OnlineXatu
    from ..netflow.records import FlowRecord
    from ..netflow.routing import RouteTable
    from ..serve import ServeConfig, ServeEngine
    from ..signals.features import N_FEATURES, FeatureScaler

    s = sizes["serve_minutes"]
    config = _bench_model_config(N_FEATURES)
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(N_FEATURES)
    scaler.std_ = np.ones(N_FEATURES)
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), origin_asn=1)
    customer_of = {10_000 + i: i for i in range(s["customers"])}

    def factory(partition):
        model = XatuModel(config)
        model.eval()
        return OnlineXatu(
            model=model,
            scaler=scaler,
            threshold=0.5,
            customer_of=partition,
            blocklist=set(),
            route_table=route_table,
        )

    engine = ServeEngine(
        factory,
        customer_of,
        ServeConfig(
            shards=s["shards"] if sharded else 1,
            backend="process" if sharded else "inline",
        ),
    )
    rng = np.random.default_rng(4)
    templates = [
        FlowRecord(
            timestamp=0,
            src_addr=int(rng.integers(1, 2**31)),
            dst_addr=address,
            src_port=int(rng.integers(1024, 65535)),
            dst_port=443,
            protocol=6,
            packets=int(rng.integers(1, 50)),
            bytes_=int(rng.integers(100, 50_000)),
        )
        for address in customer_of
        for _ in range(s["flows_per_customer"])
    ]
    clock = {"minute": -1}

    def run_minutes():
        for _ in range(s["minutes"]):
            clock["minute"] += 1
            minute = clock["minute"]
            engine.ingest_flows(
                [replace_record(f, timestamp=minute) for f in templates]
            )
            engine.tick(minute)
            engine.poll_alerts()

    return run_minutes


_BUILDERS = {
    "lstm_forward": _make_lstm_forward,
    "lstm_train_step": _make_lstm_train_step,
    "pooling": _make_pooling,
    "train_epoch": _make_train_epoch,
    "synthetic_day": _make_synthetic_day,
}


def run_all(
    tag: str = "fused",
    smoke: bool = False,
    reps: int | None = None,
    cases: tuple[str, ...] | None = None,
) -> BenchReport:
    """Run every microbenchmark in both variants and return the report."""
    sizes = _sizes(smoke)
    if reps is None:
        reps = 1 if smoke else 5
    warmup = 0 if smoke else 1
    report = BenchReport(tag=tag, smoke=smoke, sizes=sizes)
    for case in cases or BENCH_CASES:
        if case == "day_scoring_f32":
            fn = _make_synthetic_day(sizes, fused=True, dtype=np.float32)
            report.add(
                BenchTiming(case, "fused", tuple(time_callable(fn, reps, warmup)))
            )
            continue
        if case == "train_epoch_obs":
            for variant, enabled in (("disabled", False), ("enabled", True)):
                fn = _make_train_epoch_obs(sizes, enabled)
                report.add(
                    BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
                )
            continue
        if case == "serve_minutes":
            # "fused" = sharded (process backend), "unfused" = one inline
            # shard — so speedups() reports the sharding win directly.
            for variant, sharded in (("fused", True), ("unfused", False)):
                fn = _make_serve_minutes(sizes, sharded)
                report.add(
                    BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
                )
            continue
        builder = _BUILDERS[case]
        for variant, fused in (("fused", True), ("unfused", False)):
            fn = builder(sizes, fused)
            report.add(
                BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
            )
    return report
