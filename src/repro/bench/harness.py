"""Timing harness and versioned result files for the microbenchmarks.

A benchmark run produces a :class:`BenchReport`: per-case wall-clock
timings (every case is measured in a *fused* and an *unfused* variant, so
the pre-fusion baseline is always captured alongside) plus derived
speedups.  Reports serialize to ``BENCH_<tag>.json`` with a format version
and platform provenance; committing one per perf-relevant PR gives the
repo a tracked performance trajectory (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "BENCH_FORMAT_VERSION",
    "DEFAULT_BENCH_DIR",
    "BenchTiming",
    "BenchReport",
    "time_callable",
    "write_bench_json",
    "load_bench_json",
    "compare_to_baseline",
]

BENCH_FORMAT_VERSION = 1
DEFAULT_BENCH_DIR = Path("benchmarks/results")


def time_callable(
    fn: Callable[[], object], reps: int, warmup: int = 1
) -> list[float]:
    """Wall-clock one callable: ``warmup`` throwaway runs, then ``reps``
    timed runs (``time.perf_counter``).  Returns the per-run seconds."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


@dataclass(frozen=True)
class BenchTiming:
    """Timing summary for one (case, variant) pair."""

    name: str
    variant: str  # "fused" | "unfused"
    seconds: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def median(self) -> float:
        return float(np.median(self.seconds))

    @property
    def mean(self) -> float:
        return float(np.mean(self.seconds))

    @property
    def reps(self) -> int:
        return len(self.seconds)

    def to_json(self) -> dict:
        return {
            "best_s": self.best,
            "median_s": self.median,
            "mean_s": self.mean,
            "reps": self.reps,
            "seconds": list(self.seconds),
        }


@dataclass
class BenchReport:
    """All timings from one benchmark invocation."""

    tag: str
    smoke: bool = False
    timings: list[BenchTiming] = field(default_factory=list)
    sizes: dict[str, dict] = field(default_factory=dict)

    def add(self, timing: BenchTiming) -> None:
        self.timings.append(timing)

    def timing(self, name: str, variant: str) -> BenchTiming | None:
        for t in self.timings:
            if t.name == name and t.variant == variant:
                return t
        return None

    def speedups(self) -> dict[str, float]:
        """``unfused_best / fused_best`` per case that has both variants."""
        out: dict[str, float] = {}
        for name in sorted({t.name for t in self.timings}):
            fused = self.timing(name, "fused")
            unfused = self.timing(name, "unfused")
            if fused and unfused and fused.best > 0:
                out[name] = unfused.best / fused.best
        return out

    def obs_overheads(self) -> dict[str, float]:
        """Fractional telemetry cost per case with enabled/disabled variants
        (``enabled_best / disabled_best - 1``; 0.03 means +3%)."""
        out: dict[str, float] = {}
        for name in sorted({t.name for t in self.timings}):
            enabled = self.timing(name, "enabled")
            disabled = self.timing(name, "disabled")
            if enabled and disabled and disabled.best > 0:
                out[name] = enabled.best / disabled.best - 1.0
        return out

    def render(self) -> str:
        """Human-readable table: case, fused, pre-fusion baseline, speedup."""
        speedups = self.speedups()
        rows = []
        for name in sorted({t.name for t in self.timings}):
            fused = self.timing(name, "fused")
            unfused = self.timing(name, "unfused")
            if fused is None and unfused is None:
                continue  # obs-overhead cases render separately below
            rows.append(
                (
                    name,
                    f"{fused.best * 1e3:9.2f}" if fused else "      n/a",
                    f"{unfused.best * 1e3:9.2f}" if unfused else "      n/a",
                    f"{speedups[name]:6.1f}x" if name in speedups else "    n/a",
                )
            )
        header = f"{'benchmark':<24} {'fused ms':>9} {'unfused ms':>10} {'speedup':>7}"
        lines = [header, "-" * len(header)]
        for name, fused_ms, unfused_ms, speedup in rows:
            lines.append(f"{name:<24} {fused_ms:>9} {unfused_ms:>10} {speedup:>7}")
        overheads = self.obs_overheads()
        if overheads:
            lines.append("")
            lines.append("telemetry overhead (enabled vs disabled):")
            for name, frac in overheads.items():
                enabled = self.timing(name, "enabled")
                disabled = self.timing(name, "disabled")
                lines.append(
                    f"  {name:<22} {disabled.best * 1e3:9.2f} ms -> "
                    f"{enabled.best * 1e3:9.2f} ms  ({frac:+.1%})"
                )
        return "\n".join(lines)


def write_bench_json(report: BenchReport, path: str | Path) -> Path:
    """Serialize a report to ``<path>/BENCH_<tag>.json`` (versioned)."""
    from ..obs.export import host_metadata

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    out = path / f"BENCH_{report.tag}.json"
    payload = {
        "format_version": BENCH_FORMAT_VERSION,
        "tag": report.tag,
        "smoke": report.smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "host": host_metadata(),
        "sizes": report.sizes,
        "benchmarks": {
            f"{t.name}/{t.variant}": t.to_json() for t in report.timings
        },
        "speedups": report.speedups(),
        "obs_overheads": report.obs_overheads(),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def load_bench_json(path: str | Path) -> dict:
    """Load and version-check a ``BENCH_<tag>.json`` file."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != BENCH_FORMAT_VERSION:
        raise ValueError(
            f"bench file {path} has format_version {version!r}; this code "
            f"understands {BENCH_FORMAT_VERSION}"
        )
    return payload


def compare_to_baseline(
    report: BenchReport,
    baseline: dict,
    tolerance: float = 0.5,
) -> tuple[list[str], list[str]]:
    """Compare a fresh report against a committed ``BENCH_<tag>.json``.

    Returns ``(warnings, failures)``.  A case regresses when its best time
    exceeds the baseline's by more than ``tolerance`` (0.5 = 50% slower).
    Host mismatches (different interpreter/numpy/machine than the machine
    that wrote the baseline) demote every regression to a warning — timing
    baselines are only comparable on like hardware — and so do smoke-mode
    runs, whose single-rep timings are documented noise.  Cases whose
    workload sizes differ from the baseline's are skipped with a warning.
    """
    from ..obs.export import host_metadata

    warnings: list[str] = []
    failures: list[str] = []

    baseline_host = baseline.get("host") or baseline.get("platform") or {}
    here = host_metadata()
    mismatched = [
        key
        for key in ("python", "numpy", "machine")
        if key in baseline_host and baseline_host[key] != here.get(key)
    ]
    host_matches = not mismatched
    if mismatched:
        detail = ", ".join(
            f"{k}: baseline {baseline_host[k]} vs here {here.get(k)}"
            for k in mismatched
        )
        warnings.append(
            f"host differs from baseline ({detail}); regressions reported "
            "as warnings only"
        )
    if bool(baseline.get("smoke")) != report.smoke:
        warnings.append(
            "smoke flag differs from baseline; timings are not comparable"
        )
        host_matches = False
    elif report.smoke:
        # Smoke timings are single-rep, no-warmup, and documented as
        # meaningless (docs/PERFORMANCE.md) — a 50% swing on a sub-ms
        # measurement is noise, not a regression.
        warnings.append(
            "both runs are smoke mode; regressions reported as warnings only"
        )
        host_matches = False

    baseline_sizes = baseline.get("sizes", {})
    baseline_benchmarks = baseline.get("benchmarks", {})
    for timing in report.timings:
        key = f"{timing.name}/{timing.variant}"
        entry = baseline_benchmarks.get(key)
        if entry is None:
            warnings.append(f"{key}: no baseline entry; skipped")
            continue
        size_key = next(
            (k for k in baseline_sizes if timing.name.startswith(k)), None
        )
        if (
            size_key is not None
            and size_key in report.sizes
            and baseline_sizes[size_key] != report.sizes[size_key]
        ):
            warnings.append(f"{key}: workload sizes differ; skipped")
            continue
        base_best = float(entry["best_s"])
        if base_best <= 0:
            continue
        ratio = timing.best / base_best
        if ratio > 1.0 + tolerance:
            message = (
                f"{key}: {timing.best * 1e3:.2f} ms vs baseline "
                f"{base_best * 1e3:.2f} ms ({ratio:.2f}x slower)"
            )
            (failures if host_matches else warnings).append(message)
    return warnings, failures
