"""Ingest benchmarks: the columnar NetFlow path vs the scalar baseline.

Each case times the zero-copy columnar lane ("fused") against the
per-record scalar lane it replaced ("unfused") on identical, seeded
workloads — the same convention as :mod:`repro.bench.micro`, so the
``speedups()`` column reads as the columnar win directly:

* ``datagram_decode``  — header + record-block parse of a stream of
  export datagrams: one ``np.frombuffer`` view per datagram
  (:meth:`DatagramCodec.decode_batch`) vs per-record ``struct`` unpacking
  (:meth:`DatagramCodec.decode`).
* ``matrix_aggregate`` — folding already-decoded flows into a
  :class:`TrafficMatrix`: one sorted group-by ``add_batch`` per datagram
  vs one ``add_flow`` per record.  Both paths produce bit-identical
  matrices (``tests/test_columnar.py`` proves it differentially).
* ``ingest_flows``     — the headline end-to-end number: wire datagrams →
  decoded flows → aggregated matrix, columnar vs scalar.  Flows/sec is
  ``sizes["ingest"]["flows"] / best_s``.
* ``sampler``          — binomial packet sampling of a ground-truth batch:
  one vectorized ``rng.binomial`` draw (:meth:`PacketSampler.sample_batch`)
  vs one scalar draw per flow.  Same seed ⇒ identical kept counts.
* ``ingest_obs``       — the ``ingest_flows`` columnar workload with
  telemetry disabled vs enabled, extending the instrumentation-overhead
  budget (docs/OBSERVABILITY.md) to the ingest path.
* ``serve_shards``     — one serving minute end to end through
  :class:`~repro.serve.ServeEngine`: "fused" is 4 process-backend shards
  over the shared-memory transport, "unfused" is 1 inline shard.  On a
  multi-core host the process fan-out wins; on a single-core host the
  transport overhead shows up honestly as a <1x "speedup" (see
  docs/PERFORMANCE.md for the reading).

``run_ingest(smoke=True)`` shrinks every size so the suite finishes in a
few seconds — what ``make bench-ingest``/CI run to keep this path from
rotting.
"""

from __future__ import annotations

import os

import numpy as np

from .harness import BenchReport, BenchTiming, time_callable

__all__ = ["run_ingest", "INGEST_BENCH_CASES"]

INGEST_BENCH_CASES = (
    "datagram_decode",
    "matrix_aggregate",
    "ingest_flows",
    "sampler",
    "ingest_obs",
    "serve_shards",
)


def _sizes(smoke: bool) -> dict[str, dict]:
    if smoke:
        return {
            "ingest": {"flows": 600, "flows_per_datagram": 200, "customers": 6},
            "sampler": {"flows": 500, "rate": 100},
            "serve_shards": {
                "minutes": 2,
                "flows_per_minute": 400,
                "customers": 8,
                "shards": 4,
            },
        }
    return {
        # ~40k flows per rep keeps the scalar baseline measurable in
        # seconds while the columnar lane stays well within one.
        "ingest": {"flows": 40_000, "flows_per_datagram": 2_000, "customers": 50},
        "sampler": {"flows": 50_000, "rate": 100},
        "serve_shards": {
            "minutes": 4,
            "flows_per_minute": 10_000,
            "customers": 64,
            "shards": 4,
        },
    }


def _flow_array(
    n: int,
    customers: np.ndarray,
    rng: np.random.Generator,
    minute: int | None = None,
):
    """One seeded structured flow array addressed at ``customers``.

    ``minute`` pins every record's timestamp, matching real collection
    where one export datagram carries one minute of flows.
    """
    from ..netflow.records import FLOW_DTYPE

    arr = np.zeros(n, dtype=FLOW_DTYPE)
    arr["timestamp"] = rng.integers(0, 30, size=n) if minute is None else minute
    arr["src_addr"] = rng.integers(1, 2**28, size=n)
    arr["dst_addr"] = rng.choice(customers, size=n)
    arr["src_port"] = rng.choice([53, 80, 123, 443, 11211, 17000], size=n)
    arr["dst_port"] = rng.choice([53, 80, 443, 8080, 40000], size=n)
    arr["protocol"] = rng.choice([1, 6, 17], size=n)
    arr["tcp_flags"] = rng.integers(0, 64, size=n)
    arr["packets"] = rng.integers(1, 2_000, size=n)
    arr["bytes"] = rng.integers(40, 3_000_000, size=n)
    arr["sampling_rate"] = rng.choice([1, 100, 1000], size=n)
    arr["src_country"] = rng.choice(
        np.array([b"US", b"CN", b"DE", b"BR", b"RU", b"XX"]), size=n
    )
    return arr


def _ingest_workload(sizes: dict):
    """Encoded export datagrams + the address universe they target."""
    from ..netflow.datagram import DatagramCodec
    from ..netflow.records import FlowBatch

    s = sizes["ingest"]
    rng = np.random.default_rng(10)
    addresses = np.arange(50_000, 50_000 + s["customers"], dtype=np.int64)
    codec = DatagramCodec(engine_id=1)
    datagrams = []
    remaining = s["flows"]
    minute = 0
    while remaining > 0:
        n = min(remaining, s["flows_per_datagram"])
        datagrams.append(
            codec.encode(FlowBatch(_flow_array(n, addresses, rng, minute=minute)))
        )
        remaining -= n
        minute += 1
    return datagrams, addresses


def _make_datagram_decode(sizes: dict, fused: bool):
    from ..netflow.datagram import DatagramCodec

    datagrams, _ = _ingest_workload(sizes)
    if fused:
        return lambda: [DatagramCodec.decode_batch(blob) for blob in datagrams]
    return lambda: [DatagramCodec.decode(blob) for blob in datagrams]


def _decoded_batches(sizes: dict):
    from ..netflow.datagram import DatagramCodec

    datagrams, addresses = _ingest_workload(sizes)
    batches = [DatagramCodec.decode_batch(blob)[1] for blob in datagrams]
    customer_of = {int(addr): i for i, addr in enumerate(addresses)}
    return batches, customer_of


def _make_matrix_aggregate(sizes: dict, fused: bool):
    from ..netflow.matrix import SOURCE_CLASS_BLOCKLIST, TrafficMatrix

    batches, customer_of = _decoded_batches(sizes)
    if fused:
        staged = [
            (
                np.fromiter(
                    (customer_of[int(d)] for d in b.array["dst_addr"]),
                    dtype=np.int64,
                    count=len(b),
                ),
                b,
                {SOURCE_CLASS_BLOCKLIST: b.array["src_addr"] % 7 == 0},
            )
            for b in batches
        ]

        def run():
            matrix = TrafficMatrix()
            for cust, batch, masks in staged:
                matrix.add_batch(cust, batch, masks)
            return matrix

        return run

    staged_records = [
        [
            (
                customer_of[record.dst_addr],
                record,
                [SOURCE_CLASS_BLOCKLIST] if record.src_addr % 7 == 0 else [],
            )
            for record in b.to_records()
        ]
        for b in batches
    ]

    def run_scalar():
        matrix = TrafficMatrix()
        for records in staged_records:
            for customer_id, record, classes in records:
                matrix.add_flow(customer_id, record, classes)
        return matrix

    return run_scalar


def _make_ingest_flows(sizes: dict, fused: bool):
    """Wire datagrams → decoded flows → aggregated matrix, end to end."""
    from ..netflow.datagram import DatagramCodec
    from ..netflow.matrix import TrafficMatrix

    datagrams, addresses = _ingest_workload(sizes)
    customer_of = {int(addr): i for i, addr in enumerate(addresses)}

    if fused:
        # Vectorized routing, the same sorted-searchsorted idiom the
        # serving engine and OnlineXatu use on their columnar lanes.
        cids = np.arange(len(addresses), dtype=np.int64)

        def run():
            matrix = TrafficMatrix()
            for blob in datagrams:
                _header, batch = DatagramCodec.decode_batch(blob)
                pos = np.searchsorted(
                    addresses, batch.array["dst_addr"].astype(np.int64)
                )
                matrix.add_batch(cids[pos], batch, {})
            return matrix

        return run

    def run_scalar():
        matrix = TrafficMatrix()
        for blob in datagrams:
            _header, records = DatagramCodec.decode(blob)
            for record in records:
                matrix.add_flow(customer_of[record.dst_addr], record, [])
        return matrix

    return run_scalar


def _make_sampler(sizes: dict, fused: bool):
    from ..netflow.records import FlowBatch
    from ..netflow.sampler import PacketSampler

    s = sizes["sampler"]
    rng = np.random.default_rng(11)
    addresses = np.arange(50_000, 50_010, dtype=np.int64)
    batch = FlowBatch(_flow_array(s["flows"], addresses, rng))
    records = batch.to_records()

    if fused:

        def run():
            sampler = PacketSampler(s["rate"], rng=np.random.default_rng(12))
            return sampler.sample_batch(batch)

        return run

    def run_scalar():
        sampler = PacketSampler(s["rate"], rng=np.random.default_rng(12))
        return [kept for kept in map(sampler.sample, records) if kept is not None]

    return run_scalar


def _make_ingest_obs(sizes: dict, enabled: bool):
    """The full columnar ingest path under a telemetry switch state.

    Collection *and* aggregation — the overhead budget is judged against
    the work a real minute of ingest always does, not against the bare
    (sub-millisecond) decode.
    """
    from ..netflow.matrix import TrafficMatrix
    from ..netflow.sampler import FlowCollector
    from ..obs import set_enabled

    datagrams, addresses = _ingest_workload(sizes)
    cids = np.arange(len(addresses), dtype=np.int64)

    def run():
        previous = set_enabled(enabled)
        try:
            collector = FlowCollector()
            matrix = TrafficMatrix()
            for blob in datagrams:
                batch = collector.ingest_datagram_batch(blob)
                pos = np.searchsorted(
                    addresses, batch.array["dst_addr"].astype(np.int64)
                )
                matrix.add_batch(cids[pos], batch, {})
            collector.drain_batch()
        finally:
            set_enabled(previous)

    return run


class _TransportProbe:
    """Minimal shard detector: consumes the payload, emits no alerts.

    Keeps the ``serve_shards`` case a *transport* benchmark — partition,
    ship, decode — rather than a model-inference one.
    """

    def __init__(self) -> None:
        self.bytes_seen = 0

    def ingest_cdet_alert(self, record) -> None:  # pragma: no cover - unused
        pass

    def ingest_mitigation_end(self, customer_id, minute) -> None:  # pragma: no cover
        pass

    def step(self, minute, flows):
        from ..netflow.records import FlowBatch

        if isinstance(flows, FlowBatch):
            self.bytes_seen += int(flows.array["bytes"].astype(np.int64).sum())
        else:
            self.bytes_seen += sum(f.bytes_ for f in flows)
        return []

    def state_dict(self) -> dict:
        return {"bytes_seen": self.bytes_seen}

    def load_state_dict(self, state: dict) -> None:
        self.bytes_seen = int(state["bytes_seen"])

    def reset(self) -> None:
        self.bytes_seen = 0


def _make_serve_shards(sizes: dict, fused: bool):
    """One serving minute through the engine; returns (callable, engine)."""
    from ..netflow.datagram import DatagramCodec
    from ..netflow.records import FlowBatch
    from ..serve import ServeConfig, ServeEngine

    s = sizes["serve_shards"]
    rng = np.random.default_rng(13)
    addresses = np.arange(50_000, 50_000 + s["customers"], dtype=np.int64)
    customer_of = {int(addr): i for i, addr in enumerate(addresses)}
    codec = DatagramCodec(engine_id=1)
    minutes = [
        codec.encode(FlowBatch(_flow_array(s["flows_per_minute"], addresses, rng)))
        for _ in range(s["minutes"])
    ]
    config = (
        ServeConfig(shards=s["shards"], backend="process", transport="shm")
        if fused
        else ServeConfig(shards=1, backend="inline")
    )
    engine = ServeEngine(lambda partition: _TransportProbe(), customer_of, config)
    clock = {"minute": -1}

    def run():
        for blob in minutes:
            clock["minute"] += 1
            engine.ingest_datagram(blob)
            engine.tick(clock["minute"])

    return run, engine


def run_ingest(
    tag: str = "ingest",
    smoke: bool = False,
    reps: int | None = None,
    cases: tuple[str, ...] | None = None,
) -> BenchReport:
    """Run the ingest benchmarks in both variants and return the report."""
    sizes = _sizes(smoke)
    if reps is None:
        reps = 1 if smoke else 5
    warmup = 0 if smoke else 1
    report = BenchReport(tag=tag, smoke=smoke, sizes=sizes)
    builders = {
        "datagram_decode": _make_datagram_decode,
        "matrix_aggregate": _make_matrix_aggregate,
        "ingest_flows": _make_ingest_flows,
        "sampler": _make_sampler,
    }
    for case in cases or INGEST_BENCH_CASES:
        if case == "ingest_obs":
            for variant, enabled in (("disabled", False), ("enabled", True)):
                fn = _make_ingest_obs(sizes, enabled)
                report.add(
                    BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
                )
            continue
        if case == "serve_shards":
            # "fused" = 4 process shards over shm, "unfused" = 1 inline
            # shard — speedups() reads as the fan-out win (or, honestly,
            # the transport cost on a single-core host).  The core count
            # is stamped into the result so a committed number can never
            # silently masquerade as the parallel measurement: `parallel`
            # is only true when the host had at least one core per shard
            # (docs/PERFORMANCE.md documents the multi-core procedure).
            cpu_count = os.cpu_count() or 1
            sizes["serve_shards"]["cpu_count"] = cpu_count
            sizes["serve_shards"]["parallel"] = (
                cpu_count >= sizes["serve_shards"]["shards"]
            )
            for variant, fused in (("fused", True), ("unfused", False)):
                fn, engine = _make_serve_shards(sizes, fused)
                try:
                    report.add(
                        BenchTiming(
                            case, variant, tuple(time_callable(fn, reps, warmup))
                        )
                    )
                finally:
                    engine.close()
            continue
        builder = builders[case]
        for variant, fused in (("fused", True), ("unfused", False)):
            fn = builder(sizes, fused)
            report.add(
                BenchTiming(case, variant, tuple(time_callable(fn, reps, warmup)))
            )
    return report
