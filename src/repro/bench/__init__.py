"""Tracked microbenchmarks for the nn fast path (``python -m repro.cli bench``).

The harness times every case in a fused and an unfused (pre-fusion
baseline) variant and writes versioned ``BENCH_<tag>.json`` files so the
repo's performance trajectory is reviewable PR over PR.  See
docs/PERFORMANCE.md for methodology and baseline numbers.
"""

from .harness import (
    BENCH_FORMAT_VERSION,
    DEFAULT_BENCH_DIR,
    BenchReport,
    BenchTiming,
    compare_to_baseline,
    load_bench_json,
    time_callable,
    write_bench_json,
)
from .ingest import INGEST_BENCH_CASES, run_ingest
from .micro import BENCH_CASES, run_all
from .scale import (
    SCALE_CELLS,
    compare_scale,
    load_scale_json,
    run_scale,
    scale_gate,
    write_scale_json,
)

__all__ = [
    "BENCH_FORMAT_VERSION",
    "DEFAULT_BENCH_DIR",
    "BenchReport",
    "BenchTiming",
    "BENCH_CASES",
    "INGEST_BENCH_CASES",
    "run_all",
    "run_ingest",
    "SCALE_CELLS",
    "run_scale",
    "scale_gate",
    "compare_scale",
    "write_scale_json",
    "load_scale_json",
    "time_callable",
    "write_bench_json",
    "load_bench_json",
    "compare_to_baseline",
]
