"""Signal censuses: Figures 4a, 4b, 4c/16, 15 and Table 2.

These experiments do not train anything — they measure the empirical
regularities in the (synthetic) trace that motivate each auxiliary signal:

* **Fig 4a** — per attack, the fraction of its attackers that previously
  appeared on blocklists / attacked the same customer / were spoofed.
* **Fig 4b** — the attack-type transition matrix over consecutive attacks
  on the same customer.
* **Fig 4c / Fig 16** — bipartite attacker-customer clustering coefficients
  approaching detections.
* **Fig 15** — per day in the 10-day lookback, the fraction of eventual
  attackers already active, by signal.
* **Table 2** — attack counts per type per chronological split.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from ..netflow.routing import RouteTable
from ..signals.clustering import AttackerCustomerGraph
from ..synth.attacks import AttackType
from ..synth.scenario import Trace

__all__ = [
    "PrepSignalCensus",
    "prep_signal_census",
    "transition_matrix",
    "attacker_activity_by_day",
    "clustering_timeline",
    "split_table",
]


@dataclass(frozen=True, slots=True)
class PrepSignalCensus:
    """Per-event fractions of attackers with each prior signal (Fig 4a)."""

    event_id: int
    blocklisted_fraction: float
    previous_attacker_fraction: float
    spoofed_fraction: float


def prep_signal_census(trace: Trace) -> list[PrepSignalCensus]:
    """For each attack, what fraction of its attackers carried each signal."""
    blocklisted = trace_blocklisted(trace)
    route_table = trace.world.route_table
    seen_attackers: dict[int, set[int]] = defaultdict(set)
    results: list[PrepSignalCensus] = []
    for event in sorted(trace.events, key=lambda e: e.onset):
        attackers = event.attackers
        if not attackers:
            continue
        n = len(attackers)
        n_block = sum(1 for a in attackers if a in blocklisted)
        n_prev = sum(1 for a in attackers if a in seen_attackers[event.customer_id])
        n_spoof = sum(1 for a in attackers if route_table.is_spoofed(a))
        results.append(
            PrepSignalCensus(
                event_id=event.event_id,
                blocklisted_fraction=n_block / n,
                previous_attacker_fraction=n_prev / n,
                spoofed_fraction=n_spoof / n,
            )
        )
        seen_attackers[event.customer_id] |= attackers
    return results


def trace_blocklisted(trace: Trace) -> set[int]:
    """Ground-truth blocklisted sources of the trace's world."""
    listed: set[int] = set()
    for botnet in trace.world.botnets:
        listed.update(int(a) for a in botnet.blocklisted_members)
    return listed


def transition_matrix(trace: Trace) -> tuple[np.ndarray, list[AttackType], int]:
    """Row-normalized attack-type transition counts (Fig 4b).

    Returns (matrix, type order, number of consecutive pairs).  The paper
    observes 97.9% of consecutive pairs repeat the same type.
    """
    types = list(AttackType)
    index = {t: i for i, t in enumerate(types)}
    counts = np.zeros((len(types), len(types)))
    pairs = 0
    by_customer: dict[int, list] = defaultdict(list)
    for event in sorted(trace.events, key=lambda e: e.onset):
        by_customer[event.customer_id].append(event.attack_type)
    for sequence in by_customer.values():
        for prev_type, next_type in zip(sequence, sequence[1:]):
            counts[index[prev_type], index[next_type]] += 1
            pairs += 1
    row_sums = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.where(row_sums > 0, counts / row_sums, 0.0)
    return matrix, types, pairs


def same_type_share(trace: Trace) -> float:
    """Count-weighted fraction of consecutive same-type pairs (Fig 4b).

    This is the paper's 97.9% statistic: same-type pairs over all
    consecutive pairs, pooled across customers.
    """
    same = 0
    total = 0
    by_customer: dict[int, list] = defaultdict(list)
    for event in sorted(trace.events, key=lambda e: e.onset):
        by_customer[event.customer_id].append(event.attack_type)
    for sequence in by_customer.values():
        for prev_type, next_type in zip(sequence, sequence[1:]):
            total += 1
            if prev_type == next_type:
                same += 1
    return same / total if total else 0.0


def attacker_activity_by_day(
    trace: Trace, days_back: int | None = None
) -> dict[str, np.ndarray]:
    """Fig 15: median fraction of eventual attackers active on day -k.

    For each attack and each day k before its onset, measure the fraction
    of its eventual attackers that sent *any* traffic to the victim that
    day, split by signal class (blocklisted / previous attackers /
    spoofed).  Returns per-signal arrays indexed day -days_back .. -1.

    Activity is approximated from the per-class traffic matrix: a class is
    counted active in proportion to the unique-source counts observed that
    day, capped by the attacker-set size.
    """
    cfg = trace.config
    days_back = days_back or int(cfg.prep_days)
    mpd = cfg.minutes_per_day
    blocklisted = trace_blocklisted(trace)
    route_table = trace.world.route_table
    seen: dict[int, set[int]] = defaultdict(set)

    fractions: dict[str, list[list[float]]] = {
        "blocklist": [[] for _ in range(days_back)],
        "previous": [[] for _ in range(days_back)],
        "spoofed": [[] for _ in range(days_back)],
    }
    for event in sorted(trace.events, key=lambda e: e.onset):
        groups = {
            "blocklist": {a for a in event.attackers if a in blocklisted},
            "previous": {a for a in event.attackers if a in seen[event.customer_id]},
            "spoofed": {a for a in event.attackers if route_table.is_spoofed(a)},
        }
        for day in range(1, days_back + 1):
            lo = event.onset - day * mpd
            hi = lo + mpd
            if lo < 0:
                continue
            # Sources active toward this customer that day.
            active: set[int] = set()
            for minute in range(lo, hi):
                cell = trace.matrix.cell(event.customer_id, minute)
                if cell is not None:
                    active |= cell._sources
            for name, members in groups.items():
                if members:
                    frac = len(members & active) / len(members)
                    fractions[name][day - 1].append(frac)
        seen[event.customer_id] |= event.attackers
    return {
        name: np.array(
            [float(np.median(day_vals)) if day_vals else 0.0 for day_vals in per_day]
        )
        for name, per_day in fractions.items()
    }


def clustering_timeline(
    trace: Trace,
    minutes_before: list[int] | None = None,
    window_minutes: int = 60,
) -> dict[int, np.ndarray]:
    """Fig 16: median clustering coefficient at minutes before detection.

    Builds the attacker-customer graph from the event stream, then samples
    each event's victim coefficient at the given offsets before the event
    end (detection proxy).  Returns {offset: (cc_dot, cc_min, cc_max)}.
    """
    minutes_before = minutes_before or [15, 10, 5, 0]
    graph = AttackerCustomerGraph(window_minutes=window_minutes)
    for event in sorted(trace.events, key=lambda e: e.onset):
        graph.add_alert(event.onset, event.customer_id, frozenset(event.attackers))
    samples: dict[int, list[np.ndarray]] = {m: [] for m in minutes_before}
    for event in trace.events:
        for offset in minutes_before:
            minute = event.end - offset
            if minute < 0:
                continue
            coeff = graph.features_at(event.customer_id, minute)
            if coeff.any():
                samples[offset].append(coeff)
    return {
        offset: (
            np.median(np.stack(vals), axis=0) if vals else np.zeros(3)
        )
        for offset, vals in samples.items()
    }


def split_table(
    trace: Trace, split_fractions: tuple[float, float, float] = (0.5, 0.2, 0.3)
) -> dict[str, dict[str, int]]:
    """Table 2: attack counts per type per chronological split."""
    a, b, _c = split_fractions
    t1 = int(trace.horizon * a)
    t2 = int(trace.horizon * (a + b))
    table: dict[str, dict[str, int]] = {
        t.value: {"train": 0, "val": 0, "test": 0} for t in AttackType
    }
    for event in trace.events:
        if event.onset < t1:
            split = "train"
        elif event.onset < t2:
            split = "val"
        else:
            split = "test"
        table[event.attack_type.value][split] += 1
    return table
