"""Figure 13: robustness to smart (volume- and rate-changing) attackers.

Attackers that shrink their ramp-up volume or change the ramp rate dR can
delay purely volumetric detectors; Xatu's auxiliary signals are unaffected
(prep activity does not depend on the flood's shape), so Xatu's detection
delay stays near zero while "Xatu without auxiliary signals" degrades.

Each sweep point regenerates the trace with the smart-attacker knobs of
:class:`~repro.synth.ScenarioConfig` (same seed — same campaign schedule,
different flood shape), trains both Xatu variants, and reports median
effectiveness and delay, mirroring Figures 13(a)-(d).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.pipeline import PipelineConfig, XatuPipeline
from ..synth.scenario import TraceGenerator

__all__ = ["RobustnessPoint", "run_volume_sweep", "run_rate_sweep"]


@dataclass(frozen=True, slots=True)
class RobustnessPoint:
    """One (knob value, variant) measurement of Figure 13."""

    knob: str
    value: float
    variant: str  # "xatu" or "xatu_no_aux"
    effectiveness_median: float
    effectiveness_p90: float
    delay_median: float
    delay_p90: float


def _run_variants(
    config: PipelineConfig, knob: str, value: float
) -> list[RobustnessPoint]:
    trace = TraceGenerator(config.scenario).materialize()
    points = []
    for variant, groups in (
        ("xatu", None),
        ("xatu_no_aux", frozenset({"V"})),
    ):
        cfg = replace(config, enabled_groups=groups)
        result = XatuPipeline(cfg, trace=trace).run()
        points.append(
            RobustnessPoint(
                knob=knob,
                value=value,
                variant=variant,
                effectiveness_median=result.effectiveness.median,
                effectiveness_p90=result.effectiveness.high,
                delay_median=result.delay.median,
                delay_p90=result.delay.high,
            )
        )
    return points


def run_volume_sweep(
    config: PipelineConfig, scales: list[float] | None = None
) -> list[RobustnessPoint]:
    """Figure 13(a)/(b): shrink ramp-up volume by each scale factor."""
    scales = scales or [1.0, 0.75, 0.5, 0.25]
    points: list[RobustnessPoint] = []
    for scale in scales:
        cfg = replace(
            config, scenario=replace(config.scenario, rampup_volume_scale=scale)
        )
        points.extend(_run_variants(cfg, "rampup_volume_scale", scale))
    return points


def run_rate_sweep(
    config: PipelineConfig, rates: list[float] | None = None
) -> list[RobustnessPoint]:
    """Figure 13(c)/(d): pin the ramp rate dR to each value."""
    rates = rates or [0.5, 1.5, 2.5]
    points: list[RobustnessPoint] = []
    for rate in rates:
        cfg = replace(config, scenario=replace(config.scenario, ramp_rate=rate))
        points.extend(_run_variants(cfg, "ramp_rate", rate))
    return points
