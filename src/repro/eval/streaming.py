"""Drive any protocol detector over a replayed trace.

The :class:`~repro.detect.Detector` protocol makes the incumbent CDet
simulators and Xatu's streaming mode interchangeable; this module is the
eval-side driver that exploits that — one loop, any detector, a replayed
:class:`~repro.synth.Trace` as the live feed.
"""

from __future__ import annotations

from ..detect.api import Alert, Detector, drive
from ..synth.replay import TraceReplayer
from ..synth.scenario import Trace

__all__ = ["stream_trace"]


def stream_trace(
    detector: Detector,
    trace: Trace,
    start_minute: int = 0,
    end_minute: int | None = None,
    seed: int = 0,
) -> list[Alert]:
    """Stream a trace minute-by-minute through any protocol detector.

    Reconstructs each minute's flows with :class:`TraceReplayer` and feeds
    them via the protocol (``observe_minute`` / ``poll_alerts``),
    returning every alert emitted over the range.
    """
    replay = TraceReplayer(trace, seed=seed).replay(start_minute, end_minute)
    return drive(detector, replay)
