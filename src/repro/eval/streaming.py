"""Drive any protocol detector over a streamed trace.

The :class:`~repro.detect.Detector` protocol makes the incumbent CDet
simulators and Xatu's streaming mode interchangeable; this module is the
eval-side driver that exploits that — one loop, any detector, any
:class:`~repro.synth.TraceSource` (a live streaming generator, a
:class:`~repro.synth.TraceReplayer`, or a materialized
:class:`~repro.synth.Trace`, coerced through the same protocol) as the
live feed.
"""

from __future__ import annotations

from ..detect.api import Alert, Detector, drive
from ..synth.scenario import Trace
from ..synth.stream import TraceSource, as_trace_source

__all__ = ["stream_trace"]


def stream_trace(
    detector: Detector,
    trace: Trace | TraceSource,
    start_minute: int = 0,
    end_minute: int | None = None,
    seed: int = 0,
) -> list[Alert]:
    """Stream a trace minute-by-minute through any protocol detector.

    Accepts a materialized :class:`Trace` (wrapped in a replaying
    :class:`~repro.synth.MaterializedTraceSource`, reconstructing each
    minute's flows from the matrix) or any :class:`TraceSource` directly;
    feeds the minutes via the protocol (``observe_minute`` /
    ``poll_alerts``) and returns every alert emitted over the range.
    """
    source = as_trace_source(trace, seed=seed)
    minutes = (
        (sl.minute, sl.records)
        for sl in source.iter_minutes(start_minute, end_minute)
    )
    return drive(detector, minutes)
