"""Figure 17: contribution of individual A1 blocklist categories.

The paper splits the A1 signal by blocklist category (DDoS-source, bot,
scanner, ... — 11 categories) and measures the effectiveness improvement
each category alone brings over the no-A1 baseline.  Here the A1 split of
the traffic matrix is re-tagged per category (the trace is regenerated
with a category-restricted membership set), then the standard pipeline
runs with groups {V, A1}.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.pipeline import PipelineConfig, XatuPipeline
from ..signals.blocklists import BLOCKLIST_CATEGORIES, BlocklistDirectory
from ..synth.scenario import TraceGenerator

__all__ = ["CategoryResult", "run_blocklist_breakdown"]


@dataclass(frozen=True, slots=True)
class CategoryResult:
    category: str
    effectiveness_p10: float
    effectiveness_median: float
    n_listed_subnets: int


class _CategoryMembership:
    """Membership adapter: `addr in m` checks one blocklist category."""

    def __init__(self, directory: BlocklistDirectory, category: str | None) -> None:
        self._directory = directory
        self._category = category

    def __contains__(self, addr: int) -> bool:
        return self._directory.is_listed(addr, self._category)


def run_blocklist_breakdown(
    config: PipelineConfig,
    categories: list[str] | None = None,
    recall: float = 0.85,
) -> list[CategoryResult]:
    """Per-category pipelines with A1 restricted to that category."""
    categories = categories or list(BLOCKLIST_CATEGORIES[:4])
    # Build the category-structured directory once from the world ground
    # truth (same seed -> same world across runs).
    base_gen = TraceGenerator(config.scenario)
    malicious = set(base_gen.blocklisted_addrs)
    for botnet in base_gen.world.botnets:
        malicious.update(int(a) for a in botnet.members)
    directory = BlocklistDirectory.from_ground_truth(
        malicious,
        benign_addrs=base_gen.world.benign_clients,
        recall=recall,
        rng=np.random.default_rng(config.seed),
    )
    sizes = directory.category_sizes()

    results: list[CategoryResult] = []
    for category in [None, *categories]:
        membership = _CategoryMembership(directory, category)
        trace = TraceGenerator(config.scenario, blocklist_membership=membership).materialize()
        cfg = replace(config, enabled_groups=frozenset({"V", "A1"}))
        outcome = XatuPipeline(cfg, trace=trace).run()
        results.append(
            CategoryResult(
                category=category or "all_categories",
                effectiveness_p10=outcome.effectiveness.low,
                effectiveness_median=outcome.effectiveness.median,
                n_listed_subnets=sizes.get(category, len(directory)) if category else len(directory),
            )
        )
    return results
