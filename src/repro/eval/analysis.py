"""Post-hoc analyses: false-positive inspection (§6.1) and generality (§8).

* :func:`classify_false_positives` — the paper manually inspected Xatu's
  false positives and found 71% coincided with "overwhelming suspicious
  traffic volume", i.e. likely attacks NetScout missed.  The automated
  counterpart classifies each unmatched alert by the victim's traffic
  level around the alert relative to its quiet baseline.
* :func:`generality_split` — §8: 65.1% of customer nodes were never
  attacked during training, yet Xatu achieved similar early detection on
  them, because the model transfers attack knowledge across customers.
  The split reports per-event outcomes separately for customers seen /
  unseen in the training window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.detector import XatuAlert
from ..scrub.center import ScrubbingReport
from ..synth.scenario import Trace

__all__ = [
    "FalsePositiveVerdict",
    "classify_false_positives",
    "GeneralitySplit",
    "generality_split",
]


@dataclass(frozen=True, slots=True)
class FalsePositiveVerdict:
    """One unmatched alert, classified."""

    customer_id: int
    minute: int
    volume_ratio: float  # traffic around the alert / quiet baseline
    likely_missed_attack: bool


def classify_false_positives(
    trace: Trace,
    alerts: list[XatuAlert],
    window: int = 5,
    baseline_window: int = 60,
    suspicion_ratio: float = 3.0,
) -> list[FalsePositiveVerdict]:
    """Classify unmatched alerts by coincident traffic volume.

    An alert is "likely a missed attack" when the mean traffic in the
    ``window`` minutes from the alert exceeds ``suspicion_ratio`` times the
    median of the preceding ``baseline_window`` quiet minutes.
    """
    verdicts: list[FalsePositiveVerdict] = []
    series_cache: dict[int, np.ndarray] = {}
    for alert in alerts:
        if alert.event_id >= 0:
            continue
        series = series_cache.get(alert.customer_id)
        if series is None:
            series = trace.matrix.bytes_series(alert.customer_id, 0, trace.horizon)
            series_cache[alert.customer_id] = series
        lo = max(0, alert.minute - baseline_window)
        baseline = series[lo : alert.minute]
        hi = min(trace.horizon, alert.minute + window)
        around = series[alert.minute : hi]
        base = float(np.median(baseline)) if len(baseline) else 0.0
        level = float(around.mean()) if len(around) else 0.0
        ratio = level / base if base > 0 else (np.inf if level > 0 else 0.0)
        verdicts.append(
            FalsePositiveVerdict(
                customer_id=alert.customer_id,
                minute=alert.minute,
                volume_ratio=float(ratio),
                likely_missed_attack=ratio >= suspicion_ratio,
            )
        )
    return verdicts


@dataclass
class GeneralitySplit:
    """Per-event detection outcomes split by training-period exposure."""

    seen_delays: np.ndarray
    unseen_delays: np.ndarray
    seen_effectiveness: np.ndarray
    unseen_effectiveness: np.ndarray
    n_seen_customers: int
    n_unseen_customers: int

    @property
    def unseen_fraction(self) -> float:
        total = self.n_seen_customers + self.n_unseen_customers
        return self.n_unseen_customers / total if total else 0.0


def generality_split(
    trace: Trace,
    report: ScrubbingReport,
    train_range: tuple[int, int],
    eval_range: tuple[int, int],
    missed_delay: int = 30,
) -> GeneralitySplit:
    """Split eval-range detection outcomes by training exposure (§8)."""
    train_lo, train_hi = train_range
    eval_lo, eval_hi = eval_range
    attacked_in_training = {
        e.customer_id for e in trace.events if train_lo <= e.onset < train_hi
    }
    all_customers = {c.customer_id for c in trace.world.customers}

    seen_delays, unseen_delays = [], []
    seen_eff, unseen_eff = [], []
    for event in trace.events:
        if not eval_lo <= event.onset < eval_hi:
            continue
        delay = report.detection_delay.get(event.event_id)
        delay = missed_delay if delay is None else delay
        eff = report.effectiveness(event.event_id)
        if event.customer_id in attacked_in_training:
            seen_delays.append(delay)
            seen_eff.append(eff)
        else:
            unseen_delays.append(delay)
            unseen_eff.append(eff)
    return GeneralitySplit(
        seen_delays=np.array(seen_delays, dtype=np.float64),
        unseen_delays=np.array(unseen_delays, dtype=np.float64),
        seen_effectiveness=np.array(seen_eff, dtype=np.float64),
        unseen_effectiveness=np.array(unseen_eff, dtype=np.float64),
        n_seen_customers=len(attacked_in_training),
        n_unseen_customers=len(all_customers - attacked_in_training),
    )
