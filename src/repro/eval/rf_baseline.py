"""The random-forest baseline (RF in §6).

The paper trains an RF binary classifier per attack type "using the same
feature set from the same three timescales".  Here each sample minute is
summarized as the concatenation of the 273-feature vector averaged over the
short / medium / long timescale windows ending at that minute (3 x 273
columns), and the forest's attack probability drives a thresholded detector
that is calibrated under the same overhead bound as Xatu.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataset import SampleSet
from ..core.model import XatuModelConfig
from ..forest.ensemble import RandomForestClassifier
from ..scrub.center import DiversionWindow
from ..signals.features import FeatureExtractor
from ..synth.scenario import Trace

__all__ = ["RFBaseline", "rf_features_from_window"]


def rf_features_from_window(
    window: np.ndarray, model_config: XatuModelConfig
) -> np.ndarray:
    """Collapse a (lookback, 273) window into the RF's 3x273 summary row."""
    parts = []
    for ts in model_config.timescales:
        span = min(ts.minutes, window.shape[0])
        parts.append(window[-span:].mean(axis=0))
    return np.concatenate(parts)


@dataclass
class RFBaseline:
    """Forest + the detection threshold chosen during calibration."""

    forest: RandomForestClassifier
    model_config: XatuModelConfig
    threshold: float = 0.5

    @classmethod
    def train(
        cls,
        train_set: SampleSet,
        model_config: XatuModelConfig,
        n_estimators: int = 30,
        max_depth: int = 10,
        seed: int = 0,
    ) -> "RFBaseline":
        """Fit on the same (already scaled) sample windows Xatu trains on."""
        x = np.stack(
            [rf_features_from_window(s.features, model_config) for s in train_set.samples]
        )
        y = np.array([s.is_attack for s in train_set.samples], dtype=np.float64)
        forest = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed
        )
        forest.fit(x, y)
        return cls(forest=forest, model_config=model_config)

    # ------------------------------------------------------------------
    def score_series(
        self,
        trace: Trace,
        extractor: FeatureExtractor,
        scaler,
        customer_id: int,
        minute_range: tuple[int, int],
        stride: int = 1,
    ) -> np.ndarray:
        """Per-minute attack probability for one customer over a range."""
        from ..signals.cache import CachedFeatureExtractor

        lo, hi = minute_range
        lookback = self.model_config.lookback_minutes
        # Consecutive windows overlap by lookback-1 minutes; a dense cache
        # turns each extraction into a slice.
        cached = (
            extractor
            if isinstance(extractor, CachedFeatureExtractor)
            else CachedFeatureExtractor(extractor)
        )
        scores = np.zeros(hi - lo)
        last = 0.0
        for minute in range(lo, hi):
            if (minute - lo) % stride == 0:
                start = minute + 1 - lookback
                if start < 0:
                    scores[minute - lo] = 0.0
                    continue
                raw = cached.window(customer_id, start, minute + 1)
                row = rf_features_from_window(scaler.transform(raw), self.model_config)
                last = float(self.forest.predict_proba(row[None, :])[0])
            scores[minute - lo] = last
        return scores

    def windows_from_scores(
        self,
        trace: Trace,
        scores_by_customer: dict[int, np.ndarray],
        minute_range: tuple[int, int],
        threshold: float,
        max_fp_diversion: int = 10,
    ) -> list[DiversionWindow]:
        """Thresholded alerting with the same diversion rules as Xatu."""
        lo, hi = minute_range
        windows: list[DiversionWindow] = []
        for cid, scores in scores_by_customer.items():
            minute = lo
            while minute < hi:
                if scores[minute - lo] >= threshold:
                    event_id = self._match_event(trace, cid, minute)
                    if event_id >= 0:
                        end = min(hi, max(trace.events[event_id].end, minute + 1))
                    else:
                        end = min(hi, minute + max_fp_diversion)
                    windows.append(DiversionWindow(cid, minute, end))
                    minute = end
                else:
                    minute += 1
        return windows

    def _match_event(self, trace: Trace, customer_id: int, minute: int) -> int:
        from ..core.detector import match_event

        return match_event(trace, customer_id, minute, self.model_config.detect_window)
