"""Plain-text table/series rendering for the benchmark harness.

Every experiment runner returns structured rows; these helpers print them
in a stable, diff-friendly layout so the benches "print the same rows /
series the paper reports".
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value) -> str:
    """Human-stable formatting: floats to 3 significant-ish digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Fixed-width text table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str, x_values: Sequence, series: dict[str, Sequence], title: str | None = None
) -> str:
    """A table with one x column and one column per named series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)
