"""Figure 3: the effectiveness/overhead trade-off of *naive* early detection.

Shift every CDet alert uniformly N minutes earlier and account the
resulting diversions: effectiveness rises toward 100% with N while
scrubbing overhead grows, and the split by attack duration shows short
attacks gaining the most effectiveness while long attacks pay the largest
overhead — the Figure 3(a)/(b) shapes that motivate Xatu.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..detect.detectors import DetectionAlert, NetScoutDetector, TraceDetector
from ..scrub.center import DiversionWindow, ScrubbingCenter
from ..synth.scenario import Trace

__all__ = ["NaiveEarlyPoint", "run_naive_early"]

DURATION_CLASSES = ("short", "medium", "long", "overall")


@dataclass(frozen=True, slots=True)
class NaiveEarlyPoint:
    """One (minutes-early, duration-class) measurement."""

    minutes_early: int
    duration_class: str
    effectiveness_median: float
    overhead_mean: float
    n_events: int


def run_naive_early(
    trace: Trace,
    minutes_early_values: list[int] | None = None,
    detector: TraceDetector | None = None,
) -> list[NaiveEarlyPoint]:
    """Sweep the uniform early-shift N and account each setting."""
    if minutes_early_values is None:
        minutes_early_values = [0, 3, 6, 9, 12, 15]
    detector = detector or NetScoutDetector()
    alerts = [a for a in detector.detect(trace) if a.event_id >= 0]
    center = ScrubbingCenter(trace)

    points: list[NaiveEarlyPoint] = []
    for early in minutes_early_values:
        windows = [
            DiversionWindow(
                a.customer_id, max(0, a.detect_minute - early), a.end_minute
            )
            for a in alerts
        ]
        report = center.account(windows)
        detected_events = [
            trace.events[a.event_id] for a in alerts if a.event_id >= 0
        ]
        for dclass in DURATION_CLASSES:
            events = [
                e
                for e in detected_events
                if dclass == "overall" or e.duration_class() == dclass
            ]
            if not events:
                points.append(NaiveEarlyPoint(early, dclass, 0.0, 0.0, 0))
                continue
            eff = np.array([report.effectiveness(e.event_id) for e in events])
            customers = {e.customer_id for e in events}
            overhead = np.array([report.overhead(c) for c in customers])
            points.append(
                NaiveEarlyPoint(
                    minutes_early=early,
                    duration_class=dclass,
                    effectiveness_median=float(np.median(eff)),
                    overhead_mean=float(overhead.mean()),
                    n_events=len(events),
                )
            )
    return points
