"""Figures 12 and 17 plus the ML-design ablations: what each piece adds.

Each ablation variant trains its own model (the paper: "we train a separate
model for each bar") on the same trace and alert stream, differing in:

* enabled feature groups (no-aux = V only; +A1, +A2, ... per Figure 12;
  per-blocklist-category for Figure 17),
* loss (survival vs binary cross-entropy — "Xatu w/o survival model"),
* timescales (full multi-timescale vs LSTM_short only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.dataset import DatasetBuilder
from ..core.detector import DetectorConfig, XatuDetector
from ..core.model import XatuModel, XatuModelConfig
from ..core.pipeline import PipelineConfig, alerts_to_records
from ..core.trainer import TrainConfig, XatuTrainer
from ..detect.detectors import NetScoutDetector
from ..metrics.core import percentile_summary
from ..scrub.center import DiversionWindow, ScrubbingCenter
from ..signals.features import FeatureExtractor
from ..survival.calibration import ThresholdCalibrator
from ..synth.attacks import AttackType
from ..synth.scenario import Trace, TraceGenerator

__all__ = ["AblationVariant", "AblationResult", "AblationExperiment"]


@dataclass(frozen=True, slots=True)
class AblationVariant:
    """One bar of Figure 12 / 17 / 18."""

    name: str
    enabled_groups: frozenset[str] | None = None  # None = all groups
    loss: str = "survival"
    timescales_subset: tuple[int, ...] | None = None  # indices, None = all


@dataclass(frozen=True, slots=True)
class AblationResult:
    variant: str
    effectiveness_p10: float
    effectiveness_median: float
    effectiveness_p90: float
    delay_median: float
    n_events: int


STANDARD_VARIANTS: tuple[AblationVariant, ...] = (
    AblationVariant("no_aux", enabled_groups=frozenset({"V"})),
    AblationVariant("V+A1", enabled_groups=frozenset({"V", "A1"})),
    AblationVariant("V+A2", enabled_groups=frozenset({"V", "A2"})),
    AblationVariant("V+A3", enabled_groups=frozenset({"V", "A3"})),
    AblationVariant("V+A4+A5", enabled_groups=frozenset({"V", "A4", "A5"})),
    AblationVariant("no_survival", loss="bce"),
    AblationVariant("short_only", timescales_subset=(0,)),
    AblationVariant("xatu_full"),
)


class AblationExperiment:
    """Shared trace + labels; per-variant train/calibrate/evaluate."""

    def __init__(self, config: PipelineConfig, trace: Trace | None = None) -> None:
        self.config = config
        self.trace = trace or TraceGenerator(config.scenario).materialize()
        self.train_rng, self.val_rng, self.test_rng = config.split.bounds(
            self.trace.horizon
        )
        self.labeled = [
            a for a in NetScoutDetector().detect(self.trace) if a.event_id >= 0
        ]
        stab = int((self.test_rng[1] - self.test_rng[0]) * config.stabilization_fraction)
        self.eval_range = (self.test_rng[0] + stab, self.test_rng[1])
        self._center = ScrubbingCenter(self.trace)

    # ------------------------------------------------------------------
    def _variant_model_config(self, variant: AblationVariant) -> XatuModelConfig:
        cfg = self.config.model
        if variant.timescales_subset is None:
            return cfg
        scales = tuple(cfg.timescales[i] for i in variant.timescales_subset)
        return replace(cfg, timescales=scales)

    def _windows_at(
        self, output, model_cfg: XatuModelConfig, minute_range, threshold: float
    ) -> list[DiversionWindow]:
        from ..core.detector import windows_from_hazards

        return windows_from_hazards(
            self.trace,
            output.hazard_series,
            minute_range,
            model_cfg.detect_window,
            threshold,
        )

    # ------------------------------------------------------------------
    def run_variant(
        self,
        variant: AblationVariant,
        attack_types: set[AttackType] | None = None,
    ) -> AblationResult:
        """Train, calibrate and evaluate one ablation variant."""
        cfg = self.config
        model_cfg = self._variant_model_config(variant)
        extractor = FeatureExtractor(
            self.trace,
            alerts=alerts_to_records(self.trace, self.labeled),
            enabled_groups=variant.enabled_groups,
        )
        builder = DatasetBuilder(
            self.trace, extractor, model_cfg, rng=np.random.default_rng(cfg.seed)
        )
        type_names = (
            {t.value for t in attack_types} if attack_types is not None else None
        )
        train_set = builder.build(self.labeled, self.train_rng, attack_types=type_names)
        val_set = builder.build(
            self.labeled, self.val_rng, attack_types=type_names, scaler=train_set.scaler
        )
        model = XatuModel(model_cfg)
        train_cfg = replace(cfg.train, loss=variant.loss)
        XatuTrainer(model, train_cfg).fit(train_set, validation=val_set)

        val_output = XatuDetector(
            self.trace, extractor, model, train_set.scaler,
            DetectorConfig(autoregressive=False),
        ).run(self.val_rng)

        def evaluate(threshold: float) -> tuple[float, np.ndarray]:
            windows = self._windows_at(val_output, model_cfg, self.val_rng, threshold)
            report = self._center.account(windows)
            lo, hi = self.val_rng
            eff = [
                report.effectiveness(e.event_id)
                for e in self.trace.events
                if lo <= e.onset < hi
            ]
            return (float(np.median(eff)) if eff else 0.0, report.overhead_values())

        threshold = (
            ThresholdCalibrator()
            .calibrate(evaluate, self.config.overhead_bound)
            .threshold
        )

        test_output = XatuDetector(
            self.trace, extractor, model, train_set.scaler,
            DetectorConfig(threshold=threshold, autoregressive=False),
        ).run(self.test_rng)
        windows = self._windows_at(test_output, model_cfg, self.test_rng, threshold)
        report = self._center.account(windows)
        lo, hi = self.eval_range
        events = [
            e for e in self.trace.events
            if lo <= e.onset < hi
            and (attack_types is None or e.attack_type in attack_types)
        ]
        eff = np.array([report.effectiveness(e.event_id) for e in events])
        missed = model_cfg.detect_window
        delays = np.array(
            [
                report.detection_delay.get(e.event_id)
                if report.detection_delay.get(e.event_id) is not None
                else missed
                for e in events
            ],
            dtype=np.float64,
        )
        e_sum = percentile_summary(eff, 10, 90)
        return AblationResult(
            variant=variant.name,
            effectiveness_p10=e_sum.low,
            effectiveness_median=e_sum.median,
            effectiveness_p90=e_sum.high,
            delay_median=float(np.median(delays)) if len(delays) else 0.0,
            n_events=len(events),
        )

    def run(
        self,
        variants: tuple[AblationVariant, ...] = STANDARD_VARIANTS,
        attack_types: set[AttackType] | None = None,
    ) -> list[AblationResult]:
        return [self.run_variant(v, attack_types) for v in variants]
