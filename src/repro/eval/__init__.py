"""Per-figure/table experiment runners (see DESIGN.md for the index)."""

from .ablation import STANDARD_VARIANTS, AblationExperiment, AblationResult, AblationVariant
from .analysis import (
    FalsePositiveVerdict,
    GeneralitySplit,
    classify_false_positives,
    generality_split,
)
from .attribution import GradientAttribution, input_gradients
from .blocklist_breakdown import CategoryResult, run_blocklist_breakdown
from .census import (
    PrepSignalCensus,
    attacker_activity_by_day,
    clustering_timeline,
    prep_signal_census,
    same_type_share,
    split_table,
    transition_matrix,
)
from .headline import HeadlineExperiment, RocPoint, SystemMetrics
from .naive_early import NaiveEarlyPoint, run_naive_early
from .presets import (
    bench_model_config,
    bench_pipeline_config,
    bench_scenario,
    bench_train_config,
    full_scenario,
    tiny_scenario,
)
from .report import build_report
from .rf_baseline import RFBaseline, rf_features_from_window
from .robustness import RobustnessPoint, run_rate_sweep, run_volume_sweep
from .scale import PAPER_SCENARIO, compress_scenario, scale_model_for
from .sensitivity import SensitivityExperiment, SensitivityPoint
from .streaming import stream_trace
from .tables import format_value, render_series, render_table

__all__ = [
    "AblationExperiment", "AblationResult", "AblationVariant", "STANDARD_VARIANTS",
    "GradientAttribution", "input_gradients",
    "CategoryResult", "run_blocklist_breakdown",
    "PrepSignalCensus", "prep_signal_census", "transition_matrix",
    "attacker_activity_by_day", "clustering_timeline", "split_table",
    "same_type_share",
    "HeadlineExperiment", "SystemMetrics", "RocPoint",
    "NaiveEarlyPoint", "run_naive_early",
    "tiny_scenario", "bench_scenario", "full_scenario",
    "bench_model_config", "bench_train_config", "bench_pipeline_config",
    "RFBaseline", "rf_features_from_window",
    "RobustnessPoint", "run_volume_sweep", "run_rate_sweep",
    "SensitivityExperiment", "SensitivityPoint",
    "stream_trace",
    "render_table", "render_series", "format_value",
    "build_report",
    "FalsePositiveVerdict", "classify_false_positives",
    "GeneralitySplit", "generality_split",
    "PAPER_SCENARIO", "compress_scenario", "scale_model_for",
]
